"""Extension — why the paper's techniques need an I/O-bound workload.

The paper scopes itself away from sensor networks ("99% idle, very
little computation and communication", §1). This bench measures that
scoping decision: the same techniques are applied to a 30-second-epoch
sensing workload and to the ATR workload, and their relative gains
compared.

Expected shape: on the sensing workload every clock-oriented technique
collapses into the same modest "park the clock low" gain — there is no
distinct I/O phase worth treating specially — while a deep-sleep
policy is transformative (idle time IS the budget). On the ATR
workload the opposite holds: DVS-during-I/O is a first-order win and
sleep adds nothing, because the baseline frame has zero slack to sleep
through. The techniques are workload-specific, exactly as §1 claims.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.apps.sensor import SENSOR_EPOCH_S, SENSOR_PROFILE
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    SlowestFeasiblePolicy,
)
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from tests.conftest import tiny_battery_factory


def run_single(profile, deadline, policy, sleep=False, max_frames=None):
    partition = Partition(profile)
    plans = [
        plan_node(a, PAPER_LINK_TIMING, deadline, SA1100_TABLE)
        for a in partition.assignments
    ]
    roles = policy.role_configs(plans, SA1100_TABLE)
    config = PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=("node1",),
        battery_factory=tiny_battery_factory,
        deadline_s=deadline,
        sleep_in_slack=sleep,
        max_frames=max_frames,
        monitor_interval_s=None,
    )
    return PipelineEngine(config).run()


def run_matrix():
    workloads = {
        "atr (D=2.3s)": (PAPER_PROFILE, 2.3),
        "sensor (D=30s)": (SENSOR_PROFILE, SENSOR_EPOCH_S),
    }
    rows = []
    for name, (profile, deadline) in workloads.items():
        base = run_single(profile, deadline, BaselinePolicy())
        dvs_io = run_single(
            profile, deadline, DVSDuringIOPolicy(BaselinePolicy())
        )
        slowest = run_single(
            profile, deadline, DVSDuringIOPolicy(SlowestFeasiblePolicy())
        )
        sleepy = run_single(
            profile,
            deadline,
            DVSDuringIOPolicy(SlowestFeasiblePolicy()),
            sleep=True,
        )
        rows.append(
            {
                "workload": name,
                "baseline_frames": base.frames_completed,
                "dvs_io_gain_pct": round(
                    100 * (dvs_io.frames_completed / base.frames_completed - 1), 1
                ),
                "slowest_gain_pct": round(
                    100 * (slowest.frames_completed / base.frames_completed - 1), 1
                ),
                "sleep_gain_pct": round(
                    100 * (sleepy.frames_completed / base.frames_completed - 1), 1
                ),
            }
        )
    return rows


def test_sensor_contrast(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_block(
        "Extension — technique gains: ATR vs a 99%-idle sensing workload",
        format_table(rows),
    )
    atr, sensor = rows[0], rows[1]

    # ATR: the paper's regime — DVS during I/O is a first-order win...
    assert atr["dvs_io_gain_pct"] > 10.0
    # ...and sleep adds nothing on top: the baseline frame is exactly
    # full, so there is no slack to sleep through.
    assert atr["sleep_gain_pct"] == pytest.approx(atr["dvs_io_gain_pct"], abs=1.0)

    # Sensor: every clocking-down variant is the same technique here
    # (the epoch is idle-dominated; there is no distinct I/O phase).
    assert sensor["dvs_io_gain_pct"] == pytest.approx(
        sensor["slowest_gain_pct"], abs=1.0
    )
    # What actually matters is sleeping through the idle sea: an order
    # of magnitude beyond anything clock-oriented.
    assert sensor["sleep_gain_pct"] > 20 * sensor["dvs_io_gain_pct"]
    assert sensor["sleep_gain_pct"] > 50 * atr["sleep_gain_pct"]