"""Figs. 2 and 3 — timing-vs-power diagrams.

Fig. 2: a single node serializing RECV -> PROC -> SEND inside each
frame delay. Fig. 3: two pipelined nodes, where Node1's SEND overlaps
Node2's RECV and one result leaves the pipeline every D seconds.

The benchmark replays short traced runs and renders the schedules as
Gantt rows; assertions check the structural properties the figures
illustrate.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.gantt import render_gantt
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.sim import TraceRecorder

D = 2.3


def traced_run(label: str, frames: int) -> TraceRecorder:
    trace = TraceRecorder()
    run_experiment(PAPER_EXPERIMENTS[label], trace=trace, max_frames=frames)
    return trace


def test_fig02_single_node_schedule(benchmark):
    trace = benchmark.pedantic(traced_run, args=("1", 4), rounds=1, iterations=1)
    print_block(
        "Fig. 2 — single node, timing vs activity",
        render_gantt(trace, end_s=4 * D, width=92, deadline_s=D),
    )
    segments = trace.segments("node1")
    # RECV -> PROC -> SEND strictly serialized within each frame.
    frame0 = [s for s in segments if s.end <= D + 1e-6 and s.activity in ("recv", "proc", "send")]
    raw_order = [s.activity for s in sorted(frame0, key=lambda s: s.start)]
    # PROC is traced per functional block; collapse the run of blocks.
    order = [a for i, a in enumerate(raw_order) if i == 0 or raw_order[i - 1] != a]
    assert order == ["recv", "proc", "send"]
    # The baseline frame is exactly full: no idle inside the frame.
    busy = sum(s.duration for s in frame0)
    assert busy == pytest.approx(D, abs=1e-6)


def test_fig03_two_node_pipeline_schedule(benchmark):
    trace = benchmark.pedantic(traced_run, args=("2", 6), rounds=1, iterations=1)
    print_block(
        "Fig. 3 — two pipelined nodes, timing vs activity",
        render_gantt(trace, end_s=6 * D, width=92, deadline_s=D),
    )
    sends = [s for s in trace.segments("node1") if s.activity == "send"]
    recvs = [s for s in trace.segments("node2") if s.activity == "recv"]
    # Fig. 3's key feature: the inter-node SEND/RECV pair overlaps exactly.
    assert sends and recvs
    for s, r in zip(sends, recvs):
        assert s.start == pytest.approx(r.start)
        assert s.end == pytest.approx(r.end)
    # Steady state: one frame enters Node1 every D seconds.
    n1_recvs = [s for s in trace.segments("node1") if s.activity == "recv"]
    starts = [s.start for s in n1_recvs]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(g == pytest.approx(D, abs=1e-6) for g in gaps)
