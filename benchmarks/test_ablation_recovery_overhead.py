"""Ablation — recovery-protocol overhead.

§5.4's caution: the ack transactions that enable failure detection eat
frame budget, forcing faster clocks, so recovery "consumes energy
before it can save energy". This sweep varies the per-transaction ack
cost and reports (a) the statically required DVS levels and (b) the
simulated lifetime with and without the protocol.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

D = 2.3
ACK_COSTS_S = [0.0, 0.09, 0.18, 0.30]


def static_levels():
    """Required stage levels as ack overhead grows (2 acked tx/node)."""
    partition = Partition(PAPER_PROFILE, (1,))
    rows = []
    for ack in ACK_COSTS_S:
        row = {"ack_cost_s": ack}
        for i, stage in enumerate(partition.assignments, start=1):
            plan = plan_node(
                stage, PAPER_LINK_TIMING, D, SA1100_TABLE, overhead_s=2 * ack
            )
            row[f"node{i}_mhz"] = plan.level.mhz
        rows.append(row)
    return rows


def lifetimes():
    """Simulated frames: plain partition vs recovery at pinned levels."""
    plain = run_experiment(PAPER_EXPERIMENTS["2A"], battery_factory=sweep_kibam)
    recovery = run_experiment(PAPER_EXPERIMENTS["2B"], battery_factory=sweep_kibam)
    return plain, recovery


def test_recovery_overhead(benchmark):
    rows = static_levels()
    plain, recovery = benchmark.pedantic(lifetimes, rounds=1, iterations=1)
    print_block(
        "Ablation — ack cost vs required DVS levels (2 acked transactions/node)",
        format_table(rows, float_fmt=".1f"),
    )
    print_block(
        "Ablation — lifetime with vs without recovery (quarter-scale cells)",
        format_table(
            [
                {"config": "partition + DVS-I/O (2A)", "frames": plain.frames,
                 "survives_first_death": False},
                {"config": "recovery (2B)", "frames": recovery.frames,
                 "survives_first_death": bool(recovery.pipeline.migrations)},
            ]
        ),
    )

    # Static: overhead never lowers a required level, and the heavy
    # node eventually steps up (103.2 -> 118 at the paper's ack cost).
    node2 = [r["node2_mhz"] for r in rows]
    assert node2 == sorted(node2)
    assert rows[0]["node2_mhz"] == 103.2
    assert rows[1]["node2_mhz"] == 118.0  # one 90 ms ack each way

    # Dynamic: recovery still wins overall — the post-failure frames
    # outweigh the ack tax (the paper's (2B) > (2A) finding).
    assert recovery.frames > plain.frames
    assert recovery.pipeline.migrations
