"""Shared benchmark fixtures.

The expensive artifact — the full eight-experiment paper suite on the
calibrated battery — is computed once per session and shared by every
benchmark that reports on it.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core.experiments import run_paper_suite
from repro.hw.battery import KiBaM, LinearBattery, PeukertBattery
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS

#: Capacity scale for ablation sweeps: quarter-size cells keep the
#: KiBaM dynamics (same c, k') while discharging 4x faster, so wide
#: parameter sweeps stay cheap. Reported quantities are ratios, which
#: are insensitive to the scale.
SWEEP_SCALE = 0.25


def sweep_kibam() -> KiBaM:
    """Quarter-capacity KiBaM with the paper's dynamics."""
    return KiBaM(
        dataclasses.replace(
            PAPER_KIBAM_PARAMETERS,
            capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah * SWEEP_SCALE,
        )
    )


def sweep_linear() -> LinearBattery:
    """Ideal battery at the same (scaled) capacity."""
    return LinearBattery(PAPER_KIBAM_PARAMETERS.capacity_mah * SWEEP_SCALE)


def sweep_peukert() -> PeukertBattery:
    """Peukert battery (rate-capacity, no recovery) at the same capacity."""
    return PeukertBattery(
        PAPER_KIBAM_PARAMETERS.capacity_mah * SWEEP_SCALE,
        reference_ma=60.0,
        exponent=1.2,
    )


def print_block(title: str, body: str) -> None:
    """Print a clearly delimited report block into the benchmark log."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def paper_runs():
    """All eight paper experiments, run to battery exhaustion.

    Set ``REPRO_BENCH_JOBS=N`` to fan the suite out over N worker
    processes; results are bit-identical to the serial run. Caching is
    deliberately off so benchmarks always measure real compute.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return run_paper_suite(jobs=jobs)
