"""Ablation — rotation period (the paper fixes 100 frames, no sweep).

Sweeps the §5.5 rotation period across three orders of magnitude, with
and without a reconfiguration energy cost, and reports completed frames
per configuration. Expected shape: any reasonable period beats no
rotation; very long periods under-balance (approaching the plain
partitioned pipeline); a per-rotation cost penalizes very short
periods.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment

PERIODS = [2, 10, 100, 1000, 5000]


def run_sweep():
    rows = []
    baseline = run_experiment(PAPER_EXPERIMENTS["2A"], battery_factory=sweep_kibam)
    rows.append(
        {"period": "none (2A)", "reconfig_s": 0.0, "frames": baseline.frames}
    )
    for period in PERIODS:
        spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=period)
        run = run_experiment(spec, battery_factory=sweep_kibam)
        rows.append({"period": period, "reconfig_s": 0.0, "frames": run.frames})
    # With a reconfiguration cost, rotating every other frame gets
    # penalized while moderate periods keep almost all the benefit.
    for period in (2, 100):
        spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=period)
        run = run_experiment(
            spec, battery_factory=sweep_kibam, rotation_reconfig_s=0.2
        )
        rows.append({"period": period, "reconfig_s": 0.2, "frames": run.frames})
    return rows


def test_rotation_period_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Ablation — rotation period vs completed frames (quarter-scale cells)",
        format_table(rows),
    )

    by_key = {(r["period"], r["reconfig_s"]): r["frames"] for r in rows}
    no_rotation = by_key[("none (2A)", 0.0)]
    # Every period short enough to fire before the first death beats no
    # rotation; a period longer than the whole lifetime degenerates to
    # the plain pipeline exactly.
    lifetime_frames = no_rotation
    for period in PERIODS:
        if period < lifetime_frames:
            assert by_key[(period, 0.0)] > no_rotation, f"period {period}"
        else:
            assert by_key[(period, 0.0)] == no_rotation, f"period {period}"
    # The paper's choice (100) is within 10% of the best period swept.
    best = max(by_key[(p, 0.0)] for p in PERIODS)
    assert by_key[(100, 0.0)] >= 0.9 * best
    # Reconfiguration cost hurts short periods more than moderate ones.
    cost_at_2 = by_key[(2, 0.0)] - by_key[(2, 0.2)]
    cost_at_100 = by_key[(100, 0.0)] - by_key[(100, 0.2)]
    assert cost_at_2 > cost_at_100
