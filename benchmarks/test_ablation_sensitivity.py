"""Ablation — sensitivity of the headline result to the calibration.

Perturbs each fitted model parameter by +-10% and recomputes (with the
analytical predictor) the normalized lifetimes behind Fig. 10's story:
baseline (1), partitioning (2A-like), and rotation (2C-like). The
reproduction's claim is only as strong as this table: the ordering
baseline < partitioned < rotating must not be an artefact of one lucky
fit point.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.sensitivity import sensitivity_sweep
from repro.analysis.tables import format_table


def test_calibration_sensitivity(benchmark):
    outcomes = benchmark.pedantic(sensitivity_sweep, rounds=1, iterations=1)
    rows = [
        {
            "scenario": o.label,
            "T1_hours": round(o.baseline_h, 2),
            "partitioning_Rnorm_pct": round(100 * o.partitioning_rnorm, 1),
            "rotation_Rnorm_pct": round(100 * o.rotation_rnorm, 1),
            "ordering_holds": o.ordering_holds,
        }
        for o in outcomes
    ]
    print_block(
        "Ablation — +-10% parameter perturbations vs the headline ordering",
        format_table(rows),
    )

    nominal = outcomes[0]
    assert nominal.label == "nominal"
    # Nominal reproduces the paper's story.
    assert nominal.ordering_holds
    assert 1.05 < nominal.partitioning_rnorm < 1.35
    assert nominal.rotation_rnorm > nominal.partitioning_rnorm + 0.2

    # The ordering survives every perturbation...
    assert all(o.ordering_holds for o in outcomes)
    # ...and rotation's advantage never drops below 20 points of Rnorm.
    for o in outcomes:
        assert o.rotation_rnorm - o.partitioning_rnorm > 0.2
