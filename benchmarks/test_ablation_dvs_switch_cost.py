"""Ablation — the cost of DVS level switches the paper treats as free.

DVS-during-I/O toggles the SA-1100 between its I/O and compute levels
twice per frame (plus two per rotation transition). A frequency change
costs a PLL relock — ~150 us on the SA-1100, up to ~1 ms with voltage
settling. The paper never accounts for this; this bench measures the
actual switch rate in the simulated schedules and computes the time and
charge overhead across a latency sweep, validating (or bounding) the
paper's implicit assumption.
"""

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.hw.dvs import SA1100_TABLE
from repro.hw.power import PAPER_POWER_MODEL, PowerMode

D = 2.3
LATENCIES_US = [150.0, 500.0, 1000.0]
FRAMES = 60


def test_switch_cost_is_negligible_at_paper_scale(benchmark):
    # Count switches over short runs by instrumenting the node objects.
    import dataclasses

    from repro.core.experiments import PAPER_EXPERIMENTS
    from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
    from repro.hw.link import PAPER_LINK_TIMING
    from repro.pipeline.engine import PipelineConfig, PipelineEngine
    from repro.pipeline.rotation import RotationController
    from repro.pipeline.schedule import plan_node
    from repro.pipeline.tasks import Partition
    from repro.apps.atr.profile import PAPER_PROFILE

    def switches_per_frame(rotation_period=None):
        partition = Partition(PAPER_PROFILE, (1,))
        plans = [
            plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
            for a in partition.assignments
        ]
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        rotation = (
            RotationController(rotation_period, 2) if rotation_period else None
        )
        engine = PipelineEngine(
            PipelineConfig(
                partition=partition,
                roles=roles,
                node_names=("node1", "node2"),
                battery_factory=sweep_kibam,
                rotation=rotation,
                max_frames=FRAMES,
                monitor_interval_s=None,
            )
        )
        engine.run()
        return {
            name: node.level_switches / FRAMES
            for name, node in engine.nodes.items()
        }

    plain = benchmark.pedantic(switches_per_frame, rounds=1, iterations=1)
    rotated = switches_per_frame(rotation_period=10)

    rows = []
    comp_current = PAPER_POWER_MODEL.current_ma(
        PowerMode.COMPUTATION, SA1100_TABLE.level_at(103.2)
    )
    worst_rate = max(max(plain.values()), max(rotated.values()))
    for latency_us in LATENCIES_US:
        latency_s = latency_us * 1e-6
        time_overhead = worst_rate * latency_s / D
        charge_overhead_mas = worst_rate * latency_s * comp_current
        frame_charge_mas = comp_current * 1.876  # Node2's PROC charge
        rows.append(
            {
                "switch_latency_us": latency_us,
                "switches_per_frame": round(worst_rate, 2),
                "time_overhead_pct": round(100 * time_overhead, 4),
                "charge_overhead_pct": round(
                    100 * charge_overhead_mas / frame_charge_mas, 4
                ),
            }
        )
    print_block(
        "Ablation — DVS switch cost (worst-case node, per-frame rates measured)",
        format_table(
            [
                {"config": "2A (DVS during I/O)", **{f"node{i+1}": round(v, 2) for i, v in enumerate(plain.values())}},
                {"config": "2C (rotation/10)", **{f"node{i+1}": round(v, 2) for i, v in enumerate(rotated.values())}},
            ]
        )
        + "\n\n"
        + format_table(rows),
    )

    # DVS-during-I/O switches levels twice per frame (io->comp->io).
    assert plain["node2"] == pytest.approx(2.0, abs=0.2)
    # Node1 computes at its I/O level (both are 59 MHz): no switches.
    assert plain["node1"] == pytest.approx(0.0, abs=0.1)
    # Even at a pessimistic 1 ms relock, the overhead stays below 0.1%
    # of both the frame budget and the per-frame charge — the paper's
    # free-switch assumption is sound.
    assert all(r["time_overhead_pct"] < 0.1 for r in rows)
    assert all(r["charge_overhead_pct"] < 0.2 for r in rows)
