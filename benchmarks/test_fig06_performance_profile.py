"""Fig. 6 — the ATR performance profile on Itsy.

Regenerates the per-block compute times (at 206.4 MHz), inter-block
payload sizes, and serial-transfer delays, and checks them against the
numbers printed in the paper's Fig. 6.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.figures import figure6_performance_profile


def test_fig06_rows(benchmark):
    fig = benchmark(figure6_performance_profile)
    print_block("Fig. 6 — ATR performance profile", fig.text)

    by_stage = {r["stage"]: r for r in fig.rows}
    # Paper's transfer delays (rounded to 10 ms in the figure).
    assert by_stage["input (host -> node)"]["transfer_s"] == pytest.approx(1.1, abs=0.02)
    assert by_stage["target_detection"]["transfer_s"] == pytest.approx(0.16, abs=0.02)
    assert by_stage["fft"]["transfer_s"] == pytest.approx(0.85, abs=0.02)
    assert by_stage["compute_distance"]["transfer_s"] == pytest.approx(0.1, abs=0.02)
    # Paper's payload sizes.
    assert by_stage["input (host -> node)"]["payload_kb"] == pytest.approx(10.1)
    assert by_stage["fft"]["payload_kb"] == pytest.approx(7.5)
    # Whole-iteration PROC time: 1.1 s at the peak clock rate (§4.3).
    assert by_stage["TOTAL (PROC)"]["proc_s_at_206MHz"] == pytest.approx(1.1)
