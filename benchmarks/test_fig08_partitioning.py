"""Fig. 8 — the three two-node partitioning schemes.

Regenerates the required clock rates and communication payloads for
every contiguous 2-way partition of the ATR chain under D = 2.3 s, and
checks the paper's conclusions: scheme 1 runs at 59 / 103.2 MHz,
scheme 3 is infeasible (~380 MHz required), and scheme 1 is selected.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.figures import figure8_partitioning
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.partitioning import analyze_partitions, select_best
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING


def test_fig08_schemes(benchmark):
    fig = benchmark(figure8_partitioning)
    print_block("Fig. 8 — partitioning schemes (D = 2.3 s)", fig.text)

    s1, s2, s3 = fig.rows
    # Scheme 1: both nodes in the lower half of the DVS table (paper:
    # 59 and 103.2 MHz exactly).
    assert s1["node1_mhz"] == 59.0
    assert s1["node2_mhz"] == 103.2
    assert s1["node1_payload_kb"] == pytest.approx(10.7)
    assert s1["node2_payload_kb"] == pytest.approx(0.7)
    # Scheme 2: feasible only near the top of the table.
    assert s2["feasible"]
    assert s2["node1_mhz"] >= 176.9
    assert s2["node1_payload_kb"] == pytest.approx(17.6)
    # Scheme 3: infeasible; the paper quotes a ~380 MHz requirement.
    assert not s3["feasible"]
    assert "infeasible" in str(s3["node1_mhz"])


def test_fig08_selection(benchmark):
    analyses = analyze_partitions(
        PAPER_PROFILE, 2, PAPER_LINK_TIMING, 2.3, SA1100_TABLE
    )
    best = benchmark(select_best, analyses)
    assert best is analyses[0], "the paper's scheme 1 must be selected"
    print_block(
        "Fig. 8 — selection",
        f"selected: {best.partition.describe()}\n"
        f"levels: {[str(s.level) for s in best.stages]}",
    )
