"""Extension — variable workload (the paper fixes its workload, §3).

The paper notes that techniques for variable workload "can be readily
brought into the context of this study". This bench does it: a bursty
ATR workload (occasional multi-target frames costing 1.25x) runs the
partitioned pipeline under three strategies:

- **static-slowest**: the paper's slowest-feasible levels, sized for
  the nominal workload — heavy frames run late;
- **adaptive**: per-frame DVS re-picks the level from the frame's
  actual cost (Shin/Im-style slack reclamation at frame granularity);
- **headroom**: levels sized for the worst case — never late, but
  burns energy on every calm frame.

Expected shape: adaptive ~matches headroom's timeliness at close to
static's energy.
"""

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import DVSDuringIOPolicy, PinnedLevelsPolicy, SlowestFeasiblePolicy
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from repro.pipeline.workload import BurstyWorkload

D = 2.3
BURST = dict(calm_scale=0.9, burst_scale=1.25, burst_prob=0.08, burst_length=4)


def build(policy, adaptive):
    partition = Partition(PAPER_PROFILE, (1,))
    plans = [
        plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
        for a in partition.assignments
    ]
    roles = policy.role_configs(plans, SA1100_TABLE)
    return PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=("node1", "node2"),
        battery_factory=sweep_kibam,
        deadline_s=D,
        workload=BurstyWorkload(**BURST),
        adaptive_workload_dvs=adaptive,
        seed=11,
        monitor_interval_s=None,
    )


def run_matrix():
    strategies = {
        "static-slowest": (DVSDuringIOPolicy(SlowestFeasiblePolicy()), False),
        "adaptive": (DVSDuringIOPolicy(SlowestFeasiblePolicy()), True),
        # Worst-case headroom: Node2 one level up absorbs 1.25x bursts.
        "headroom": (
            DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 132.7])),
            False,
        ),
    }
    rows = []
    for name, (policy, adaptive) in strategies.items():
        result = PipelineEngine(build(policy, adaptive)).run()
        rows.append(
            {
                "strategy": name,
                "frames": result.frames_completed,
                "late_per_1k": round(
                    1000.0 * result.late_results / max(result.frames_completed, 1), 1
                ),
                "max_lateness_ms": round(result.max_lateness_s * 1000.0, 1),
                "node2_mAh": round(result.delivered_mah["node2"], 1),
            }
        )
    return rows


def test_variable_workload_strategies(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_block(
        "Extension — bursty workload (0.9x calm / 1.25x bursts) strategies",
        format_table(rows),
    )
    by_name = {r["strategy"]: r for r in rows}
    # Static levels sized for the nominal cost run late under bursts.
    assert by_name["static-slowest"]["late_per_1k"] > 0
    # Adaptive DVS strictly improves timeliness over static.
    assert by_name["adaptive"]["late_per_1k"] < by_name["static-slowest"]["late_per_1k"]
    # Headroom never misses, but completes fewer frames (drains faster)
    # than the adaptive strategy.
    assert by_name["headroom"]["late_per_1k"] == 0.0
    assert by_name["adaptive"]["frames"] >= by_name["headroom"]["frames"]
