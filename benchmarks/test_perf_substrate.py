"""Performance benchmarks of the simulation substrate itself.

Not a paper artifact — these keep the simulator fast enough that the
paper suite and the ablation sweeps stay cheap: event throughput of the
kernel, KiBaM stepping rate, link transaction rate, and the real ATR
frame rate.
"""

import numpy as np

from repro.apps.atr import ATRPipeline, SceneSpec, generate_scene
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.hw.link import SerialLink
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    def run_events(n=20_000):
        sim = Simulator()

        def ping(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(ping(sim, n))
        sim.run()
        return sim.events_processed

    events = benchmark(run_events)
    assert events >= 20_000


def test_kibam_step_rate(benchmark):
    def steps(n=10_000):
        cell = KiBaM(PAPER_KIBAM_PARAMETERS)
        for _ in range(n):
            cell.draw(50.0, 0.5)
            cell.draw(0.0, 0.5)
        return cell.delivered_mah

    delivered = benchmark(steps)
    assert delivered > 0


def test_link_transaction_rate(benchmark):
    def transactions(n=2_000):
        sim = Simulator()
        link = SerialLink(sim, "a", "b")

        def sender(sim, link, n):
            for i in range(n):
                tr = yield link.offer_send(i, 600, frm="a")
                yield tr.done

        def receiver(sim, link, n):
            for _ in range(n):
                tr = yield link.offer_recv(to="b")
                yield tr.done

        sim.process(sender(sim, link, n))
        sim.process(receiver(sim, link, n))
        sim.run()
        return link.transfer_count["a"]

    count = benchmark(transactions)
    assert count == 2_000


def test_atr_frame_rate(benchmark):
    rng = np.random.default_rng(0)
    pipe = ATRPipeline()
    scenes = [generate_scene(SceneSpec(size=64), rng) for _ in range(5)]

    def recognize():
        return [pipe.run(s, i) for i, s in enumerate(scenes)]

    results = benchmark(recognize)
    assert len(results) == 5
