"""Ablation — pack-voltage sag under constant-power regulation.

The Fig. 7 currents are quoted at the nominal ~4 V pack voltage, but a
real Li-ion pack sags as it drains and the DC-DC regulator compensates
by drawing more cell current. The calibrated KiBaM constants absorbed
whatever sag the paper's hardware had (they were fitted to measured
lifetimes); this bench bounds the effect's size by re-running key duty
cycles with sag modelled explicitly — quantifying how much of the
"effective capacity differs from nameplate" story the regulator alone
can carry.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.hw.battery import Battery, KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.hw.battery.voltage import LIION_OCV, OcvCurve, VoltageAwareBattery
from repro.hw.dvs import SA1100_TABLE
from repro.hw.power import PAPER_POWER_MODEL, PowerMode


def duty_lifetime_hours(cell: Battery, segments) -> float:
    """Discharge under a repeating (current, seconds) cycle."""
    elapsed = 0.0
    while True:
        for current, duration in segments:
            if cell.time_to_death_lower_bound(current) <= duration:
                ttd = cell.time_to_death(current)
                if ttd <= duration:
                    return (elapsed + ttd) / 3600.0
            cell.draw(current, duration)
            elapsed += duration


def paper_duties():
    level = SA1100_TABLE.max
    low = SA1100_TABLE.min
    comp = PAPER_POWER_MODEL.current_ma(PowerMode.COMPUTATION, level)
    io_low = PAPER_POWER_MODEL.current_ma(PowerMode.COMMUNICATION, low)
    return {
        "0A (continuous compute)": [(comp, 1.1)],
        "1A (compute + low-power I/O)": [(comp, 1.1), (io_low, 1.2)],
    }


def run_matrix():
    cells = {
        "nominal (no sag)": lambda: KiBaM(PAPER_KIBAM_PARAMETERS),
        "sag, eta=0.95": lambda: VoltageAwareBattery(
            KiBaM(PAPER_KIBAM_PARAMETERS), efficiency=0.95
        ),
        "sag, eta=0.85": lambda: VoltageAwareBattery(
            KiBaM(PAPER_KIBAM_PARAMETERS), efficiency=0.85
        ),
        "flat 4V, eta=1 (sanity)": lambda: VoltageAwareBattery(
            KiBaM(PAPER_KIBAM_PARAMETERS),
            ocv=OcvCurve([(0.0, 4.0), (1.0, 4.0)]),
            efficiency=1.0,
        ),
    }
    rows = []
    for cell_name, factory in cells.items():
        row = {"battery": cell_name}
        for duty_name, segments in paper_duties().items():
            row[duty_name] = round(duty_lifetime_hours(factory(), segments), 2)
        rows.append(row)
    return rows


def test_voltage_sag(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_block(
        "Ablation — explicit voltage sag vs the nominal-current model (hours)",
        format_table(rows),
    )
    by_name = {r["battery"]: r for r in rows}
    duty = "0A (continuous compute)"
    nominal = by_name["nominal (no sag)"][duty]
    # The transparent wrapper reproduces the nominal model exactly.
    assert by_name["flat 4V, eta=1 (sanity)"][duty] == pytest.approx(
        nominal, rel=1e-3
    )
    # Explicit sag shortens lifetimes by a bounded, efficiency-ordered
    # amount — the size of correction the calibrated constants absorb.
    sag95 = by_name["sag, eta=0.95"][duty]
    sag85 = by_name["sag, eta=0.85"][duty]
    assert sag85 < sag95 < nominal
    assert 0.6 * nominal < sag85 < 0.95 * nominal
