"""Fig. 10 — the paper's headline results.

Runs all eight experiments (0A, 0B, 1, 1A, 2, 2A, 2B, 2C) to battery
exhaustion on the calibrated simulator, prints the absolute and
normalized battery-life comparison with the paper's measurements, and
asserts the reproduction criteria: every lifetime within 12% and the
complete Rnorm ordering 1 < 2 < 2A < 1A < 2B < 2C preserved.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.figures import figure10_results
from repro.analysis.tables import format_table
from repro.core.experiments import run_experiment, PAPER_EXPERIMENTS, summarize_runs


def test_fig10_full_suite(benchmark, paper_runs):
    # Timing: one representative discharge run (the partitioned pipeline).
    benchmark.pedantic(
        run_experiment, args=(PAPER_EXPERIMENTS["1"],), rounds=1, iterations=1
    )

    fig = figure10_results(paper_runs)
    print_block("Fig. 10 — experiment results (simulated vs paper)", fig.text)

    no_io_rows = [
        {
            "experiment": label,
            "T_hours": paper_runs[label].t_hours,
            "paper_T_hours": paper_runs[label].spec.paper.t_hours,
            "frames": paper_runs[label].frames,
            "paper_frames": paper_runs[label].spec.paper.frames,
        }
        for label in ("0A", "0B")
    ]
    print_block(
        "§6.1 — no-I/O experiments (excluded from Fig. 10, as in the paper)",
        format_table(no_io_rows),
    )

    # Reproduction criteria -------------------------------------------------
    for label, run in paper_runs.items():
        assert run.t_hours == pytest.approx(run.spec.paper.t_hours, rel=0.12), label

    metrics = {m.label: m for m in summarize_runs(paper_runs)}
    order = ["1", "2", "2A", "1A", "2B", "2C"]
    values = [metrics[lb].rnorm for lb in order]
    assert values == sorted(values), f"Rnorm ordering broken: {dict(zip(order, values))}"
    # Node rotation is the paper's winner, by a clear margin.
    assert metrics["2C"].rnorm == max(values)
    assert metrics["2C"].rnorm > 1.35
