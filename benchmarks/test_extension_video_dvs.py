"""Extension — frame-based DVS for video (Choi et al., the paper's §2).

Runs the MPEG-style decode workload on the simulated Itsy and compares
a worst-case static clock against frame-based DVS (the clock follows
the GOP's known per-frame costs). Reproduces the cited related-work
result inside the paper's own testbed: double-digit playback gains at
zero missed frames.
"""

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.apps.video import GopStructure, VIDEO_PROFILE, video_workload
from repro.apps.video.profile import VIDEO_FRAME_PERIOD_S
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

GOPS = ["IBBPBBPBB", "IPPPPPPPP", "IBBBBBBBB"]


def run_decoder(gop: GopStructure, adaptive: bool):
    partition = Partition(VIDEO_PROFILE)
    plans = [
        plan_node(a, PAPER_LINK_TIMING, VIDEO_FRAME_PERIOD_S, SA1100_TABLE)
        for a in partition.assignments
    ]
    roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        plans, SA1100_TABLE
    )
    config = PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=("player",),
        battery_factory=sweep_kibam,
        deadline_s=VIDEO_FRAME_PERIOD_S,
        workload=video_workload(gop),
        adaptive_workload_dvs=adaptive,
        monitor_interval_s=None,
    )
    return PipelineEngine(config).run()


def run_matrix():
    rows = []
    for pattern in GOPS:
        gop = GopStructure(pattern)
        static = run_decoder(gop, adaptive=False)
        adaptive = run_decoder(gop, adaptive=True)
        rows.append(
            {
                "gop": pattern,
                "mean_cost": round(gop.mean_cost, 2),
                "static_frames": static.frames_completed,
                "framebased_frames": adaptive.frames_completed,
                "gain_pct": round(
                    100
                    * (adaptive.frames_completed / static.frames_completed - 1),
                    1,
                ),
                "late": static.late_results + adaptive.late_results,
            }
        )
    return rows


def test_frame_based_dvs_for_video(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_block(
        "Extension — frame-based DVS on the video workload (quarter-scale cells)",
        format_table(rows),
    )
    by_gop = {r["gop"]: r for r in rows}
    # No missed playback deadlines anywhere.
    assert all(r["late"] == 0 for r in rows)
    # Frame-based DVS gains double digits on every stream mix.
    for r in rows:
        assert r["gain_pct"] > 10.0
    # Lighter mean workloads play longer under either strategy.
    assert (
        by_gop["IBBBBBBBB"]["static_frames"] > by_gop["IPPPPPPPP"]["static_frames"]
    )