"""Ablation — serial-line errors under the reliable transport.

The paper runs "generic TCP/IP sockets to implement reliable
communication" over PPP: on a noisy serial line, reliability means
retransmissions, which eat the frame budget the schedules were planned
against. This sweep raises the per-transaction corruption probability
and reports (a) the statically required DVS levels when planning
against the *expected* (retry-inflated) transaction time and (b) the
simulated miss rate when the schedule ignores errors.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import TransactionTiming
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

D = 2.3
ERROR_PROBS = [0.0, 0.02, 0.05, 0.10]


def static_levels():
    """Required levels when planning against expected transaction time."""
    rows = []
    for prob in ERROR_PROBS:
        timing = TransactionTiming(startup_s=0.09, corruption_prob=prob)
        row = {"corruption_prob": prob}
        partition = Partition(PAPER_PROFILE, (1,))
        for i, stage in enumerate(partition.assignments, start=1):
            try:
                plan = plan_node(stage, timing, D, SA1100_TABLE)
                row[f"node{i}_mhz"] = plan.level.mhz
            except InfeasiblePartitionError:
                row[f"node{i}_mhz"] = None
        try:
            single = plan_node(
                Partition(PAPER_PROFILE).stage(0), timing, D, SA1100_TABLE
            )
            row["single_mhz"] = single.level.mhz
        except InfeasiblePartitionError:
            row["single_mhz"] = None
        rows.append(row)
    return rows


def dynamic_misses():
    """Miss rate when the error-free schedule meets a noisy line."""
    rows = []
    for prob in ERROR_PROBS:
        timing = TransactionTiming(startup_s=0.09, corruption_prob=prob)
        run = run_experiment(
            dataclasses.replace(PAPER_EXPERIMENTS["2A"], label=f"2A-e{prob:g}"),
            battery_factory=sweep_kibam,
            timing=timing,
            seed=5,
        )
        result = run.pipeline
        rows.append(
            {
                "corruption_prob": prob,
                "frames": result.frames_completed,
                "late_per_1k": round(
                    1000.0 * result.late_results / max(result.frames_completed, 1), 1
                ),
                "max_lateness_ms": round(result.max_lateness_s * 1000.0, 1),
            }
        )
    return rows


def test_link_error_sweep(benchmark):
    levels = static_levels()
    misses = benchmark.pedantic(dynamic_misses, rounds=1, iterations=1)
    print_block(
        "Ablation — corruption probability vs required levels "
        "(planning against expected retries)",
        format_table(levels, float_fmt=".2f"),
    )
    print_block(
        "Ablation — corruption probability vs per-frame misses "
        "(error-free schedule on a noisy line, experiment 2A)",
        format_table(misses),
    )

    by_prob = {r["corruption_prob"]: r for r in levels}
    # Error-free: the paper's operating points.
    assert by_prob[0.0]["node1_mhz"] == 59.0
    assert by_prob[0.0]["single_mhz"] == 206.4
    # The single node has zero slack: ANY error rate breaks it.
    assert all(by_prob[p]["single_mhz"] is None for p in ERROR_PROBS if p > 0)
    # The partitioned pipeline tolerates moderate error rates (Node2
    # clocks up as retries eat budget).
    node2 = [r["node2_mhz"] for r in levels]
    assert all(v is not None for v in node2)
    assert node2 == sorted(node2)

    miss_by_prob = {r["corruption_prob"]: r for r in misses}
    assert miss_by_prob[0.0]["late_per_1k"] == 0.0
    # A noisy line produces real misses against the unplanned schedule.
    assert miss_by_prob[0.10]["late_per_1k"] > 0
