"""Ablation — serial-link bandwidth.

The paper's whole setting is the I/O-bound regime created by the
~80 Kbps serial port. This sweep rescales the link and re-derives the
partitioning analysis at each bandwidth, locating the crossovers:

- below ~40 Kbps even the single node cannot meet D (RECV alone eats
  the frame);
- around the paper's operating point, partitioning scheme 1 unlocks
  low-frequency operation;
- as bandwidth grows, every scheme becomes feasible and the required
  frequencies converge to the pure-computation bound.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.partitioning import analyze_partitions
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import TransactionTiming
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

D = 2.3
BANDWIDTHS_KBPS = [20, 40, 60, 80, 115.2, 250, 500, 1000]


def run_sweep():
    rows = []
    for kbps in BANDWIDTHS_KBPS:
        timing = TransactionTiming(bandwidth_bps=kbps * 1000, startup_s=0.09)
        row = {"kbps": kbps}
        # Single node.
        try:
            plan = plan_node(
                Partition(PAPER_PROFILE).stage(0), timing, D, SA1100_TABLE
            )
            row["single_mhz"] = plan.level.mhz
        except InfeasiblePartitionError:
            row["single_mhz"] = None
        # Best 2-way scheme.
        analyses = analyze_partitions(PAPER_PROFILE, 2, timing, D, SA1100_TABLE)
        feasible = [a for a in analyses if a.feasible]
        row["feasible_schemes"] = len(feasible)
        if feasible:
            best = min(feasible, key=lambda a: a.total_switching_activity)
            row["scheme1_node1_mhz"] = best.stages[0].level.mhz
            row["scheme1_node2_mhz"] = best.stages[1].level.mhz
        rows.append(row)
    return rows


def test_link_bandwidth_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Ablation — link bandwidth vs required operating points (D = 2.3 s)",
        format_table(rows),
    )

    by_kbps = {r["kbps"]: r for r in rows}
    # At 20 Kbps the 10.1 KB frame alone takes >4 s: nothing works.
    assert by_kbps[20]["single_mhz"] is None
    assert by_kbps[20]["feasible_schemes"] == 0
    # The paper's regime: single node pinned at the top of the table,
    # partitioning unlocks the bottom half.
    assert by_kbps[80]["single_mhz"] == 206.4
    assert by_kbps[80]["scheme1_node1_mhz"] == 59.0
    # Ample bandwidth: more schemes feasible, and the single node can
    # slow down (I/O stops being the bottleneck).
    assert by_kbps[1000]["feasible_schemes"] == 3
    assert by_kbps[1000]["single_mhz"] < 206.4
    # Monotonicity: feasible scheme count never decreases with bandwidth.
    counts = [r["feasible_schemes"] for r in rows]
    assert counts == sorted(counts)
