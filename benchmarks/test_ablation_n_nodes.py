"""Extension — deeper pipelines (the paper: "results do generalize").

The paper evaluates two nodes; this sweep runs 1-4 stage pipelines of
the same ATR chain (slowest-feasible levels + DVS during I/O) and
reports absolute and normalized battery life. Expected shape: absolute
life grows with N, but the *normalized* return diminishes — each extra
node adds inter-stage I/O and worsens imbalance, the paper's central
caution about distributed DVS.
"""

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.core.experiments import ExperimentSpec, run_experiment
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy

CUTS = {1: (), 2: (1,), 3: (1, 3), 4: (1, 2, 3)}


def run_sweep():
    rows = []
    runs = {}
    policy = DVSDuringIOPolicy(SlowestFeasiblePolicy())
    for n, cuts in CUTS.items():
        spec = ExperimentSpec(
            label=f"N{n}",
            description=f"{n}-stage pipeline",
            policy=policy,
            cuts=cuts,
        )
        run = run_experiment(spec, battery_factory=sweep_kibam)
        runs[n] = run
        rows.append(
            {
                "stages": n,
                "frames": run.frames,
                "T_hours": run.t_hours,
                "Tnorm_hours": run.t_hours / n,
                "first_death_h": min(run.death_times_s.values()) / 3600.0
                if run.death_times_s
                else None,
            }
        )
    return rows, runs


def test_n_node_scaling(benchmark):
    rows, runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Extension — pipeline depth vs battery life (quarter-scale cells)",
        format_table(rows, float_fmt=".3f"),
    )

    t = {r["stages"]: r["T_hours"] for r in rows}
    tnorm = {r["stages"]: r["Tnorm_hours"] for r in rows}
    # Absolute lifetime grows with parallelism.
    assert t[2] > t[1]
    assert t[4] > t[2]
    # But each battery buys less than proportionally: normalized life
    # gains shrink (and may reverse) as stages are added.
    gain_2 = tnorm[2] / tnorm[1]
    gain_4 = tnorm[4] / tnorm[2]
    assert gain_2 > gain_4
    # Without load balancing, some battery always strands capacity:
    # the first death ends every run well before N x T(1).
    assert t[4] < 4 * t[1]
