"""Ablation — battery model choice.

The paper's conclusions rest on two battery nonlinearities (recovery
and rate-capacity). Reruns key experiments under three models of equal
capacity:

- **KiBaM** (both effects — the calibrated default),
- **Peukert** (rate-capacity only),
- **Linear** (neither).

Expected shape: with a linear cell, the §6.3 anomaly F(1A) > F(0A)
*disappears* (completed work is bounded by delivered charge, and 1A
spends strictly more charge per frame), and the 0A/0B workload ratio
collapses toward the current ratio over two (~1.07x — frames take
twice as long at half speed). KiBaM reproduces the paper's ~2x ratio.

This matrix runs at the full calibrated capacity: the recovery anomaly
is an *accumulated* effect, and a down-scaled cell does not live long
enough (relative to the diffusion time constant 1/k' ~ 2.4 h) for the
per-cycle recovery to add up — itself a noteworthy model prediction.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.hw.battery import KiBaM, LinearBattery, PeukertBattery
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS

LABELS = ["0A", "0B", "1", "1A", "2C"]
MODELS = {
    "kibam": lambda: KiBaM(PAPER_KIBAM_PARAMETERS),
    "peukert": lambda: PeukertBattery(
        PAPER_KIBAM_PARAMETERS.capacity_mah, reference_ma=60.0, exponent=1.2
    ),
    "linear": lambda: LinearBattery(PAPER_KIBAM_PARAMETERS.capacity_mah),
}


def run_matrix():
    frames = {}
    for model_name, factory in MODELS.items():
        for label in LABELS:
            run = run_experiment(PAPER_EXPERIMENTS[label], battery_factory=factory)
            frames[(model_name, label)] = run.frames
    return frames


def test_battery_model_matrix(benchmark):
    frames = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        {"model": model, **{lb: frames[(model, lb)] for lb in LABELS}}
        for model in MODELS
    ]
    print_block(
        "Ablation — completed frames per battery model (equal capacity)",
        format_table(rows),
    )

    # KiBaM shows the paper's recovery anomaly: F(1A) > F(0A).
    assert frames[("kibam", "1A")] > frames[("kibam", "0A")]
    # A linear battery cannot: 1A spends more charge per frame than 0A.
    assert frames[("linear", "1A")] < frames[("linear", "0A")]
    # Peukert (no recovery) cannot either.
    assert frames[("peukert", "1A")] < frames[("peukert", "0A")]

    # Rate-capacity effect: each frame takes twice as long at half
    # speed, so a linear cell's workload ratio is just the current
    # ratio over two (~1.07). Nonlinear cells beat it — KiBaM gets
    # close to the paper's ~2x (11.5K -> 22.5K frames).
    def ratio(model):
        return frames[(model, "0B")] / frames[(model, "0A")]

    assert ratio("linear") == pytest.approx(1.07, abs=0.08)
    assert ratio("peukert") > ratio("linear") + 0.1
    assert ratio("kibam") > 1.7

    # Rotation helps under every model (it balances *any* battery),
    # so the technique is robust to the battery assumption.
    for model in MODELS:
        assert frames[(model, "2C")] > frames[(model, "1")]
