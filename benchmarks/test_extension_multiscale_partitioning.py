"""Extension — recognition quality vs achievable frame rate.

Multi-scale/rotation matching (:mod:`repro.apps.atr.matching`)
multiplies the FFT/IFFT correlation work by the variant count V. This
bench folds that into the Fig. 6 profile and re-runs the Fig. 8
partitioning analysis: how do the required operating points shift, and
at what V does the paper's 2.3 s frame period become unachievable on
any partition — i.e. what does better recognition *cost* in throughput?
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.partitioning import analyze_partitions
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING

D = 2.3
VARIANTS = [1, 2, 4, 8]


def heavier_profile(v: int):
    """The Fig. 6 profile with V-variant matching in FFT/IFFT."""
    if v == 1:
        return PAPER_PROFILE
    return PAPER_PROFILE.with_blocks_scaled({"fft", "ifft"}, float(v))


def best_feasible(profile, deadline):
    """Best (lowest-energy) feasible scheme across 1-4 stages, or None."""
    candidates = []
    for n in range(1, len(profile.blocks) + 1):
        for analysis in analyze_partitions(
            profile, n, PAPER_LINK_TIMING, deadline, SA1100_TABLE
        ):
            if analysis.feasible:
                candidates.append(analysis)
    if not candidates:
        return None
    return min(candidates, key=lambda a: a.total_switching_activity)


def min_feasible_deadline(profile, lo=1.0, hi=12.0, tol=0.01):
    """Smallest frame delay any partition can meet (bisection)."""
    if best_feasible(profile, hi) is None:
        return None
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if best_feasible(profile, mid) is None:
            lo = mid
        else:
            hi = mid
    return hi


def run_sweep():
    rows = []
    for v in VARIANTS:
        profile = heavier_profile(v)
        best = best_feasible(profile, D)
        min_d = min_feasible_deadline(profile)
        rows.append(
            {
                "variants": v,
                "proc_s_at_fmax": round(profile.total_seconds_at_max, 2),
                "feasible_at_2.3s": best is not None,
                "best_scheme": best.partition.describe() if best else "-",
                "stages": best.partition.n_stages if best else None,
                "min_deadline_s": round(min_d, 2) if min_d else None,
            }
        )
    return rows


def test_quality_vs_throughput(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Extension — matching variants vs achievable frame period",
        format_table(rows),
    )

    by_v = {r["variants"]: r for r in rows}
    # V=1 is the paper: feasible, scheme 1 selected.
    assert by_v[1]["feasible_at_2.3s"]
    assert "target_detection)" in by_v[1]["best_scheme"]
    # Doubling the correlation work still fits the paper's frame period
    # (deeper pipelines / faster clocks absorb it).
    assert by_v[2]["feasible_at_2.3s"]
    # At some point quality outruns the platform: the frame period must
    # stretch, and the minimum deadline grows monotonically with V.
    assert not by_v[8]["feasible_at_2.3s"]
    min_ds = [r["min_deadline_s"] for r in rows]
    assert all(d is not None for d in min_ds)
    assert min_ds == sorted(min_ds)
