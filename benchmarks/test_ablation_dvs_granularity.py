"""Ablation — how much do the SA-1100's 11 discrete levels matter?

A required frequency always rounds *up* to a real operating point, so
a coarser DVS table looks like pure waste. This sweep re-plans the
scheme-1 pipeline against subsampled tables (11, 6, 3, 2 levels) plus
a continuous ideal, and predicts the lifetimes. Two findings:

- coarse tables hurt: 3 levels cost ~10%, a binary knob ~34%;
- but the continuous "slowest-feasible" speed is *not* optimal — it
  predicts slightly LESS lifetime than the 11-level table, because
  rounding up to 103.2 MHz finishes PROC sooner and the extra rest
  lets the battery recover (race-to-rest beats stretch-to-deadline
  under recovery dynamics). The energy-optimal speed and the
  battery-lifetime-optimal speed are different quantities — the
  paper's central theme, visible even inside a single node's schedule.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.core.prediction import predict_first_death
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE, DVSTable, FrequencyLevel
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node, required_frequency_mhz
from repro.pipeline.tasks import Partition

D = 2.3


def _continuous_table() -> DVSTable:
    """An (idealized) near-continuous knob: the exact required
    frequencies of scheme 1's stages, embedded in a dense ladder."""
    partition = Partition(PAPER_PROFILE, (1,))
    levels = {lv.mhz: lv.volts for lv in SA1100_TABLE}
    for assignment in partition.assignments:
        req = required_frequency_mhz(
            assignment, PAPER_LINK_TIMING, D, SA1100_TABLE
        )
        req = max(req, SA1100_TABLE.min.mhz)
        # Interpolate a plausible voltage for the exact frequency.
        lower = SA1100_TABLE.floor(req)
        upper = SA1100_TABLE.ceil(req)
        if upper.mhz == lower.mhz:
            volts = lower.volts
        else:
            frac = (req - lower.mhz) / (upper.mhz - lower.mhz)
            volts = lower.volts + frac * (upper.volts - lower.volts)
        levels[round(req, 3)] = volts
    return DVSTable(
        [FrequencyLevel(mhz, levels[mhz]) for mhz in sorted(levels)]
    )


def run_sweep():
    partition = Partition(PAPER_PROFILE, (1,))
    tables = {
        "continuous (ideal)": _continuous_table(),
        "11 levels (SA-1100)": SA1100_TABLE,
        "6 levels": SA1100_TABLE.subsampled(2),
        "3 levels": SA1100_TABLE.subsampled(5),
        "2 levels": SA1100_TABLE.subsampled(10),
    }
    rows = []
    for name, table in tables.items():
        try:
            plans = [
                plan_node(a, PAPER_LINK_TIMING, D, table)
                for a in partition.assignments
            ]
        except InfeasiblePartitionError:
            rows.append({"table": name, "feasible": False})
            continue
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, table
        )
        _, first_death, _ = predict_first_death(
            roles, PAPER_LINK_TIMING, D, table=table
        )
        rows.append(
            {
                "table": name,
                "feasible": True,
                "node1_mhz": plans[0].level.mhz,
                "node2_mhz": plans[1].level.mhz,
                "first_death_h": round(first_death, 2),
            }
        )
    return rows


def test_dvs_granularity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Ablation — DVS table granularity vs predicted pipeline lifetime",
        format_table(rows),
    )
    by_name = {r["table"]: r for r in rows}
    ideal = by_name["continuous (ideal)"]
    sa1100 = by_name["11 levels (SA-1100)"]
    # Among the real tables, lifetime degrades monotonically with
    # coarseness.
    discrete = [
        by_name[k]["first_death_h"]
        for k in ("11 levels (SA-1100)", "6 levels", "3 levels", "2 levels")
    ]
    assert discrete == sorted(discrete, reverse=True)
    # The 11-level table is within 2% of the continuous knob — and in
    # fact slightly AHEAD of it: the rounded-up clock finishes sooner
    # and the battery recovers during the longer rest (race-to-rest).
    assert sa1100["first_death_h"] == pytest.approx(
        ideal["first_death_h"], rel=0.02
    )
    assert sa1100["first_death_h"] >= ideal["first_death_h"]
    # Coarse knobs carry real cost: ~10% at 3 levels, ~1/3 at 2.
    assert by_name["3 levels"]["first_death_h"] < 0.95 * sa1100["first_death_h"]
    assert by_name["2 levels"]["first_death_h"] < 0.75 * sa1100["first_death_h"]
