"""Standalone substrate benchmark report.

Measures the hot paths that dominate paper-suite wall-clock — kernel
event dispatch, KiBaM stepping, link transactions, ATR recognition —
plus telemetry overheads (raw event-emit throughput, null-sink and
full-instrumentation cost on a short run), the flight recorder
(recorder-off executor overhead against its budget, journaling
throughput when on), the batched cohort sweep
with a jobs-1/2/4 scaling column, the successive-halving design-space
exploration (configs/sec and per-rung prune rates), and the end-to-end
eight-experiment suite in three variants — serial exact, fast-forward
(``mode="fast"``, with frame/lifetime parity columns against serial),
and 4-worker parallel — and writes the numbers to
``BENCH_substrate.json`` so substrate regressions show up in review.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_report.py            # full report
    PYTHONPATH=src python benchmarks/bench_report.py --quick    # skip the suite

Unlike ``benchmarks/test_perf_substrate.py`` (pytest-benchmark
variants of the same micro-benchmarks), this script needs no plugins
and produces a single committed artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.apps.atr import ATRPipeline, SceneSpec, generate_scene
from repro.core.experiments import run_paper_suite
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.hw.link import SerialLink
from repro.sim import Simulator


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


#: Overhead ratios are only trustworthy when the base measurement is
#: comfortably above scheduler jitter — same 100ms discipline
#: ``repro.obs.benchdiff`` applies before gating wall-clock metrics
#: (its ``_MIN_GATED_SECONDS``), with headroom.
_MIN_RATIO_SECONDS = 0.25


def median_of(fn, repeats: int = 5) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (median wall seconds, last result).

    Ratios of two timings want the median, not the best: best-of pairs
    two lucky outliers and routinely reports negative overhead for
    workloads that plainly do more work.
    """
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2], result


def bench_kernel(n: int = 100_000) -> dict:
    def run_events():
        sim = Simulator()

        def ping(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(ping(sim, n))
        sim.run()
        return sim.events_processed

    secs, events = best_of(run_events)
    return {"events": events, "events_per_s": round(events / secs)}


def bench_kibam(n: int = 50_000) -> dict:
    def steps():
        cell = KiBaM(PAPER_KIBAM_PARAMETERS)
        for _ in range(n):
            cell.draw(50.0, 0.5)
            cell.draw(0.0, 0.5)
        return cell.delivered_mah

    secs, _ = best_of(steps)
    return {"steps": 2 * n, "steps_per_s": round(2 * n / secs)}


def bench_link(n: int = 10_000) -> dict:
    def transactions():
        sim = Simulator()
        link = SerialLink(sim, "a", "b")

        def sender(sim, link, n):
            for i in range(n):
                tr = yield link.offer_send(i, 600, frm="a")
                yield tr.done

        def receiver(sim, link, n):
            for _ in range(n):
                tr = yield link.offer_recv(to="b")
                yield tr.done

        sim.process(sender(sim, link, n))
        sim.process(receiver(sim, link, n))
        sim.run()
        return link.transfer_count["a"]

    secs, count = best_of(transactions)
    return {"transactions": count, "transactions_per_s": round(count / secs)}


def bench_atr(frames: int = 20) -> dict:
    rng = np.random.default_rng(0)
    pipe = ATRPipeline()
    scenes = [generate_scene(SceneSpec(size=64), rng) for _ in range(frames)]

    def recognize():
        return [pipe.run(s, i) for i, s in enumerate(scenes)]

    secs, _ = best_of(recognize)
    return {"frames": frames, "frames_per_s": round(frames / secs, 1)}


def bench_atr_batch(frames: int = 200) -> dict:
    rng = np.random.default_rng(0)
    pipe = ATRPipeline()
    scenes = [generate_scene(SceneSpec(size=64), rng) for _ in range(frames)]

    secs, _ = best_of(lambda: pipe.run_batch(scenes))
    return {"frames": frames, "frames_per_s": round(frames / secs, 1)}


def bench_atr_labeling(size: int = 256, reps: int = 50) -> dict:
    from repro.apps.atr.blocks import label_components

    rng = np.random.default_rng(1)
    scene = generate_scene(SceneSpec(size=size, n_targets=4), rng)
    mask = scene.image > scene.image.mean() + 1.5 * scene.image.std()

    def run():
        n = 0
        for _ in range(reps):
            _, n = label_components(mask)
        return n

    secs, components = best_of(run)
    return {
        "mask": f"{size}x{size}",
        "components": components,
        "labelings_per_s": round(reps / secs, 1),
    }


def bench_atr_correlate(frames: int = 20) -> dict:
    from repro.apps.atr.blocks import detect_targets, fft_correlate, ifft_peaks

    rng = np.random.default_rng(2)
    scenes = [generate_scene(SceneSpec(size=64), rng) for _ in range(frames)]
    rois = [roi for s in scenes for roi in detect_targets(s.image, max_regions=1)]

    def run(reps):
        peaks = None
        for _ in range(reps):
            peaks = ifft_peaks(fft_correlate(rois))
        return peaks

    # One pass is ~5 ms — noise, not a measurement. Double the inner
    # repetitions until the timed region clears the ratio floor, then
    # take the median so one scheduler hiccup can't halve the number.
    reps = 1
    secs, peaks = median_of(lambda: run(reps), repeats=3)
    while secs < _MIN_RATIO_SECONDS and reps < 4096:
        reps *= 2
        secs, peaks = median_of(lambda: run(reps), repeats=3)
    return {"rois": len(rois), "rois_per_s": round(reps * len(peaks) / secs, 1)}


def bench_batch_sweep(grid: int = 10) -> dict:
    """The tentpole number: a grid**4-config sensitivity sweep through
    the structure-of-arrays cohort stepper — single core, no cache,
    plus a multi-core scaling column (same sweep at jobs 1/2/4)."""
    from repro.batch.sweep import BatchSweepSpec, batch_sweep, verify_sample

    spec = BatchSweepSpec(grid=grid, rel_span=0.10)
    result = batch_sweep(spec, jobs=1, cache=None)
    stats = result.stats
    report = verify_sample(result, sample=8)
    scaling = {}
    # Two chunks per worker at jobs=4, whatever the grid — the default
    # chunk size packs small sweeps into one chunk, which measures pool
    # overhead instead of scaling.
    chunk = max(32, -(-stats.configs // 8))
    for jobs in (1, 2, 4):
        r = batch_sweep(spec, jobs=jobs, cache=None, chunk_size=chunk)
        scaling[f"jobs_{jobs}"] = {
            "wall_s": round(r.stats.wall_s, 2),
            "configs_per_sec": round(r.stats.configs_per_sec, 1),
        }
    base = scaling["jobs_1"]["wall_s"]
    for row in scaling.values():
        row["speedup"] = round(base / row["wall_s"], 2) if row["wall_s"] else 0.0
    return {
        # Scaling numbers are meaningless without knowing how many cores
        # the host actually had — CI gates condition on this.
        "cpus": os.cpu_count() or 1,
        "scaling_chunk_size": chunk,
        "configs": stats.configs,
        "cells": stats.cells,
        "wall_s": round(stats.wall_s, 2),
        "configs_per_sec": round(stats.configs_per_sec, 1),
        "epochs": stats.epochs,
        "root_solves": stats.root_solves,
        "jobs_scaling": scaling,
        "scalar_spot_check": {
            "checked": report.checked,
            "frames_identical": report.frames_identical,
            "max_lifetime_rel_err": report.max_rel_err,
        },
    }


def bench_explore(quick: bool = False) -> dict:
    """The successive-halving ladder: design-space size resolved to an
    exact-confirmed Pareto frontier, single core, no cache — with the
    per-rung prune rates that make the wall-clock possible."""
    from repro.explore import default_space, explore

    if quick:
        space = default_space(
            bandwidth_points=2, capacity_points=3, io_points=3
        )
        keep = (64, 6, 2)
    else:
        space = default_space()
        keep = (512, 16, 6)
    t0 = time.perf_counter()
    result = explore(space, keep=keep)
    wall = time.perf_counter() - t0
    return {
        "configs": result.n_configs,
        "keep": list(keep),
        "wall_s": round(wall, 2),
        "configs_per_sec": round(result.n_configs / wall, 1),
        "pruned_before_sim_pct": round(
            result.pruned_before_sim_fraction * 100, 3
        ),
        "frontier_size": len(result.frontier),
        "rungs": {
            r.name: {
                "entered": r.entered,
                "promoted": r.promoted,
                "disqualified": r.disqualified,
                "prune_pct": round(r.prune_fraction * 100, 2),
                "wall_s": round(r.wall_s, 2),
            }
            for r in result.rungs
        },
    }


def bench_explore_guided(quick: bool = False) -> dict:
    """The model-guided sampler on the same space: how much of the
    universe the surrogate actually had to look at to land the same
    frontier the exhaustive driver confirms."""
    from repro.explore import default_space, explore

    if quick:
        space = default_space(
            bandwidth_points=2, capacity_points=3, io_points=3
        )
        keep = (64, 6, 2)
    else:
        space = default_space()
        keep = (512, 16, 6)
    t0 = time.perf_counter()
    result = explore(space, keep=keep, guided=True)
    wall = time.perf_counter() - t0
    sampler = result.sampler or {}
    return {
        "configs": result.n_configs,
        "keep": list(keep),
        "wall_s": round(wall, 2),
        "configs_considered": sampler.get("probed", 0),
        "sampler_proposals": sampler.get("proposals", 0),
        "sampler_rounds": sampler.get("rounds", 0),
        "stop_reason": sampler.get("stop_reason", ""),
        "probed_pct": round(
            100.0 * sampler.get("probed", 0) / max(1, result.n_configs), 2
        ),
        "frontier_size": len(result.frontier),
    }


def bench_obs(frames: int = 40, emits: int = 200_000) -> dict:
    """Telemetry layer: raw emit throughput plus whole-run overheads."""
    from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
    from repro.obs import EventLog, Telemetry

    def emit_loop():
        log = EventLog()
        for i in range(emits):
            log.emit("bench.tick", float(i), "bench", i=i)
        return len(log)

    secs, recorded = best_of(emit_loop)

    spec = PAPER_EXPERIMENTS["2A"]
    base, _ = best_of(lambda: run_experiment(spec, max_frames=frames))
    null_sink, _ = best_of(
        lambda: run_experiment(
            spec, max_frames=frames, telemetry=Telemetry(events=False)
        )
    )
    full, run = best_of(
        lambda: run_experiment(spec, max_frames=frames, telemetry=True)
    )
    obs = run.obs
    return {
        "event_emits_per_s": round(recorded / secs),
        "null_sink_overhead_pct": round((null_sink / base - 1.0) * 100, 2),
        "full_telemetry_overhead_pct": round((full / base - 1.0) * 100, 2),
        "instrumented_run": {
            "frames": frames,
            "events": len(obs.events),
            "event_kinds": len(obs.events.counts_by_kind()),
            "metric_rows": len(obs.metrics.as_rows()),
        },
    }


def bench_energy_ledger(adds: int = 200_000, frames: int = 30) -> dict:
    """Attribution ledger: add throughput, trace build, report render."""
    from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
    from repro.obs.causal import build_frame_trace
    from repro.obs.energy import EnergyLedger, verify_conservation
    from repro.obs.report import build_html_report

    nodes = ("node1", "node2")
    modes = ("computation", "communication", "idle")
    buckets = ("fft", "ifft", "link", "idle")

    def add_loop():
        led = EnergyLedger()
        for i in range(adds):
            led.add(
                nodes[i % 2], modes[i % 3], buckets[i % 4], 60.93, 0.01
            )
        return led

    add_secs, led = best_of(add_loop)

    spec = PAPER_EXPERIMENTS["2"]
    run_secs, run = best_of(
        lambda: run_experiment(spec, max_frames=frames, telemetry=True)
    )
    checks = verify_conservation(run.obs.energy, run.pipeline.delivered_mah)

    trace_secs, _ = best_of(
        lambda: [
            build_frame_trace(run.obs.events, i) for i in range(frames)
        ]
    )
    report_secs, page = best_of(lambda: build_html_report({"2": run}))

    return {
        "ledger_adds_per_s": round(adds / add_secs),
        "ledger_buckets": len(run.obs.energy),
        "conservation_ok": all(c.ok for c in checks),
        "max_conservation_rel_err": max(c.rel_error for c in checks),
        "frame_traces_per_s": round(frames / trace_secs),
        "report_render_s": round(report_secs, 4),
        "report_bytes": len(page),
        "instrumented_run_s": round(run_secs, 4),
    }


def bench_flight(n: int = 400, rounds: int = 15) -> dict:
    """Flight-recorder cost: recorder-off executor overhead (must stay
    inside the telemetry budget) and instrumented journaling throughput.

    Overheads are ratios of two timings of near-identical work, so the
    discipline here is stricter than the generic timing floor. The
    probe count auto-scales until one uninstrumented pass clears the
    floor; then each round times base, recorder-off, and recorder-on
    back to back and contributes one *paired* ratio per variant —
    pairing cancels machine drift slower than a round, which sequential
    per-variant blocks turn into phantom (even negative) overheads.
    The reported overhead is the median of the paired ratios, and the
    spread of those ratios ships alongside it: a reading inside
    ``overhead_noise_pct`` of zero means "below this host's noise
    floor", not a real speedup or slowdown.
    """
    from repro.exec.executor import SweepExecutor
    from repro.obs.flight import FlightRecorder

    def raw(items):
        return [_flight_probe(x) for x in items]

    items = list(range(n))
    base, _ = median_of(lambda: raw(items), repeats=3)
    while base < _MIN_RATIO_SECONDS and len(items) < 1_000_000:
        items = list(range(len(items) * 2))
        base, _ = median_of(lambda: raw(items), repeats=3)
    n = len(items)

    def plain():
        return SweepExecutor(jobs=1).map(_flight_probe, items)

    def recorded():
        flight = FlightRecorder(label="bench")
        out = SweepExecutor(jobs=1, flight=flight).map(_flight_probe, items)
        flight.finish()
        return out, flight

    bases, offs, ons = [], [], []
    flight = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        raw(items)
        b = time.perf_counter() - t0
        t0 = time.perf_counter()
        plain()
        off = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, flight = recorded()
        on = time.perf_counter() - t0
        bases.append(b)
        offs.append(off / b - 1.0)
        ons.append(on / b - 1.0)

    def med(xs: list[float]) -> float:
        return sorted(xs)[len(xs) // 2]

    def spread(xs: list[float]) -> float:
        ordered = sorted(xs)
        return ordered[(3 * len(ordered)) // 4] - ordered[len(ordered) // 4]

    base = med(bases)
    rows = [r.as_dict() for r in flight.records]
    return {
        "items": n,
        "base_wall_s": round(base, 4),
        "recorder_off_overhead_pct": round(med(offs) * 100, 2),
        "recorder_on_overhead_pct": round(med(ons) * 100, 2),
        "overhead_noise_pct": round(max(spread(offs), spread(ons)) * 100, 2),
        "journaled_items_per_s": round(n / (base * (1.0 + med(ons)))),
        "journal_rows": len(rows),
    }


def _flight_probe(x: int) -> int:
    # Heavy enough (~100us) that per-item work dominates dispatch, as
    # it does for real sweep items (milliseconds to seconds each).
    acc = 0
    for i in range(5_000):
        acc += (x + i) * i
    return acc


def bench_suite(mode: str = "exact", jobs: int = 1) -> dict:
    t0 = time.perf_counter()
    runs = run_paper_suite(mode=mode, jobs=jobs)
    wall = time.perf_counter() - t0
    out: dict = {
        "wall_s": round(wall, 2),
        "experiments": {
            label: {
                "t_hours": round(run.t_hours, 4),
                "frames": run.frames,
                # Kernel events actually dispatched — populated for the
                # single-node no-I/O runs (0A/0B) too, which have no
                # PipelineResult to carry the count.
                "events": run.sim_events,
            }
            for label, run in runs.items()
        },
    }
    if mode == "fast":
        for label, run in runs.items():
            if run.pipeline is not None:
                row = out["experiments"][label]
                row["ff_jumps"] = run.pipeline.ff_jumps
                row["ff_frames_skipped"] = run.pipeline.ff_frames_skipped
    return out


def _add_parity(section: dict, serial: dict) -> None:
    """Annotate a suite section with frame/lifetime parity vs serial."""
    for label, row in section["experiments"].items():
        ref = serial["experiments"].get(label)
        if ref is None:
            continue
        row["frames_match_serial"] = row["frames"] == ref["frames"]
        row["t_hours_rel_err"] = (
            round(abs(row["t_hours"] - ref["t_hours"]) / ref["t_hours"], 9)
            if ref["t_hours"]
            else 0.0
        )
    if section["wall_s"]:
        section["speedup_vs_serial"] = round(
            serial["wall_s"] / section["wall_s"], 2
        )


#: Most recent prior reports kept in the ``history`` list. Without a
#: cap the committed artifact grows by one entry per bench run forever.
_HISTORY_MAX = 20


def _carry_history(output: Path) -> list[dict]:
    """Prior reports' headline numbers, so the trajectory stays visible.

    Reads the existing report (if any), condenses its scalar metrics,
    and appends them to whatever history it already carried, keeping
    only the last :data:`_HISTORY_MAX` entries.
    """
    try:
        old = json.loads(output.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    # Condense every top-level section uniformly (scalar leaves only) —
    # a hardcoded key list here silently dropped newly added sections
    # from the trajectory, which is exactly what a perf gate can't have.
    condensed: dict = {"version": old.get("version")}
    for key, payload in old.items():
        if key in ("version", "python", "machine", "history"):
            continue
        if not isinstance(payload, dict):
            continue
        scalars = {
            k: v for k, v in payload.items() if not isinstance(v, dict)
        }
        if scalars:
            condensed[key] = scalars
    return (list(old.get("history", [])) + [condensed])[-_HISTORY_MAX:]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="micro-benchmarks only; skip the full paper suite",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_substrate.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = {
        "version": repro.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernel_event_dispatch": bench_kernel(),
        "kibam_fused_draw": bench_kibam(),
        "link_transactions": bench_link(),
        "atr_recognition": bench_atr(),
        "atr_recognition_batch": bench_atr_batch(),
        "atr_labeling": bench_atr_labeling(),
        "atr_correlate": bench_atr_correlate(),
        "obs": bench_obs(),
        "energy_ledger": bench_energy_ledger(),
        "flight": bench_flight(),
        "batch_sweep": bench_batch_sweep(grid=4 if args.quick else 10),
        "explore": bench_explore(quick=args.quick),
        "explore_guided": bench_explore_guided(quick=args.quick),
    }
    if not args.quick:
        serial = bench_suite()
        report["paper_suite_serial"] = serial
        fastforward = bench_suite(mode="fast")
        _add_parity(fastforward, serial)
        report["paper_suite_fastforward"] = fastforward
        parallel = bench_suite(jobs=4)
        _add_parity(parallel, serial)
        report["paper_suite_parallel"] = parallel
    report["history"] = _carry_history(args.output)

    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    json.dump(report, sys.stdout, indent=2)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
