"""Fig. 7 — the power profile of ATR on Itsy.

Regenerates the three current-vs-frequency curves (idle /
communication / computation over the 11 SA-1100 operating points) and
checks every current the paper quotes in its text.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.figures import figure7_power_profile


def test_fig07_curves(benchmark):
    fig = benchmark(figure7_power_profile)
    print_block("Fig. 7 — power profile (net battery current)", fig.text)

    rows = {r["freq_mhz"]: r for r in fig.rows}
    assert len(rows) == 11
    # §6.3: comm drops 110 mA -> 40 mA between 206.4 and 59 MHz.
    assert rows[206.4]["communication_ma"] == pytest.approx(110.0)
    assert rows[59.0]["communication_ma"] == pytest.approx(40.0)
    # §6.5: comm at 103.2 MHz is ~55 mA.
    assert rows[103.2]["communication_ma"] == pytest.approx(55.0, abs=2.0)
    # §4.4: curves span 30-130 mA, computation on top everywhere.
    assert rows[59.0]["idle_ma"] == pytest.approx(30.0, abs=0.5)
    assert rows[206.4]["computation_ma"] == pytest.approx(130.0, abs=0.5)
    for row in fig.rows:
        assert row["computation_ma"] > row["communication_ma"] > row["idle_ma"]
