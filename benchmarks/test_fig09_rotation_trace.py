"""Fig. 9 — node rotation on two nodes.

Replays a short run with a small rotation period and renders the
transition window: the outgoing role-0 node runs PROC1 *and* PROC2 on
its transition frame (no inter-node SEND), sends the final result to
the host, and the roles swap — with no loss of pipeline throughput.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.gantt import render_gantt
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.sim import TraceRecorder

D = 2.3
PERIOD = 6


def traced_rotation(frames: int):
    import dataclasses

    spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=PERIOD)
    trace = TraceRecorder()
    run = run_experiment(spec, trace=trace, max_frames=frames)
    return trace, run


def test_fig09_rotation_transition(benchmark):
    trace, run = benchmark.pedantic(
        traced_rotation, args=(3 * PERIOD,), rounds=1, iterations=1
    )
    window = (PERIOD - 2) * D, (PERIOD + 3) * D
    print_block(
        f"Fig. 9 — node rotation (period = {PERIOD} frames), transition window",
        render_gantt(trace, start_s=window[0], end_s=window[1], width=92, deadline_s=D),
    )

    # During the transition frame node1 computes at BOTH roles' levels
    # (59 MHz for PROC1, 103.2 MHz for PROC2) back to back.
    n1_proc = [s for s in trace.segments("node1") if s.activity == "proc"]
    transition = [
        s for s in n1_proc if window[0] <= s.start <= window[1]
    ]
    levels = {s.frequency_mhz for s in transition}
    assert {59.0, 103.2} <= levels

    # After the rotation, node2 serves role 0: it receives from the host
    # (10.1 KB transactions, ~1.1 s) instead of 0.6 KB ones.
    n2_recvs_after = [
        s
        for s in trace.segments("node2")
        if s.activity == "recv" and s.start > (PERIOD + 1) * D
    ]
    assert any(s.duration > 1.0 for s in n2_recvs_after)

    # Throughput is preserved through the rotation (§5.5: "no
    # performance loss"): one result per D on average. Individual
    # deliveries jitter slightly because a transition frame skips the
    # inter-node hop and lands early, so the short-run mean is loose.
    assert run.pipeline.mean_result_period_s() == pytest.approx(D, rel=0.02)
    assert run.frames == 3 * PERIOD
