"""Extension — deep sleep in the slack the paper leaves idle.

The Itsy hardware supports a deep-sleep state (~1 mA) the paper's
experiments never engage; its nodes idle (30-38 mA) through their frame
slack. This bench replays the partitioned experiments with
sleep-in-slack enabled and measures the lifetime gain — and shows the
interaction with the battery's recovery effect: sleeping *deepens* the
rest periods KiBaM recovers during, so the gain exceeds the naive
average-current arithmetic.
"""

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

D = 2.3


def run_pair(wake_latency_s):
    partition = Partition(PAPER_PROFILE, (1,))
    plans = [
        plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
        for a in partition.assignments
    ]
    roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        plans, SA1100_TABLE
    )

    def build(sleep):
        return PipelineConfig(
            partition=partition,
            roles=roles,
            node_names=("node1", "node2"),
            battery_factory=sweep_kibam,
            deadline_s=D,
            sleep_in_slack=sleep,
            sleep_wake_latency_s=wake_latency_s,
            monitor_interval_s=None,
        )

    idle = PipelineEngine(build(False)).run()
    sleep = PipelineEngine(build(True)).run()
    return idle, sleep


def test_sleep_in_slack(benchmark):
    idle, sleep = benchmark.pedantic(
        run_pair, args=(0.05,), rounds=1, iterations=1
    )
    _, sleep_slow_wake = run_pair(0.3)

    rows = [
        {
            "config": "idle in slack (paper, 2A)",
            "frames": idle.frames_completed,
            "late_per_1k": round(1000 * idle.late_results / idle.frames_completed, 1),
        },
        {
            "config": "sleep in slack (wake 50 ms)",
            "frames": sleep.frames_completed,
            "late_per_1k": round(1000 * sleep.late_results / sleep.frames_completed, 1),
        },
        {
            "config": "sleep in slack (wake 300 ms)",
            "frames": sleep_slow_wake.frames_completed,
            "late_per_1k": round(
                1000 * sleep_slow_wake.late_results / sleep_slow_wake.frames_completed,
                1,
            ),
        },
    ]
    print_block(
        "Extension — deep sleep through frame slack (quarter-scale cells)",
        format_table(rows),
    )

    # Sleeping the slack buys real lifetime without breaking timing.
    assert sleep.frames_completed > 1.02 * idle.frames_completed
    assert sleep.late_results == 0
    # A slower wake-up eats into the benefit but must not break timing
    # (the window is shrunk by the latency).
    assert sleep_slow_wake.late_results == 0
    assert sleep_slow_wake.frames_completed <= sleep.frames_completed
