"""Extension — exhaustive design-space ranking.

Enumerates every configuration the paper's methodology admits (all
contiguous partitions up to 3 stages, DVS-during-I/O on/off, node
rotation on/off) and ranks them with the analytical lifetime predictor
at the calibrated battery scale. The headline check: the configuration
the paper arrived at by hand — scheme 1, DVS during I/O, node rotation
— is the global optimum of its own design space, and the predictor's
number for it matches the engine-measured (2C) lifetime.
"""

import pytest

from benchmarks.conftest import print_block
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.optimizer import optimize_configuration


def test_design_space_ranking(benchmark, paper_runs):
    ranked = benchmark.pedantic(
        optimize_configuration,
        args=(PAPER_PROFILE,),
        kwargs={"max_stages": 3},
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "rank": i + 1,
            "configuration": c.description,
            "N": c.n_stages,
            "T_hours": round(c.lifetime_hours, 2),
            "Tnorm_hours": round(c.normalized_hours, 2),
        }
        for i, c in enumerate(ranked[:10])
    ]
    print_block(
        "Extension — full design-space ranking (paper-scale cells, "
        f"{len(ranked)} feasible configurations)",
        format_table(rows),
    )

    best = ranked[0]
    # The paper's hand-picked configuration is the global optimum.
    assert best.cuts == (1,)
    assert best.dvs_during_io and best.rotation
    # The analytical prediction agrees with the engine-measured (2C).
    engine_2c = paper_runs["2C"].t_hours
    assert best.lifetime_hours == pytest.approx(engine_2c, rel=0.01)
    # Depth-3 pipelines offer more absolute uptime but lower efficiency:
    depth3 = [c for c in ranked if c.n_stages == 3 and c.rotation]
    assert depth3
    assert max(c.lifetime_hours for c in depth3) > best.lifetime_hours
    assert all(c.normalized_hours < best.normalized_hours for c in depth3)
