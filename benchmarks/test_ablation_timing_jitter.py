"""Ablation — transaction-startup jitter vs the per-frame contract.

The paper reports the serial startup cost as a 50-100 ms *range* but
plans schedules against a fixed budget. This sweep runs two
configurations under increasing startup jitter and counts violations
of the per-frame latency contract (delivery within N * D of emission):

- the **baseline** (experiment 1A config) packs exactly 2.3 s of work
  into the 2.3 s frame — zero slack, so jitter accumulates as a random
  walk and produces real misses;
- the **partitioned pipeline** (experiment 2A) leaves ~0.8 s of
  end-to-end slack, which absorbs the paper's whole startup spread.

A robustness argument for partitioning the paper never makes
explicitly: splitting the chain does not just enable lower clocks, it
buys timing margin.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_block, sweep_kibam
from repro.analysis.tables import format_table
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.hw.link import TransactionTiming

JITTERS_MS = [0.0, 10.0, 25.0]
SEEDS = [1, 2, 3]


def run_sweep():
    rows = []
    for label in ("1A", "2A"):
        for jitter_ms in JITTERS_MS:
            timing = TransactionTiming(
                bandwidth_bps=80_000.0,
                startup_s=0.09,
                startup_jitter_s=jitter_ms / 1000.0,
            )
            seeds = SEEDS if jitter_ms else [SEEDS[0]]
            late, frames, worst = 0, 0, 0.0
            for seed in seeds:
                run = run_experiment(
                    dataclasses.replace(
                        PAPER_EXPERIMENTS[label], label=f"{label}-j{jitter_ms:g}"
                    ),
                    battery_factory=sweep_kibam,
                    timing=timing,
                    seed=seed,
                )
                result = run.pipeline
                late += result.late_results
                frames += result.frames_completed
                worst = max(worst, result.max_lateness_s)
            rows.append(
                {
                    "config": label,
                    "jitter_ms": jitter_ms,
                    "frames": frames // len(seeds),
                    "late_per_1k": round(1000.0 * late / max(frames, 1), 2),
                    "max_lateness_ms": round(worst * 1000.0, 1),
                }
            )
    return rows


def test_timing_jitter_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_block(
        "Ablation — startup jitter vs per-frame deadline misses",
        format_table(rows),
    )

    by_key = {(r["config"], r["jitter_ms"]): r for r in rows}
    # Deterministic timing meets the contract exactly in both configs.
    for label in ("1A", "2A"):
        assert by_key[(label, 0.0)]["late_per_1k"] == 0.0
    # Zero-slack baseline: jitter causes real misses, growing with spread.
    baseline_rates = [by_key[("1A", j)]["late_per_1k"] for j in JITTERS_MS]
    assert baseline_rates[-1] > 0
    assert baseline_rates == sorted(baseline_rates)
    # The partitioned pipeline's slack absorbs the paper's whole range.
    for j in JITTERS_MS:
        assert by_key[("2A", j)]["late_per_1k"] == 0.0
    # Lifetimes are jitter-independent (misses are timing, not energy).
    for label in ("1A", "2A"):
        frames = [by_key[(label, j)]["frames"] for j in JITTERS_MS]
        assert max(frames) - min(frames) < 0.02 * max(frames)
