#!/usr/bin/env python3
"""Optimal DVS scheduling (Yao et al.) meets the paper's workload.

The paper's related work (§2) builds on the Yao-Demers-Shenker optimal
voltage schedule. This demo:

1. runs YDS on a bursty job set and shows the multi-speed profile;
2. runs it on the paper's periodic ATR frames and shows it collapse to
   one constant speed — proving the paper's "slowest feasible level"
   policy is YDS-optimal for its workload;
3. discretizes the continuous speeds onto the SA-1100's 11 real
   operating points with the standard two-level emulation.

Usage::

    python examples/yds_scheduling_demo.py
"""

from repro import PAPER_LINK_TIMING, PAPER_PROFILE, SA1100_TABLE, Job, yds_schedule
from repro.analysis.tables import format_table
from repro.core.yds import discretize_to_table, peak_speed, schedule_energy
from repro.pipeline.schedule import required_frequency_mhz
from repro.pipeline.tasks import Partition

D = 2.3


def show(segments, title):
    rows = [
        {
            "start_s": s.start,
            "end_s": s.end,
            "speed": s.speed,
            "mhz_equiv": s.speed * 206.4,
            "jobs": ", ".join(s.jobs),
        }
        for s in segments
    ]
    print(format_table(rows, float_fmt=".3f", title=title))
    print(f"energy (cubic model): {schedule_energy(segments):.3f}\n")


def bursty_example() -> None:
    jobs = [
        Job("boot", 0.0, 1.0, 0.6),
        Job("burst-a", 2.0, 3.0, 0.8),
        Job("burst-b", 2.0, 3.5, 0.5),
        Job("background", 0.0, 8.0, 1.0),
    ]
    segments = yds_schedule(jobs)
    show(segments, "1. bursty job set — YDS speed profile")


def paper_workload() -> None:
    stage = Partition(PAPER_PROFILE, (1,)).stage(1)  # Node2 of scheme 1
    recv = PAPER_LINK_TIMING.nominal_duration(stage.recv_bytes)
    send = PAPER_LINK_TIMING.nominal_duration(stage.send_bytes)
    jobs = [
        Job(
            f"frame{k}",
            arrival=k * D + recv,
            deadline=(k + 1) * D - send,
            work=stage.proc_seconds_at_max,
        )
        for k in range(4)
    ]
    segments = yds_schedule(jobs)
    show(segments, "2. Node2's periodic ATR frames — YDS speed profile")
    required = required_frequency_mhz(stage, PAPER_LINK_TIMING, D, SA1100_TABLE)
    print(
        f"YDS peak speed {peak_speed(segments):.4f} x 206.4 MHz = "
        f"{peak_speed(segments) * 206.4:.1f} MHz\n"
        f"paper's required frequency for Node2       = {required:.1f} MHz\n"
        "-> the constant slowest-feasible clock IS the optimal schedule\n"
    )

    rows = []
    for seg, low, high, fraction in discretize_to_table(segments, SA1100_TABLE):
        rows.append(
            {
                "segment": f"[{seg.start:.2f}, {seg.end:.2f}]",
                "low_level": str(low),
                "high_level": str(high),
                "high_fraction": fraction,
            }
        )
    print(format_table(rows, float_fmt=".3f",
                       title="3. two-level emulation on the real DVS table"))
    print(
        "\nThe SA-1100 cannot run at the fractional optimum, so each segment "
        "splits\nits time between the two adjacent operating points "
        "(energy-optimal for\nconvex power)."
    )


def main() -> None:
    bursty_example()
    paper_workload()


if __name__ == "__main__":
    main()
