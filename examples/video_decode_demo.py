#!/usr/bin/env python3
"""Frame-based DVS for video decoding (the Choi et al. related work).

The paper's §2 cites frame-based DVS for MPEG decoders: I, P and B
frames cost predictably different amounts, so the clock can follow the
GOP pattern. This demo runs a software-decoder workload on the
simulated Itsy and compares:

- a static clock sized for the worst case (the I frame);
- frame-based DVS (the engine's adaptive per-frame mode driven by the
  GOP-periodic workload trace).

Usage::

    python examples/video_decode_demo.py [GOP_PATTERN]
"""

import dataclasses
import sys

from repro import (
    DVSDuringIOPolicy,
    PAPER_LINK_TIMING,
    Partition,
    PipelineConfig,
    PipelineEngine,
    SA1100_TABLE,
    SlowestFeasiblePolicy,
)
from repro.analysis.tables import format_table
from repro.apps.video import GopStructure, VIDEO_PROFILE, video_workload
from repro.apps.video.profile import VIDEO_FRAME_PERIOD_S
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.pipeline.schedule import plan_node


def small_battery() -> KiBaM:
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS, capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 8
    )
    return KiBaM(params)


def run(gop: GopStructure, adaptive: bool):
    partition = Partition(VIDEO_PROFILE)
    plans = [
        plan_node(a, PAPER_LINK_TIMING, VIDEO_FRAME_PERIOD_S, SA1100_TABLE)
        for a in partition.assignments
    ]
    roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        plans, SA1100_TABLE
    )
    config = PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=("player",),
        battery_factory=small_battery,
        deadline_s=VIDEO_FRAME_PERIOD_S,
        workload=video_workload(gop),
        adaptive_workload_dvs=adaptive,
        monitor_interval_s=None,
    )
    return PipelineEngine(config).run()


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "IBBPBBPBB"
    gop = GopStructure(pattern)
    print(f"Software video decode on the simulated Itsy, GOP {gop.describe()},")
    print(f"frame period {VIDEO_FRAME_PERIOD_S} s, eighth-scale battery\n")

    rows = []
    for name, adaptive in (
        ("static worst-case clock", False),
        ("frame-based DVS (Choi et al.)", True),
    ):
        result = run(gop, adaptive)
        rows.append(
            {
                "strategy": name,
                "frames_decoded": result.frames_completed,
                "playback_h": round((result.last_result_s or 0) / 3600.0, 2),
                "late_per_1k": round(
                    1000 * result.late_results / max(result.frames_completed, 1), 1
                ),
            }
        )
    print(format_table(rows))
    gain = rows[1]["frames_decoded"] / rows[0]["frames_decoded"] - 1
    print(
        f"\nFollowing the GOP with the clock plays {gain:+.0%} more video on "
        "the same battery\nwith zero missed frames — the related-work result, "
        "reproduced inside the\npaper's own testbed."
    )


if __name__ == "__main__":
    main()
