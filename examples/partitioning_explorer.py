#!/usr/bin/env python3
"""Explore partitioning schemes: the analysis behind the paper's Fig. 8.

For a range of frame delays D, enumerate every contiguous 2-way
partition of the ATR chain, derive each node's required DVS level from
the frame-delay arithmetic, and show which schemes are feasible and
which one the energy criterion selects. At the paper's D = 2.3 s only
scheme 1 allows low-frequency operation; tighter deadlines kill all
schemes, looser ones make them all easy.

Usage::

    python examples/partitioning_explorer.py
"""

from repro import PAPER_LINK_TIMING, PAPER_PROFILE, SA1100_TABLE, analyze_partitions, select_best
from repro.analysis.tables import format_table
from repro.core.partitioning import estimate_average_current_ma
from repro.errors import InfeasiblePartitionError
from repro.hw.power import PAPER_POWER_MODEL


def explore_deadline(deadline_s: float) -> None:
    analyses = analyze_partitions(
        PAPER_PROFILE, 2, PAPER_LINK_TIMING, deadline_s, SA1100_TABLE
    )
    rows = [a.as_row() for a in analyses]
    print(format_table(rows, float_fmt=".1f",
                       title=f"\nD = {deadline_s:.2f} s"))
    try:
        best = select_best(analyses)
    except InfeasiblePartitionError:
        print("  -> no feasible scheme at this deadline")
        return
    currents = estimate_average_current_ma(best, PAPER_POWER_MODEL, deadline_s)
    print(f"  -> selected: {best.partition.describe()}")
    print(
        "  -> estimated average currents: "
        + ", ".join(f"node{i + 1} {c:.1f} mA" for i, c in enumerate(currents))
        + f"  (critical battery: {max(currents):.1f} mA)"
    )


def main() -> None:
    print("Two-node partitioning of the ATR chain over the serial link")
    print("(required frequency = work / (D - communication time))")
    for deadline in (2.0, 2.3, 3.0, 4.0):
        explore_deadline(deadline)

    print(
        "\nAt the paper's D = 2.3 s, scheme 1 — Target Detection alone on "
        "Node1 —\nis the only scheme keeping both nodes in the lower half "
        "of the DVS table;\nscheme 3 would need ~380 MHz and the hardware "
        "tops out at 206.4 MHz."
    )


if __name__ == "__main__":
    main()
