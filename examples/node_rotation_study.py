#!/usr/bin/env python3
"""Node rotation in action: schedules, balance, and the period trade-off.

Three views of the paper's §5.5 technique:

1. a Gantt rendering of the rotation transition (the paper's Fig. 9):
   the outgoing first node runs both PROC stages back to back and hands
   the host connection to its peer;
2. per-node battery telemetry showing how rotation balances the two
   discharge curves;
3. a rotation-period sweep (frames completed vs period).

Usage::

    python examples/node_rotation_study.py
"""

import dataclasses

from repro import TraceRecorder, render_gantt, run_experiment
from repro.analysis.charts import line_plot
from repro.analysis.tables import format_table
from repro.core.experiments import PAPER_EXPERIMENTS
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS

D = 2.3


def small_battery() -> KiBaM:
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS, capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 4
    )
    return KiBaM(params)


def show_transition() -> None:
    period = 6
    spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=period)
    trace = TraceRecorder()
    run_experiment(spec, trace=trace, max_frames=3 * period)
    print("Rotation transition (Fig. 9), rotation period =", period, "frames:")
    print(
        render_gantt(
            trace,
            start_s=(period - 2) * D,
            end_s=(period + 3) * D,
            width=96,
            deadline_s=D,
        )
    )
    print()


def show_balance() -> None:
    print("Discharge balance (quarter-scale cells):")
    rows = []
    for label in ("2A", "2C"):
        run = run_experiment(
            PAPER_EXPERIMENTS[label],
            battery_factory=small_battery,
            monitor_interval_s=60.0,
        )
        deaths = {
            name: f"{t / 3600:.2f} h" for name, t in run.death_times_s.items()
        }
        rows.append(
            {
                "experiment": label,
                "rotation": PAPER_EXPERIMENTS[label].rotation_period or "-",
                "frames": run.frames,
                "deaths": ", ".join(f"{k}@{v}" for k, v in sorted(deaths.items()))
                or "none recorded",
            }
        )
    print(format_table(rows))
    print(
        "\nWithout rotation Node2 dies alone and strands Node1's battery;\n"
        "with rotation both cells drain together.\n"
    )


def show_period_sweep() -> None:
    print("Rotation-period sweep (quarter-scale cells):")
    points = []
    for period in (2, 5, 10, 30, 100, 300, 1000, 3000):
        spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=period)
        run = run_experiment(spec, battery_factory=small_battery)
        points.append((float(period), float(run.frames)))
    print(
        line_plot(
            points,
            width=64,
            height=12,
            x_label="rotation period (frames)",
            y_label="frames completed",
        )
    )
    print(
        "\nAny moderate period captures nearly all the benefit; very long "
        "periods\ndecay toward the unbalanced pipeline."
    )


def main() -> None:
    show_transition()
    show_balance()
    show_period_sweep()


if __name__ == "__main__":
    main()
