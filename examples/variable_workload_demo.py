#!/usr/bin/env python3
"""Variable workload on the distributed pipeline.

The paper fixes its ATR workload; real scenes vary — more targets,
harder clutter, or richer matching (see
``examples/atr_image_demo.py`` and the multi-scale matcher). This demo
runs the partitioned pipeline under a bursty workload with three
strategies and prints the timeliness/energy trade:

- static slowest-feasible levels (the paper's policy, sized for the
  nominal cost);
- per-frame adaptive DVS (re-pick the level from each frame's actual
  cost);
- worst-case headroom (levels sized for the burst cost).

Usage::

    python examples/variable_workload_demo.py
"""

import dataclasses

from repro import (
    DVSDuringIOPolicy,
    PAPER_LINK_TIMING,
    PAPER_PROFILE,
    PinnedLevelsPolicy,
    PipelineConfig,
    PipelineEngine,
    Partition,
    SA1100_TABLE,
    SlowestFeasiblePolicy,
)
from repro.analysis.tables import format_table
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.pipeline.schedule import plan_node
from repro.pipeline.workload import BurstyWorkload

D = 2.3


def small_battery() -> KiBaM:
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS, capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 4
    )
    return KiBaM(params)


def run(policy, adaptive: bool):
    partition = Partition(PAPER_PROFILE, (1,))
    plans = [
        plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
        for a in partition.assignments
    ]
    config = PipelineConfig(
        partition=partition,
        roles=policy.role_configs(plans, SA1100_TABLE),
        node_names=("node1", "node2"),
        battery_factory=small_battery,
        deadline_s=D,
        workload=BurstyWorkload(
            calm_scale=0.9, burst_scale=1.25, burst_prob=0.08, burst_length=4
        ),
        adaptive_workload_dvs=adaptive,
        seed=11,
        monitor_interval_s=None,
    )
    return PipelineEngine(config).run()


def main() -> None:
    print("Bursty ATR workload: 0.9x calm frames, 1.25x bursts of 4 "
          "(quarter-scale cells)\n")
    strategies = {
        "static slowest-feasible (paper)": (
            DVSDuringIOPolicy(SlowestFeasiblePolicy()), False,
        ),
        "adaptive per-frame DVS": (
            DVSDuringIOPolicy(SlowestFeasiblePolicy()), True,
        ),
        "worst-case headroom (132.7 MHz)": (
            DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 132.7])), False,
        ),
    }
    rows = []
    for name, (policy, adaptive) in strategies.items():
        result = run(policy, adaptive)
        rows.append(
            {
                "strategy": name,
                "frames": result.frames_completed,
                "late_per_1k": round(
                    1000 * result.late_results / result.frames_completed, 1
                ),
                "max_lateness_s": round(result.max_lateness_s, 2),
                "node2_mAh": round(result.delivered_mah["node2"], 1),
            }
        )
    print(format_table(rows))
    print(
        "\nThe paper's static levels miss deadlines whenever a burst "
        "arrives; adaptive\nper-frame DVS restores timeliness while "
        "completing more frames than the\nworst-case-headroom clocks — "
        "the Shin/Im-style slack reclamation the paper\ncites as "
        "compatible with its setting."
    )


if __name__ == "__main__":
    main()
