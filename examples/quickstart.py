#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline comparison.

Runs four of the paper's experiments on the simulated Itsy testbed —
baseline, DVS during I/O, partitioning, and node rotation — and prints
the Fig. 10-style comparison. Takes about a minute: each run discharges
a calibrated battery model over several simulated hours.

Usage::

    python examples/quickstart.py [--fast]

``--fast`` uses quarter-capacity cells (seconds instead of a minute;
ratios are nearly identical).
"""

import dataclasses
import sys

from repro import PAPER_BATTERY, figure10_results, run_paper_suite
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS


def fast_battery() -> KiBaM:
    """Quarter-capacity cell with the paper's dynamics."""
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS,
        capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 4,
    )
    return KiBaM(params)


def main() -> None:
    fast = "--fast" in sys.argv
    factory = fast_battery if fast else PAPER_BATTERY
    labels = ["1", "1A", "2", "2C"]

    print(f"Running experiments {labels} "
          f"({'quarter-scale' if fast else 'paper-scale'} batteries)...")
    runs = run_paper_suite(labels, battery_factory=factory)

    print()
    print(figure10_results(runs).text)
    print()
    best = max(runs.values(), key=lambda r: r.t_hours / r.spec.n_nodes)
    print(
        f"Longest normalized battery life: experiment ({best.spec.label}) — "
        f"{best.spec.description}"
    )


if __name__ == "__main__":
    main()
