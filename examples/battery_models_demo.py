#!/usr/bin/env python3
"""Why the battery model matters: recovery and rate-capacity effects.

The paper's most counter-intuitive results — F(1A) > F(0A), and
aggregate energy savings failing to extend lifetime — are battery
phenomena. This demo discharges three models (KiBaM, Peukert, linear)
of equal capacity and shows:

1. the rate-capacity effect: delivered charge vs discharge current;
2. the recovery effect: a pulsed load delivering more than the same
   current applied continuously;
3. the consequence: how much charge a dying cell strands in its bound
   well (the capacity node rotation exists to reclaim).

Usage::

    python examples/battery_models_demo.py
"""

import typing as t

from repro import KiBaM, KiBaMParameters, LinearBattery, PeukertBattery
from repro.analysis.charts import line_plot
from repro.analysis.tables import format_table
from repro.hw.battery import Battery

CAPACITY_MAH = 300.0


def fresh(model: str) -> Battery:
    """A fully charged cell of the requested model."""
    if model == "kibam":
        # Illustrative dynamics (c, k' chosen to make the effects easy
        # to see at this small capacity; the paper-calibrated values
        # live in repro.hw.battery.kibam.PAPER_KIBAM_PARAMETERS).
        return KiBaM(KiBaMParameters(CAPACITY_MAH, c=0.4, k_prime_per_hour=2.0))
    if model == "peukert":
        return PeukertBattery(CAPACITY_MAH, reference_ma=60.0, exponent=1.2)
    if model == "linear":
        return LinearBattery(CAPACITY_MAH)
    raise ValueError(model)


MODELS = ("kibam", "peukert", "linear")


def rate_capacity() -> None:
    print("1. Rate-capacity effect: delivered charge vs constant current\n")
    rows = []
    for current in (20.0, 60.0, 130.0, 250.0):
        row: dict[str, t.Any] = {"current_ma": current}
        for model in MODELS:
            lifetime = fresh(model).time_to_death(current)
            row[f"{model}_mAh"] = current * lifetime / 3600.0
        rows.append(row)
    print(format_table(rows, float_fmt=".0f"))
    print(
        "\nThe linear cell always delivers its nominal capacity; KiBaM and "
        "Peukert\ndeliver markedly less at high rates — the paper's 0A vs 0B "
        "contrast.\n(Peukert's 20 mA row exceeds nominal: below the reference "
        "current the law\ncredits capacity back.)\n"
    )


def discharge_pulsed(cell: Battery, on_ma: float, on_s: float, off_s: float) -> float:
    """Run an on/off duty cycle to death; return delivered mAh."""
    delivered = 0.0
    while True:
        ttd = cell.time_to_death(on_ma)
        if ttd <= on_s:
            return (delivered + on_ma * ttd) / 3600.0
        cell.draw(on_ma, on_s)
        delivered += on_ma * on_s
        cell.draw(0.0, off_s)


def recovery() -> None:
    print("2. Recovery effect: 130 mA pulsed (50% duty) vs 130 mA continuous\n")
    rows = []
    for model in MODELS:
        continuous = fresh(model)
        continuous_mah = 130.0 * continuous.time_to_death(130.0) / 3600.0
        pulsed_mah = discharge_pulsed(fresh(model), 130.0, on_s=30.0, off_s=30.0)
        rows.append(
            {
                "model": model,
                "continuous_mAh": continuous_mah,
                "pulsed_mAh": pulsed_mah,
                "recovered": f"{pulsed_mah / continuous_mah - 1:+.0%}",
            }
        )
    print(format_table(rows, float_fmt=".0f"))
    print(
        "\nOnly KiBaM regains charge during the rests — the mechanism the "
        "paper\ninvokes (§6.3) to explain why DVS during I/O completed more "
        "frames than\nthe no-I/O run ever did.\n"
    )


def discharge_curve() -> None:
    print("3. KiBaM discharge under a duty-cycled load (charge fraction vs hours)\n")
    cell = fresh("kibam")
    points = [(0.0, 1.0)]
    elapsed = 0.0
    while True:
        ttd = cell.time_to_death(130.0)
        if ttd <= 60.0:
            cell.draw(130.0, max(0.0, ttd - 1e-9))
            elapsed += ttd
            points.append((elapsed / 3600.0, cell.charge_fraction()))
            break
        cell.draw(130.0, 60.0)
        cell.draw(30.0, 60.0)
        elapsed += 120.0
        points.append((elapsed / 3600.0, cell.charge_fraction()))
    print(line_plot(points, width=64, height=12, x_label="hours", y_label="charge"))
    print(
        f"\ndeath at {points[-1][0]:.2f} h with "
        f"{cell.charge_fraction():.0%} of nominal charge stranded in the "
        "bound well —\nthe capacity a failed node wastes, and what node "
        "rotation reclaims."
    )


def main() -> None:
    rate_capacity()
    recovery()
    discharge_curve()


if __name__ == "__main__":
    main()
