#!/usr/bin/env python3
"""Power-failure recovery in action (§5.4 / experiment 2B).

Runs the partitioned pipeline with the ack/timeout/migrate protocol on
quarter-scale cells, narrates the failure sequence, and prints the
per-node energy breakdown — showing both sides of the paper's verdict:
the protocol's ack transactions cost energy on every frame, but after
the heavy node dies the survivor's otherwise-stranded charge buys
thousands of extra frames.

Usage::

    python examples/failure_recovery_demo.py
"""

import dataclasses

from repro import run_experiment
from repro.analysis.energy import render_energy_breakdown
from repro.analysis.tables import format_table
from repro.core.experiments import PAPER_EXPERIMENTS
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS


def small_battery() -> KiBaM:
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS, capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 4
    )
    return KiBaM(params)


def main() -> None:
    print("Running (2A) partitioned pipeline and (2B) with failure recovery")
    print("(quarter-scale cells)...\n")
    plain = run_experiment(
        PAPER_EXPERIMENTS["2A"],
        battery_factory=small_battery,
        monitor_interval_s=60.0,
    )
    recovery = run_experiment(
        PAPER_EXPERIMENTS["2B"],
        battery_factory=small_battery,
        monitor_interval_s=60.0,
    )

    rows = []
    for run in (plain, recovery):
        result = run.pipeline
        first_death = min(result.death_times_s.values())
        rows.append(
            {
                "experiment": run.spec.label,
                "frames": run.frames,
                "first_death_h": first_death / 3600.0,
                "last_result_h": result.last_result_s / 3600.0,
                "migrated": bool(result.migrations),
                "end": result.end_reason,
            }
        )
    print(format_table(rows, float_fmt=".2f"))

    result = recovery.pipeline
    mig_time, survivor = result.migrations[0]
    extra = (result.last_result_s - mig_time) / recovery.spec.deadline_s
    print(
        f"\nAt t = {mig_time / 3600:.2f} h the survivor ({survivor}) detected "
        f"the missing\nacknowledgment, migrated the whole ATR chain onto "
        f"itself, redirected the\nhost connection, and delivered ~{extra:.0f} "
        "further frames before its own\nbattery gave out.\n"
    )

    print("Without recovery, the stall strands the survivor's charge:")
    print(render_energy_breakdown(plain.pipeline))
    print()
    print("With recovery, both cells end empty:")
    print(render_energy_breakdown(result))


if __name__ == "__main__":
    main()
