#!/usr/bin/env python3
"""The real ATR workload: recognize targets in synthetic imagery.

Demonstrates the application layer the paper's case study runs:
generate sensor frames with embedded vehicle silhouettes, push them
through the four-block recognizer (Target Detection -> FFT -> IFFT ->
Compute Distance), score against ground truth, and finally re-derive a
Fig. 6-style task profile by timing the blocks on this machine.

Usage::

    python examples/atr_image_demo.py [n_frames]
"""

import sys

import numpy as np

from repro import ATRPipeline, SceneSpec, generate_scene, measure_profile
from repro.analysis.tables import format_table
from repro.units import bytes_to_kb


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    rng = np.random.default_rng(2004)  # the paper's vintage
    spec = SceneSpec(size=96, n_targets=1, clutter_sigma=0.3)
    pipeline = ATRPipeline()

    rows = []
    correct = 0.0
    for frame_id in range(n_frames):
        scene = generate_scene(spec, rng)
        result = pipeline.run(scene, frame_id=frame_id)
        score = pipeline.score_against_truth(scene, result)
        correct += score
        truth = scene.truths[0] if scene.truths else None
        detection = result.detections[0] if result.detections else None
        rows.append(
            {
                "frame": frame_id,
                "truth": truth.template.name if truth else "-",
                "truth_range_m": round(truth.distance_m) if truth else None,
                "detected": detection.template if detection else "-",
                "est_range_m": round(detection.distance_m) if detection else None,
                "score": detection.score if detection else None,
                "hit": score == 1.0,
            }
        )

    print(format_table(rows, title=f"ATR over {n_frames} synthetic frames"))
    print(f"\nrecognition rate: {correct / n_frames:.0%}\n")

    print("Deriving a task profile by timing the real blocks "
          "(normalized to the Itsy's 1.1 s iteration)...")
    profile = measure_profile(repeats=3)
    profile_rows = [
        {
            "block": b.name,
            "seconds_at_fmax": b.seconds_at_max,
            "output_kb": bytes_to_kb(b.output_bytes),
        }
        for b in profile.blocks
    ]
    print(format_table(profile_rows, float_fmt=".3f",
                       title="measured profile (this machine, rescaled)"))
    print(
        "\nNote how the relative block weights differ from the paper's "
        "Fig. 6 —\nnumpy's FFT is far better optimized than the Itsy's "
        "was relative to the\nscalar detection pass. The paper-faithful "
        "experiments therefore use\nrepro.PAPER_PROFILE."
    )


if __name__ == "__main__":
    main()
