"""The video-decode task profile and its workload model.

A software MPEG decoder on the Itsy, fed over the serial link and
presenting locally (no outbound frame data — the 0.05 KB "send" is a
playback status report). Block weights follow classic decoder
profiles: IDCT dominates, motion compensation second, parsing and
presentation cheap. The numbers are sized so an I frame at the peak
clock nearly fills the 0.7 s frame period — a plausible ~1.4 fps for a
206 MHz StrongARM doing software video, and deliberately in the same
I/O-pressured regime as the paper's ATR: of the 0.7 s budget, the
1.5 KB mean bitstream chunk plus the status report cost ~0.34 s of
serial time, leaving ~0.36 s for the 0.30 s worst-case decode.
"""

from __future__ import annotations

from repro.apps.atr.profile import BlockProfile, TaskProfile
from repro.apps.video.gop import GopStructure
from repro.pipeline.workload import TraceWorkload

__all__ = ["VIDEO_PROFILE", "VIDEO_FRAME_PERIOD_S", "video_workload"]

#: Frame period for the video experiments (~1.4 fps).
VIDEO_FRAME_PERIOD_S = 0.7

#: Decode chain for one frame, profiled at 206.4 MHz (I-frame cost).
#: Payloads: the mean bitstream chunk arrives from the host; blocks
#: exchange in-memory data (zero wire payload between co-located
#: blocks would be ideal, but the chain supports partitioning too, so
#: small representative payloads are given); a status byte returns.
VIDEO_PROFILE = TaskProfile(
    blocks=(
        BlockProfile("parse", 0.03, 1_200),
        BlockProfile("idct", 0.17, 2_000),
        BlockProfile("motion_comp", 0.08, 2_000),
        BlockProfile("present", 0.02, 50),
    ),
    input_bytes=1_500,
)


def video_workload(gop: GopStructure | None = None) -> TraceWorkload:
    """The GOP-periodic per-frame workload trace.

    Feeding this to the engine with ``adaptive_workload_dvs=True``
    *is* Choi et al.'s frame-based DVS: the clock is re-picked from
    each frame's known decode cost.
    """
    gop = gop or GopStructure()
    return TraceWorkload(gop.workload_scales(), wrap=True)
