"""Group-of-pictures structure and per-frame decode costs.

MPEG video alternates three frame types with very different decode
costs: intra-coded I frames (full picture), predicted P frames (motion
compensation from one reference), and bidirectional B frames (two
references, least residual data). A GOP pattern like ``IBBPBBPBB``
repeats for the whole stream, which makes the per-frame workload
*periodic and known in advance* — the property Choi et al.'s
frame-based DVS exploits.
"""

from __future__ import annotations

import enum
import typing as t

from repro.errors import ConfigurationError

__all__ = ["FrameType", "GopStructure"]


class FrameType(enum.Enum):
    """MPEG frame types, by prediction structure."""

    I = "I"  # noqa: E741 - the domain's own name
    P = "P"
    B = "B"

    def __str__(self) -> str:
        return self.value


#: Relative decode cost per frame type (I = 1.0). IDCT dominates I
#: frames; motion compensation makes P cheaper and B cheapest per
#: classic decoder profiles.
DEFAULT_COSTS: dict[FrameType, float] = {
    FrameType.I: 1.0,
    FrameType.P: 0.6,
    FrameType.B: 0.4,
}


class GopStructure:
    """A repeating GOP pattern with per-type decode costs.

    Parameters
    ----------
    pattern:
        Frame-type letters, e.g. ``"IBBPBBPBB"``. Must start with an I
        frame (the random-access point) and contain only I/P/B.
    costs:
        Relative decode cost per type; the trace emitted by
        :meth:`workload_scales` is these values in pattern order.

    Examples
    --------
    >>> gop = GopStructure("IBBP")
    >>> [str(t) for t in gop.frame_types(6)]
    ['I', 'B', 'B', 'P', 'I', 'B']
    """

    def __init__(
        self,
        pattern: str = "IBBPBBPBB",
        costs: t.Mapping[FrameType, float] | None = None,
    ):
        if not pattern:
            raise ConfigurationError("GOP pattern must be non-empty")
        if pattern[0] != "I":
            raise ConfigurationError(
                f"a GOP starts with an I frame, got {pattern!r}"
            )
        try:
            self.pattern = tuple(FrameType(ch) for ch in pattern)
        except ValueError as exc:
            raise ConfigurationError(f"invalid GOP pattern {pattern!r}") from exc
        self.costs = dict(costs) if costs is not None else dict(DEFAULT_COSTS)
        missing = {ft for ft in self.pattern} - set(self.costs)
        if missing:
            raise ConfigurationError(f"missing costs for {sorted(str(m) for m in missing)}")
        if any(c <= 0 for c in self.costs.values()):
            raise ConfigurationError("frame costs must be positive")

    def __len__(self) -> int:
        return len(self.pattern)

    def frame_types(self, n: int) -> list[FrameType]:
        """The first ``n`` frame types of the repeating stream."""
        return [self.pattern[i % len(self.pattern)] for i in range(n)]

    def workload_scales(self) -> list[float]:
        """One GOP period of relative decode costs (feed a TraceWorkload)."""
        return [self.costs[ft] for ft in self.pattern]

    @property
    def mean_cost(self) -> float:
        """Average per-frame cost over one GOP period."""
        scales = self.workload_scales()
        return sum(scales) / len(scales)

    @property
    def peak_cost(self) -> float:
        """Worst-case per-frame cost (the I frame, normally)."""
        return max(self.workload_scales())

    def describe(self) -> str:
        """Label like ``IBBPBBPBB (mean 0.53x, peak 1x)``."""
        return (
            "".join(str(ft) for ft in self.pattern)
            + f" (mean {self.mean_cost:.2f}x, peak {self.peak_cost:g}x)"
        )
