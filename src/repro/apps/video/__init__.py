"""A second workload: MPEG-style video decoding.

The paper's related work (§2) cites Choi et al.'s frame-based DVS for
an MPEG decoder — exploiting that I, P and B frames cost very
different amounts of work. This package expresses that workload in the
library's terms, demonstrating that the testbed is not ATR-specific:

- :mod:`repro.apps.video.gop` — group-of-pictures structure, per-type
  decode costs, and the periodic per-frame workload trace they induce;
- :mod:`repro.apps.video.profile` — a decode block chain
  (parse -> IDCT -> motion compensation -> present) sized for the Itsy
  over the serial link.

Frame-based DVS itself needs no new machinery: the engine's
``adaptive_workload_dvs`` re-picks the clock from each frame's cost,
which with a GOP-periodic :class:`~repro.pipeline.workload.TraceWorkload`
*is* Choi's technique.
"""

from repro.apps.video.gop import FrameType, GopStructure
from repro.apps.video.profile import VIDEO_PROFILE, video_workload

__all__ = ["FrameType", "GopStructure", "VIDEO_PROFILE", "video_workload"]
