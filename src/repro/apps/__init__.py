"""Application workloads that run on the simulated testbed."""
