"""A sensor-network workload, for contrast.

The paper's introduction distinguishes its setting from sensor
networks, which "may be distributed, networked, and low-power, but
they are 99% idle, perform very little computation and communication".
This package expresses such a workload in the library's terms so the
contrast can be *measured*: which of the paper's techniques still pay
off when the duty cycle collapses?

The model: a TDMA-style epoch every 30 s — the host's beacon triggers
a sampling round; the node samples, aggregates, and reports ~120 bytes
back. Computation and communication together fill well under 1% of the
epoch.
"""

from repro.apps.atr.profile import BlockProfile, TaskProfile

__all__ = ["SENSOR_PROFILE", "SENSOR_EPOCH_S"]

#: Epoch length: one sampling round every 30 seconds.
SENSOR_EPOCH_S = 30.0

#: The per-epoch task chain: sample the transducer, aggregate the
#: window, report. Times at the peak clock; payloads in bytes (the
#: host's beacon is the 50-byte input).
SENSOR_PROFILE = TaskProfile(
    blocks=(
        BlockProfile("sample", 0.020, 100),
        BlockProfile("aggregate", 0.030, 120),
    ),
    input_bytes=50,
)
