"""Automatic Target Recognition (ATR), the paper's motivating workload.

The paper's ATR algorithm (Fig. 1) has four functional blocks::

    Target Detection -> FFT -> IFFT -> Compute Distance

processed once per image frame under a fixed frame period. Two layers
live here:

- a **real implementation** working on synthetic imagery
  (:mod:`~repro.apps.atr.image`, :mod:`~repro.apps.atr.templates`,
  :mod:`~repro.apps.atr.blocks`, :mod:`~repro.apps.atr.reference`):
  threshold-based detection with union-find labeling, FFT template
  correlation, inverse transform, and scale-based distance estimation —
  pure numpy, deterministic under a seed;
- the **profiled task model** the simulator consumes
  (:mod:`~repro.apps.atr.profile`): per-block execution times at the
  peak clock rate and inter-block payload sizes, exactly the numbers of
  the paper's Fig. 6, plus a ``measure_profile`` helper that re-derives
  a profile by timing the real blocks.
"""

from repro.apps.atr.blocks import (
    compute_distances,
    detect_targets,
    fft_correlate,
    ifft_peaks,
    label_components,
    label_components_reference,
    template_bank_spectra,
)
from repro.apps.atr.image import SceneSpec, generate_scene
from repro.apps.atr.matching import MultiScaleATR, TemplateVariant, expand_bank
from repro.apps.atr.profile import (
    PAPER_PROFILE,
    PAPER_PROFILE_RAW,
    BlockProfile,
    TaskProfile,
    measure_profile,
)
from repro.apps.atr.reference import ATRPipeline, ATRResult, Detection
from repro.apps.atr.tracking import ATRTracker, Track
from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = [
    "SceneSpec",
    "generate_scene",
    "Template",
    "TEMPLATE_BANK",
    "detect_targets",
    "fft_correlate",
    "ifft_peaks",
    "compute_distances",
    "label_components",
    "label_components_reference",
    "template_bank_spectra",
    "ATRPipeline",
    "ATRResult",
    "Detection",
    "ATRTracker",
    "Track",
    "MultiScaleATR",
    "TemplateVariant",
    "expand_bank",
    "BlockProfile",
    "TaskProfile",
    "PAPER_PROFILE",
    "PAPER_PROFILE_RAW",
    "measure_profile",
]
