"""Multi-scale, rotation-robust template matching.

The base recognizer (:mod:`repro.apps.atr.blocks`) correlates each ROI
against the template bank at native scale and orientation — enough for
the paper's single-target frames, where scene generation and templates
share conventions. Real targets appear at arbitrary ranges (scale) and
headings (rotation). This module expands the bank across a scale ladder
and 90-degree rotations (exact, no interpolation artefacts) and matches
through the same FFT machinery, refining the range estimate from the
matched scale instead of the detection blob's extent.

The extra correlation work is exactly the kind of per-frame workload
growth the variable-workload extension models: matching V variants
multiplies the FFT/IFFT block cost by ~V.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.apps.atr.blocks import (
    RegionOfInterest,
    _pad_size,
    detect_targets,
    template_bank_spectra,
)
from repro.apps.atr.image import FOCAL_PIXELS, Scene
from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = ["TemplateVariant", "expand_bank", "match_region", "MultiScaleATR"]


@dataclasses.dataclass(frozen=True)
class TemplateVariant:
    """One (template, scale, rotation) rendering.

    Attributes
    ----------
    base:
        The source template.
    scale:
        Linear scale factor applied to the mask.
    quarter_turns:
        Counter-clockwise 90-degree rotations applied (0-3).
    mask:
        The rendered variant mask.
    """

    base: Template
    scale: float
    quarter_turns: int
    mask: np.ndarray

    @property
    def name(self) -> str:
        return f"{self.base.name}@{self.scale:g}x/r{self.quarter_turns * 90}"

    @property
    def pixel_extent(self) -> int:
        """Longest-axis extent of the rendered silhouette."""
        ys, xs = np.nonzero(self.mask > 0.5)
        if len(ys) == 0:
            return 1
        return int(max(ys.max() - ys.min(), xs.max() - xs.min()) + 1)

    def normalized(self) -> np.ndarray:
        """Zero-mean, unit-energy mask for correlation scoring.

        Memoized and returned read-only, like
        :meth:`repro.apps.atr.templates.Template.normalized`, so the
        shared template-spectrum cache can key variants by identity.
        """
        cached = self.__dict__.get("_normalized")
        if cached is not None:
            return cached
        m = self.mask - self.mask.mean()
        energy = float(np.sqrt((m * m).sum()))
        if energy:
            m = m / energy
        m.setflags(write=False)
        object.__setattr__(self, "_normalized", m)
        return m


def _rescale(mask: np.ndarray, scale: float) -> np.ndarray:
    """Nearest-neighbour rescale (matches scene generation's renderer)."""
    h, w = mask.shape
    nh, nw = max(4, int(round(h * scale))), max(4, int(round(w * scale)))
    rows = np.clip((np.arange(nh) / scale).astype(int), 0, h - 1)
    cols = np.clip((np.arange(nw) / scale).astype(int), 0, w - 1)
    return mask[np.ix_(rows, cols)]


def expand_bank(
    templates: t.Sequence[Template] = TEMPLATE_BANK,
    scales: t.Sequence[float] = (0.8, 1.0, 1.25),
    quarter_turns: t.Sequence[int] = (0, 1, 2, 3),
) -> tuple[TemplateVariant, ...]:
    """Render every (template, scale, rotation) combination."""
    variants = []
    for template in templates:
        for scale in scales:
            scaled = _rescale(template.mask, scale)
            for turns in quarter_turns:
                if not 0 <= turns <= 3:
                    raise ValueError(f"quarter_turns must be 0-3, got {turns}")
                variants.append(
                    TemplateVariant(
                        base=template,
                        scale=scale,
                        quarter_turns=turns,
                        mask=np.rot90(scaled, turns).copy(),
                    )
                )
    return tuple(variants)


def match_region(
    roi: RegionOfInterest, variants: t.Sequence[TemplateVariant]
) -> tuple[TemplateVariant, float]:
    """Best variant for one ROI by FFT cross-correlation peak.

    The variant spectra come from the shared template-spectrum cache
    (:func:`repro.apps.atr.blocks.template_bank_spectra`), so repeat
    frames transform only the ROI patch; all V correlation surfaces are
    inverted in one batched ``irfft2``.
    """
    bank = tuple(variants)
    if not bank:
        raise ValueError("match_region needs at least one template variant")
    patch = roi.patch - roi.patch.mean()
    n = _pad_size(patch.shape)
    f_patch = np.fft.rfft2(patch, s=(n, n))
    conj_bank = template_bank_spectra(bank, n)
    surfaces = np.fft.irfft2(f_patch[None, :, :] * conj_bank, s=(n, n))
    peaks = surfaces.reshape(len(bank), -1).max(axis=1)
    best = int(np.argmax(peaks))
    return bank[best], float(peaks[best])


class MultiScaleATR:
    """The multi-variant recognizer: detect, then match across the bank.

    Parameters mirror :class:`~repro.apps.atr.reference.ATRPipeline`;
    the output records the matched scale and heading, and the range
    estimate uses the matched variant's own extent.
    """

    def __init__(
        self,
        templates: t.Sequence[Template] = TEMPLATE_BANK,
        scales: t.Sequence[float] = (0.8, 1.0, 1.25),
        quarter_turns: t.Sequence[int] = (0, 1, 2, 3),
        threshold_sigma: float = 2.5,
        max_regions: int = 1,
    ):
        self.variants = expand_bank(templates, scales, quarter_turns)
        self.threshold_sigma = threshold_sigma
        self.max_regions = max_regions

    @property
    def workload_factor(self) -> float:
        """Correlation-work multiple relative to the plain recognizer."""
        base_templates = {v.base.name for v in self.variants}
        return len(self.variants) / max(len(base_templates), 1)

    def run(self, scene: Scene | np.ndarray) -> list[dict[str, t.Any]]:
        """Recognize targets; one record per ROI."""
        image = scene.image if isinstance(scene, Scene) else scene
        regions = detect_targets(
            image,
            threshold_sigma=self.threshold_sigma,
            max_regions=self.max_regions,
        )
        records = []
        for roi in regions:
            variant, score = match_region(roi, self.variants)
            records.append(
                {
                    "template": variant.base.name,
                    "scale": variant.scale,
                    "heading_deg": variant.quarter_turns * 90,
                    "score": score,
                    "position": (roi.row, roi.col),
                    "distance_m": FOCAL_PIXELS
                    * variant.base.physical_size_m
                    / max(variant.pixel_extent, 1),
                }
            )
        return records
