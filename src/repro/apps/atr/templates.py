"""Target templates: the shapes the ATR algorithm recognizes.

The paper's ATR filters each region of interest against a bank of
pre-defined target templates. The original SAR templates are not
available; this bank uses three synthetic vehicle silhouettes with
distinct shapes so the correlation stage has real discrimination work
to do. Each template carries the physical size its silhouette
represents so the Compute Distance block can turn apparent pixel scale
into range.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Template", "TEMPLATE_BANK", "make_template_bank"]


@dataclasses.dataclass(frozen=True)
class Template:
    """One recognizable target.

    Attributes
    ----------
    name:
        Identifier ("tank", "truck", "aircraft").
    mask:
        2-D float array in [0, 1]; the silhouette on a zero background.
    physical_size_m:
        Real-world length of the silhouette's longest axis, metres.
        Used by the distance computation.
    """

    name: str
    mask: np.ndarray
    physical_size_m: float

    @property
    def shape(self) -> tuple[int, int]:
        """Pixel dimensions of the mask."""
        return self.mask.shape  # type: ignore[return-value]

    @property
    def pixel_extent(self) -> int:
        """Length in pixels of the silhouette's longest axis."""
        ys, xs = np.nonzero(self.mask > 0.5)
        if len(ys) == 0:
            return 0
        return int(max(ys.max() - ys.min(), xs.max() - xs.min()) + 1)

    def normalized(self) -> np.ndarray:
        """Zero-mean, unit-energy mask for correlation scoring.

        Memoized: the array is computed once per template and returned
        read-only thereafter, so the FFT block's template-spectrum cache
        (and any other repeat caller) never redoes the normalization.
        """
        cached = self.__dict__.get("_normalized")
        if cached is not None:
            return cached
        m = self.mask - self.mask.mean()
        energy = float(np.sqrt((m * m).sum()))
        if energy != 0.0:
            m = m / energy
        m.setflags(write=False)
        object.__setattr__(self, "_normalized", m)
        return m


def _tank_mask(size: int = 16) -> np.ndarray:
    """Rectangular hull with a centred round turret."""
    mask = np.zeros((size, size), dtype=np.float64)
    mask[size // 4 : 3 * size // 4, 1 : size - 1] = 1.0  # hull
    yy, xx = np.mgrid[0:size, 0:size]
    turret = (yy - size / 2) ** 2 + (xx - size / 2) ** 2 <= (size / 5) ** 2
    mask[turret] = 1.0
    mask[size // 2 - 1 : size // 2 + 1, size - 4 : size] = 1.0  # barrel
    return mask


def _truck_mask(size: int = 16) -> np.ndarray:
    """Cab and cargo box separated by a gap."""
    mask = np.zeros((size, size), dtype=np.float64)
    mask[size // 3 : 2 * size // 3, 1 : size // 4] = 1.0  # cab
    mask[size // 4 : 3 * size // 4, size // 3 : size - 1] = 1.0  # box
    return mask


def _aircraft_mask(size: int = 16) -> np.ndarray:
    """Fuselage with swept wings (a cross with a tail)."""
    mask = np.zeros((size, size), dtype=np.float64)
    mid = size // 2
    mask[mid - 1 : mid + 1, 1 : size - 1] = 1.0  # fuselage
    mask[2 : size - 2, mid - 1 : mid + 1] = 1.0  # wings
    mask[mid - 3 : mid + 3, size - 3 : size - 1] = 1.0  # tail
    return mask


def make_template_bank(size: int = 16) -> tuple[Template, ...]:
    """Build the three-template bank at a given pixel resolution."""
    if size < 8:
        raise ValueError(f"template size must be >= 8 pixels, got {size}")
    return (
        Template("tank", _tank_mask(size), physical_size_m=7.0),
        Template("truck", _truck_mask(size), physical_size_m=9.0),
        Template("aircraft", _aircraft_mask(size), physical_size_m=15.0),
    )


#: Default bank used by the reference pipeline and the examples.
TEMPLATE_BANK: tuple[Template, ...] = make_template_bank()
