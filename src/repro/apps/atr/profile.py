"""The profiled task model of ATR: the paper's Fig. 6.

The distributed experiments do not simulate pixels — they consume a
:class:`TaskProfile`: per-block execution time at the peak clock rate
plus the payload each block emits. Fig. 6 gives these numbers for the
Itsy:

=================  ================  ==============
block              time @ 206.4 MHz  output payload
=================  ================  ==============
Target Detection   0.18 s            0.6 KB
FFT                0.19 s            7.5 KB
IFFT               0.32 s            7.5 KB
Compute Distance   0.53 s            0.1 KB
=================  ================  ==============

with a 10.1 KB input frame. The block times sum to 1.22 s while the
text states the whole iteration takes 1.1 s at full speed; the paper's
own partitioning arithmetic (scheme 1 -> 59 / 103.2 MHz) is consistent
with the 1.1 s total, so :data:`PAPER_PROFILE` scales the blocks by
1.1/1.22 and :data:`PAPER_PROFILE_RAW` keeps the raw figures. The
discrepancy and this choice are recorded in DESIGN.md.

:func:`measure_profile` re-derives a profile by timing the *real*
blocks (:mod:`repro.apps.atr.blocks`) on this machine and renormalizing
to the Itsy timescale — demonstrating the workflow the paper's authors
used to build Fig. 6.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

import numpy as np

from repro.apps.atr.image import SceneSpec, generate_scene
from repro.apps.atr.reference import ATRPipeline
from repro.errors import ConfigurationError
from repro.units import kb_to_bytes

__all__ = [
    "BlockProfile",
    "TaskProfile",
    "PAPER_PROFILE_RAW",
    "PAPER_PROFILE",
    "measure_profile",
]


@dataclasses.dataclass(frozen=True)
class BlockProfile:
    """One functional block's cost model.

    Attributes
    ----------
    name:
        Block label ("target_detection", ...).
    seconds_at_max:
        Execution time at the fastest DVS level.
    output_bytes:
        Payload the block hands to its successor (or the destination).
    """

    name: str
    seconds_at_max: float
    output_bytes: int

    def __post_init__(self) -> None:
        if self.seconds_at_max < 0:
            raise ConfigurationError(f"block {self.name}: negative time")
        if self.output_bytes < 0:
            raise ConfigurationError(f"block {self.name}: negative payload")


@dataclasses.dataclass(frozen=True)
class TaskProfile:
    """An ordered block chain with its input payload (Fig. 6).

    Attributes
    ----------
    blocks:
        The functional blocks in dataflow order.
    input_bytes:
        Size of the raw frame arriving from the source.
    """

    blocks: tuple[BlockProfile, ...]
    input_bytes: int

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ConfigurationError("a task profile needs at least one block")
        if self.input_bytes < 0:
            raise ConfigurationError("negative input payload")

    # -- whole-chain quantities -----------------------------------------
    @property
    def total_seconds_at_max(self) -> float:
        """End-to-end PROC time at the fastest level (paper: 1.1 s)."""
        return sum(b.seconds_at_max for b in self.blocks)

    @property
    def output_bytes(self) -> int:
        """Final result payload (paper: 0.1 KB)."""
        return self.blocks[-1].output_bytes

    @property
    def names(self) -> tuple[str, ...]:
        """Block names in order."""
        return tuple(b.name for b in self.blocks)

    # -- segment quantities (for partitioning) ----------------------------
    def segment_seconds(self, start: int, stop: int) -> float:
        """PROC time at f_max of blocks[start:stop]."""
        self._check_range(start, stop)
        return sum(b.seconds_at_max for b in self.blocks[start:stop])

    def segment_input_bytes(self, start: int) -> int:
        """Bytes entering blocks[start]: the predecessor's output."""
        if not 0 <= start < len(self.blocks):
            raise ConfigurationError(f"block index {start} out of range")
        return self.input_bytes if start == 0 else self.blocks[start - 1].output_bytes

    def segment_output_bytes(self, stop: int) -> int:
        """Bytes leaving blocks[stop-1]."""
        if not 0 < stop <= len(self.blocks):
            raise ConfigurationError(f"block index {stop} out of range")
        return self.blocks[stop - 1].output_bytes

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start < stop <= len(self.blocks):
            raise ConfigurationError(
                f"invalid block range [{start}, {stop}) for {len(self.blocks)} blocks"
            )

    def scaled(self, total_seconds: float) -> "TaskProfile":
        """Renormalize block times so the chain totals ``total_seconds``."""
        if total_seconds <= 0:
            raise ConfigurationError("total time must be positive")
        factor = total_seconds / self.total_seconds_at_max
        return TaskProfile(
            blocks=tuple(
                dataclasses.replace(b, seconds_at_max=b.seconds_at_max * factor)
                for b in self.blocks
            ),
            input_bytes=self.input_bytes,
        )

    def with_blocks_scaled(
        self, names: t.Collection[str], factor: float
    ) -> "TaskProfile":
        """Scale the compute time of the named blocks only.

        Models algorithm variants that grow specific stages — e.g.
        multi-scale/rotation template matching multiplies the FFT and
        IFFT correlation work by the variant count while detection and
        distance stay put. Payloads are unchanged.

        Raises
        ------
        ConfigurationError
            If the factor is non-positive or a name is unknown.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        unknown = set(names) - set(self.names)
        if unknown:
            raise ConfigurationError(f"unknown blocks: {sorted(unknown)}")
        return TaskProfile(
            blocks=tuple(
                dataclasses.replace(b, seconds_at_max=b.seconds_at_max * factor)
                if b.name in names
                else b
                for b in self.blocks
            ),
            input_bytes=self.input_bytes,
        )


#: Fig. 6 verbatim: raw per-block times (sum 1.22 s) and payloads.
PAPER_PROFILE_RAW = TaskProfile(
    blocks=(
        BlockProfile("target_detection", 0.18, kb_to_bytes(0.6)),
        BlockProfile("fft", 0.19, kb_to_bytes(7.5)),
        BlockProfile("ifft", 0.32, kb_to_bytes(7.5)),
        BlockProfile("compute_distance", 0.53, kb_to_bytes(0.1)),
    ),
    input_bytes=kb_to_bytes(10.1),
)

#: Fig. 6 normalized to the paper's stated 1.1 s total PROC time —
#: the profile every experiment uses.
PAPER_PROFILE = PAPER_PROFILE_RAW.scaled(1.1)


def measure_profile(
    pipeline: ATRPipeline | None = None,
    spec: SceneSpec | None = None,
    seed: int = 0,
    repeats: int = 5,
    itsy_total_seconds: float = 1.1,
    frames: int = 1,
    obs: t.Any = None,
) -> TaskProfile:
    """Derive a :class:`TaskProfile` by timing the real blocks.

    Runs the reference pipeline stage by stage on ``frames`` synthetic
    scenes, takes the median of ``repeats`` wall-clock timings per
    stage, and rescales so the chain totals ``itsy_total_seconds``
    (this machine is not a 206 MHz StrongARM). Payload sizes are taken
    from the actual intermediate objects, reported per frame.

    With ``frames > 1`` the stages run on the whole batch at once —
    exactly the :meth:`~repro.apps.atr.reference.ATRPipeline.run_batch`
    dataflow — so the profile reflects steady-state batched throughput:
    template spectra come from the warm cache and FFT/IFFT are stacked
    transforms. Block times are still whole-stage wall clock; since the
    profile is renormalized, only the relative weights matter.

    The relative block weights will differ from Fig. 6 — numpy's FFT is
    far better optimized relative to the scalar detection loop than the
    Itsy's code was — which is precisely why the paper-faithful
    experiments use :data:`PAPER_PROFILE` and this function exists for
    methodology demonstrations.

    Pass a :class:`repro.obs.Telemetry` as ``obs`` to record every
    repeat of every block as a profiling span — the registry then holds
    a per-block latency histogram (``span.target_detection``,
    ``span.fft``, ...) over all ``repeats`` timings, not just the
    median the profile keeps.
    """
    if frames < 1:
        raise ConfigurationError(f"frames must be >= 1, got {frames}")
    pipeline = pipeline or ATRPipeline()
    spec = spec or SceneSpec()
    rng = np.random.default_rng(seed)
    scenes = [generate_scene(spec, rng) for _ in range(frames)]

    def median_time(name: str, fn: t.Callable[[], t.Any]) -> tuple[float, t.Any]:
        times = []
        result = None
        for rep in range(max(1, repeats)):
            if obs is not None:
                with obs.span(name, repeat=rep, frames=frames):
                    t0 = time.perf_counter()
                    result = fn()
                    times.append(time.perf_counter() - t0)
            else:
                t0 = time.perf_counter()
                result = fn()
                times.append(time.perf_counter() - t0)
        return float(np.median(times)), result

    t_detect, regions_per_frame = median_time(
        "target_detection",
        lambda: [pipeline.stage_detect(scene.image) for scene in scenes],
    )
    regions = [roi for frame in regions_per_frame for roi in frame]
    t_fft, spectra = median_time("fft", lambda: pipeline.stage_fft(regions))
    t_ifft, peaks = median_time("ifft", lambda: pipeline.stage_ifft(spectra))
    t_dist, records = median_time(
        "compute_distance", lambda: pipeline.stage_distance(peaks)
    )

    def payload(objects: t.Any, fallback: int) -> int:
        try:
            arrays = []
            for obj in objects:
                for name, field in vars(obj).items():
                    if name == "stacked":
                        continue  # views of the per-template spectra dict
                    if isinstance(field, np.ndarray):
                        arrays.append(field.nbytes)
                    elif isinstance(field, dict):
                        arrays.extend(
                            v.nbytes for v in field.values() if isinstance(v, np.ndarray)
                        )
            return round(sum(arrays) / frames) or fallback
        except TypeError:
            return fallback

    measured = TaskProfile(
        blocks=(
            BlockProfile("target_detection", t_detect, payload(regions, 600)),
            BlockProfile("fft", t_fft, payload(spectra, 7500)),
            BlockProfile("ifft", t_ifft, payload(peaks, 7500)),
            BlockProfile(
                "compute_distance", t_dist, 16 + round(24 * len(records) / frames)
            ),
        ),
        input_bytes=scenes[0].nbytes,
    )
    return measured.scaled(itsy_total_seconds)
