"""Multi-frame, multi-target tracking on top of the ATR recognizer.

The paper's experiments process "one image and one target at a time,
although a multi-frame, multi-target version of the algorithm is also
available" (§3). This module is that version: it associates per-frame
:class:`~repro.apps.atr.reference.Detection` results into persistent
tracks by nearest-neighbour gating, votes on the template label, and
smooths the noisy single-frame range estimates with an exponential
moving average.

Pure bookkeeping — no simulation dependencies — so it can run on the
host side of the testbed or standalone.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.apps.atr.reference import ATRResult, Detection

__all__ = ["Track", "ATRTracker"]


@dataclasses.dataclass
class Track:
    """One target followed across frames.

    Attributes
    ----------
    track_id:
        Stable identifier, assigned in creation order.
    row, col:
        Last associated position.
    template_votes:
        Template name -> number of frames it won the correlation.
    distance_m:
        Exponentially smoothed range estimate.
    hits:
        Number of detections associated with this track.
    last_seen_frame:
        Frame id of the latest association.
    """

    track_id: int
    row: int
    col: int
    template_votes: dict[str, int]
    distance_m: float
    hits: int
    last_seen_frame: int

    @property
    def template(self) -> str:
        """Majority-vote template label (ties broken alphabetically)."""
        best = max(self.template_votes.values())
        return min(
            name for name, votes in self.template_votes.items() if votes == best
        )

    def _associate(self, detection: Detection, frame_id: int, smoothing: float) -> None:
        self.row, self.col = detection.row, detection.col
        self.template_votes[detection.template] = (
            self.template_votes.get(detection.template, 0) + 1
        )
        self.distance_m += smoothing * (detection.distance_m - self.distance_m)
        self.hits += 1
        self.last_seen_frame = frame_id


class ATRTracker:
    """Nearest-neighbour tracker over ATR frame results.

    Parameters
    ----------
    gate_px:
        Maximum position change between consecutive associations; a
        detection farther from every live track starts a new track.
    max_coast_frames:
        A track unseen for more than this many frames is retired.
    smoothing:
        EMA coefficient for the range estimate, in (0, 1]; 1.0 keeps
        only the latest measurement.
    min_hits:
        Tracks with fewer associations are treated as clutter and not
        reported by :meth:`confirmed_tracks`.
    """

    def __init__(
        self,
        gate_px: int = 12,
        max_coast_frames: int = 5,
        smoothing: float = 0.3,
        min_hits: int = 2,
    ):
        if gate_px < 1:
            raise ValueError(f"gate must be >= 1 px, got {gate_px}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if max_coast_frames < 0 or min_hits < 1:
            raise ValueError("max_coast_frames >= 0 and min_hits >= 1 required")
        self.gate_px = gate_px
        self.max_coast_frames = max_coast_frames
        self.smoothing = smoothing
        self.min_hits = min_hits
        self._tracks: list[Track] = []
        self._retired: list[Track] = []
        self._next_id = 0

    # -- updates -----------------------------------------------------------
    def update(self, result: ATRResult) -> list[Track]:
        """Fold one frame's detections in; returns the live track list.

        Greedy nearest-neighbour association: each detection joins the
        closest live track within the gate (one detection per track per
        frame), otherwise starts a new track. Tracks unseen for too
        long are retired.
        """
        frame_id = result.frame_id
        unclaimed = list(result.detections)
        # Associate closest pairs first for stability.
        pairs: list[tuple[float, Detection, Track]] = []
        for detection in unclaimed:
            for track in self._tracks:
                dist = max(
                    abs(detection.row - track.row), abs(detection.col - track.col)
                )
                if dist <= self.gate_px:
                    pairs.append((dist, detection, track))
        pairs.sort(key=lambda p: p[0])
        used_detections: set[int] = set()
        used_tracks: set[int] = set()
        for dist, detection, track in pairs:
            if id(detection) in used_detections or track.track_id in used_tracks:
                continue
            track._associate(detection, frame_id, self.smoothing)
            used_detections.add(id(detection))
            used_tracks.add(track.track_id)

        for detection in unclaimed:
            if id(detection) in used_detections:
                continue
            self._tracks.append(
                Track(
                    track_id=self._next_id,
                    row=detection.row,
                    col=detection.col,
                    template_votes={detection.template: 1},
                    distance_m=detection.distance_m,
                    hits=1,
                    last_seen_frame=frame_id,
                )
            )
            self._next_id += 1

        still_alive: list[Track] = []
        for track in self._tracks:
            if frame_id - track.last_seen_frame > self.max_coast_frames:
                self._retired.append(track)
            else:
                still_alive.append(track)
        self._tracks = still_alive
        return list(self._tracks)

    def update_many(self, results: t.Iterable[ATRResult]) -> list[Track]:
        """Fold a sequence of frame results in order; returns live tracks.

        Convenience for consuming
        :meth:`~repro.apps.atr.reference.ATRPipeline.run_batch` output:
        equivalent to calling :meth:`update` per result and keeping the
        last return value.
        """
        tracks = self.live_tracks
        for result in results:
            tracks = self.update(result)
        return tracks

    # -- queries -----------------------------------------------------------
    @property
    def live_tracks(self) -> list[Track]:
        """Tracks currently being maintained."""
        return list(self._tracks)

    def confirmed_tracks(self) -> list[Track]:
        """Live tracks with at least ``min_hits`` associations."""
        return [t for t in self._tracks if t.hits >= self.min_hits]

    def all_tracks(self) -> list[Track]:
        """Every track ever created (live + retired), by id."""
        return sorted(self._tracks + self._retired, key=lambda t: t.track_id)
