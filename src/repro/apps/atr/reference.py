"""End-to-end reference ATR pipeline (single machine, no simulation).

Runs the four blocks back-to-back on a frame. Used by the examples, by
the profiling helper (:func:`repro.apps.atr.profile.measure_profile`),
and by tests that score recognition accuracy against ground truth.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.apps.atr.blocks import (
    compute_distances,
    detect_targets,
    fft_correlate,
    ifft_peaks,
)
from repro.apps.atr.image import Scene
from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = ["Detection", "ATRResult", "ATRPipeline"]


@dataclasses.dataclass(frozen=True)
class Detection:
    """One recognized target.

    Attributes
    ----------
    template:
        Name of the best-matching template.
    score:
        Correlation peak value (higher is better).
    row, col:
        ROI position in the frame.
    distance_m:
        Estimated range.
    """

    template: str
    score: float
    row: int
    col: int
    distance_m: float


@dataclasses.dataclass(frozen=True)
class ATRResult:
    """Output of one frame: the paper's 0.1 KB result message."""

    frame_id: int
    detections: tuple[Detection, ...]

    @property
    def nbytes(self) -> int:
        """Serialized size: ~24 bytes per detection plus a header."""
        return 16 + 24 * len(self.detections)


class ATRPipeline:
    """The four-block recognizer with adjustable knobs.

    Parameters
    ----------
    templates:
        Template bank to match against.
    threshold_sigma:
        Detection threshold in background sigmas.
    max_regions:
        Maximum ROIs carried through the pipeline. The paper's
        experiments use one target per frame; the multi-target variant
        raises this.
    """

    def __init__(
        self,
        templates: t.Sequence[Template] = TEMPLATE_BANK,
        threshold_sigma: float = 2.5,
        max_regions: int = 1,
    ):
        self.templates = tuple(templates)
        self.threshold_sigma = threshold_sigma
        self.max_regions = max_regions

    # -- individual stages (exposed so profiling can time each) -----------
    def stage_detect(self, image: np.ndarray):
        """Block 1 on a raw frame."""
        return detect_targets(
            image, threshold_sigma=self.threshold_sigma, max_regions=self.max_regions
        )

    def stage_fft(self, regions):
        """Block 2 on detection output."""
        return fft_correlate(regions, self.templates)

    def stage_ifft(self, spectra):
        """Block 3 on FFT output."""
        return ifft_peaks(spectra)

    def stage_distance(self, peaks):
        """Block 4 on IFFT output."""
        return compute_distances(peaks, self.templates)

    # -- end to end -------------------------------------------------------
    @staticmethod
    def _detections(records: t.Sequence[dict[str, t.Any]]) -> tuple[Detection, ...]:
        return tuple(
            Detection(
                template=r["template"],
                score=r["score"],
                row=r["position"][0],
                col=r["position"][1],
                distance_m=r["distance_m"],
            )
            for r in records
        )

    def run(self, scene: Scene | np.ndarray, frame_id: int = 0) -> ATRResult:
        """Process one frame through all four blocks."""
        image = scene.image if isinstance(scene, Scene) else scene
        regions = self.stage_detect(image)
        spectra = self.stage_fft(regions)
        peaks = self.stage_ifft(spectra)
        records = self.stage_distance(peaks)
        return ATRResult(frame_id=frame_id, detections=self._detections(records))

    def run_batch(
        self,
        scenes: t.Sequence[Scene | np.ndarray],
        start_frame_id: int = 0,
    ) -> list[ATRResult]:
        """Process many frames, vectorizing the FFT/IFFT blocks across all.

        Semantically identical to calling :meth:`run` on each scene with
        frame ids ``start_frame_id + i`` — same detections, same block
        boundaries — but every ROI of every frame goes through the FFT
        and IFFT blocks in single stacked transforms, so per-call numpy
        overhead is amortized over the whole batch. Frames whose
        detection stage finds no ROI simply contribute nothing to the
        batched stages and come back with empty detections.
        """
        images = [s.image if isinstance(s, Scene) else s for s in scenes]
        regions_per_frame = [self.stage_detect(image) for image in images]
        flat_regions = [roi for regions in regions_per_frame for roi in regions]
        peaks = self.stage_ifft(self.stage_fft(flat_regions))
        results: list[ATRResult] = []
        offset = 0
        for i, regions in enumerate(regions_per_frame):
            frame_peaks = peaks[offset : offset + len(regions)]
            offset += len(regions)
            records = self.stage_distance(frame_peaks)
            results.append(
                ATRResult(
                    frame_id=start_frame_id + i,
                    detections=self._detections(records),
                )
            )
        return results

    def score_against_truth(self, scene: Scene, result: ATRResult, tolerance_px: int = 12) -> float:
        """Fraction of ground-truth targets matched by template *and* position."""
        if not scene.truths:
            return 1.0 if not result.detections else 0.0
        hits = 0
        for truth in scene.truths:
            for det in result.detections:
                same_template = det.template == truth.template.name
                close = (
                    abs(det.row - truth.row) <= tolerance_px
                    and abs(det.col - truth.col) <= tolerance_px
                )
                if same_template and close:
                    hits += 1
                    break
        return hits / len(scene.truths)
