"""Synthetic scene generation for the ATR workload.

The paper streams camera/sensor frames from the host; we synthesize
them: a correlated-noise background (clutter) with one or more target
silhouettes embedded at known positions and scales. Ground truth is
returned alongside the image so tests can score the recognizer.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = ["SceneSpec", "GroundTruth", "Scene", "generate_scene"]


@dataclasses.dataclass(frozen=True)
class SceneSpec:
    """Parameters of a synthetic scene.

    Attributes
    ----------
    size:
        Image side length in pixels (square images).
    n_targets:
        Number of targets to embed. The paper's experiments process
        "one image and one target at a time"; the multi-target variant
        exists for the extension benches.
    clutter_sigma:
        Standard deviation of the background clutter.
    target_amplitude:
        Peak intensity of an embedded target above the background.
    smoothing_passes:
        Box-blur passes applied to the raw noise; more passes mean
        smoother, more correlated clutter.
    """

    size: int = 64
    n_targets: int = 1
    clutter_sigma: float = 0.35
    target_amplitude: float = 3.0
    smoothing_passes: int = 2

    def __post_init__(self) -> None:
        if self.size < 32:
            raise ValueError(f"scene size must be >= 32, got {self.size}")
        if self.n_targets < 0:
            raise ValueError(f"n_targets must be >= 0, got {self.n_targets}")
        if self.clutter_sigma < 0 or self.target_amplitude <= 0:
            raise ValueError("clutter_sigma must be >= 0 and target_amplitude > 0")


@dataclasses.dataclass(frozen=True)
class GroundTruth:
    """Where a target really is.

    Attributes
    ----------
    template:
        The embedded template.
    row, col:
        Top-left corner of the embedded mask.
    scale:
        Rendered scale factor relative to the template's native size.
    distance_m:
        The true range implied by the rendered scale (what Compute
        Distance should recover).
    """

    template: Template
    row: int
    col: int
    scale: float
    distance_m: float


@dataclasses.dataclass(frozen=True)
class Scene:
    """A generated frame plus its ground truth."""

    image: np.ndarray
    truths: tuple[GroundTruth, ...]

    @property
    def nbytes(self) -> int:
        """Serialized size of the raw frame (float32 pixels)."""
        return self.image.shape[0] * self.image.shape[1] * 4


#: Camera model shared by scene generation and distance computation:
#: a target of physical size S rendered with pixel extent p sits at
#: distance_m = FOCAL_PIXELS * S / p.
FOCAL_PIXELS = 500.0


def _box_blur(img: np.ndarray, passes: int) -> np.ndarray:
    """Separable 3-tap box blur, applied ``passes`` times (wraps at edges)."""
    out = img
    for _ in range(passes):
        out = (np.roll(out, 1, axis=0) + out + np.roll(out, -1, axis=0)) / 3.0
        out = (np.roll(out, 1, axis=1) + out + np.roll(out, -1, axis=1)) / 3.0
    return out


def _render_scaled(mask: np.ndarray, scale: float) -> np.ndarray:
    """Nearest-neighbour rescale of a template mask."""
    h, w = mask.shape
    nh, nw = max(4, int(round(h * scale))), max(4, int(round(w * scale)))
    rows = np.clip((np.arange(nh) / scale).astype(int), 0, h - 1)
    cols = np.clip((np.arange(nw) / scale).astype(int), 0, w - 1)
    return mask[np.ix_(rows, cols)]


def generate_scene(
    spec: SceneSpec,
    rng: np.random.Generator,
    templates: t.Sequence[Template] = TEMPLATE_BANK,
) -> Scene:
    """Generate one frame with embedded targets and ground truth.

    Targets are placed uniformly at random with scales in [0.8, 1.4],
    avoiding the image border. Deterministic given the RNG state.
    """
    img = rng.normal(0.0, 1.0, size=(spec.size, spec.size))
    img = _box_blur(img, spec.smoothing_passes)
    std = float(img.std())
    if std > 0:
        img *= spec.clutter_sigma / std

    truths: list[GroundTruth] = []
    for _ in range(spec.n_targets):
        template = templates[int(rng.integers(len(templates)))]
        scale = float(rng.uniform(0.8, 1.4))
        rendered = _render_scaled(template.mask, scale)
        rh, rw = rendered.shape
        if rh >= spec.size - 2 or rw >= spec.size - 2:
            continue  # scene too small for this scale; skip the target
        row = int(rng.integers(1, spec.size - rh - 1))
        col = int(rng.integers(1, spec.size - rw - 1))
        img[row : row + rh, col : col + rw] += spec.target_amplitude * rendered
        pixel_extent = max(rh, rw)
        truths.append(
            GroundTruth(
                template=template,
                row=row,
                col=col,
                scale=scale,
                distance_m=FOCAL_PIXELS * template.physical_size_m / pixel_extent,
            )
        )
    return Scene(image=img.astype(np.float64), truths=tuple(truths))
