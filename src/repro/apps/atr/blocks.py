"""The four ATR functional blocks (Fig. 1), as real numpy computation.

Block boundaries follow the paper::

    detect_targets    -> regions of interest          (Target Detection)
    fft_correlate     -> correlation spectra          (FFT)
    ifft_peaks        -> correlation peaks per ROI    (IFFT)
    compute_distances -> template match + range       (Compute Distance)

Each block's output is the next block's input, mirroring the payload
chain of Fig. 6. Every block is batch-aware: it accepts work from any
number of frames at once and vectorizes across it, so
:meth:`~repro.apps.atr.reference.ATRPipeline.run_batch` amortizes FFT
setup over a whole scene list while the block boundaries — and the
per-ROI results — stay those of the sequential pipeline.

The connected-component labeling inside detection is a run-length
union-find over whole horizontal runs — no scipy dependency in the hot
path, and no per-pixel Python loop. The original two-pass per-pixel
implementation is retained as :func:`label_components_reference`; the
property suite proves the two agree on randomized masks.

Template spectra are cached per (bank, FFT size) by
:func:`template_bank_spectra`, so steady-state frames only transform
the ROI patches: ``conj(rfft2(template.normalized()))`` is computed
once per template per size and reused for every ROI of every frame.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.apps.atr.image import FOCAL_PIXELS
from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = [
    "RegionOfInterest",
    "CorrelationSpectrum",
    "CorrelationPeaks",
    "detect_targets",
    "fft_correlate",
    "ifft_peaks",
    "compute_distances",
    "label_components",
    "label_components_reference",
    "template_bank_spectra",
    "TEMPLATE_SPECTRUM_CACHE",
]


# ---------------------------------------------------------------------------
# Block 1: Target Detection
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RegionOfInterest:
    """A candidate target region extracted by detection.

    Attributes
    ----------
    patch:
        The image cut-out (padded to a square window).
    row, col:
        Top-left corner of the window in the source frame.
    mass:
        Total above-threshold energy inside the component (used to rank
        candidates).
    extent:
        Longest axis of the raw component bounding box, pixels.
    """

    patch: np.ndarray
    row: int
    col: int
    mass: float
    extent: int


class _UnionFind:
    """Minimal union-find for two-pass labeling (reference path)."""

    def __init__(self) -> None:
        self.parent: list[int] = []

    def make(self) -> int:
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def label_components_reference(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected labeling, per-pixel two-pass union-find.

    The original (pre-vectorization) implementation, retained as the
    behavioural oracle for :func:`label_components`: the property suite
    checks the fast path against this one on randomized masks.
    """
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    h, w = mask.shape
    labels = np.zeros((h, w), dtype=np.int64)
    uf = _UnionFind()
    for r in range(h):
        row_mask = mask[r]
        for col in range(w):
            if not row_mask[col]:
                continue
            up = labels[r - 1, col] if r > 0 else 0
            left = labels[r, col - 1] if col > 0 else 0
            if up and left:
                labels[r, col] = min(up, left)
                uf.union(up - 1, left - 1)
            elif up or left:
                labels[r, col] = up or left
            else:
                labels[r, col] = uf.make() + 1
    # Second pass: flatten equivalences and renumber densely.
    remap: dict[int, int] = {}
    for r in range(h):
        for col in range(w):
            lab = labels[r, col]
            if lab:
                root = uf.find(lab - 1)
                if root not in remap:
                    remap[root] = len(remap) + 1
                labels[r, col] = remap[root]
    return labels, len(remap)


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labeling (run-length union-find).

    Returns ``(labels, n)`` where ``labels`` assigns 1..n to foreground
    pixels and 0 to background, numbered in raster order of each
    component's first pixel — identical output to
    :func:`label_components_reference`, and matching
    ``scipy.ndimage.label`` with the default structuring element up to
    label permutation.

    Instead of visiting pixels one at a time, the mask is decomposed
    into horizontal runs (vectorized diff), runs in adjacent rows are
    unioned where their column intervals overlap, and labels are
    painted back with one scatter — the Python work is O(runs), not
    O(pixels).
    """
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    h, w = mask.shape
    labels = np.zeros((h, w), dtype=np.int64)
    if mask.size == 0 or not mask.any():
        return labels, 0

    # Horizontal runs: a run starts at a foreground pixel with no
    # foreground left-neighbour and ends where none follows. Flat
    # indices are raster-ordered, so runs pair up start/end in order.
    m = np.ascontiguousarray(mask, dtype=bool)
    start_mask = m.copy()
    start_mask[:, 1:] &= ~m[:, :-1]
    end_mask = m.copy()
    end_mask[:, :-1] &= ~m[:, 1:]
    starts = np.flatnonzero(start_mask)
    ends = np.flatnonzero(end_mask)  # inclusive end position of each run
    rows = starts // w
    cs = starts - rows * w
    ce = ends - rows * w + 1  # exclusive column end (same row as the start)
    n_runs = len(rows)

    # Union runs that touch vertically (4-connectivity: column overlap
    # between consecutive rows). Union-to-min keeps each set's root at
    # its earliest run, which preserves raster first-pixel numbering.
    parent = list(range(n_runs))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    row_off = np.searchsorted(rows, np.arange(h + 1)).tolist()
    cs_l = cs.tolist()
    ce_l = ce.tolist()
    present = np.unique(rows).tolist()
    for k in range(len(present) - 1):
        r, r2 = present[k], present[k + 1]
        if r2 != r + 1:
            continue
        i, i_end = row_off[r], row_off[r + 1]
        j, j_end = row_off[r2], row_off[r2 + 1]
        while i < i_end and j < j_end:
            if cs_l[i] < ce_l[j] and cs_l[j] < ce_l[i]:
                ri, rj = find(i), find(j)
                if ri != rj:
                    if ri < rj:
                        parent[rj] = ri
                    else:
                        parent[ri] = rj
            if ce_l[i] <= ce_l[j]:
                i += 1
            else:
                j += 1

    # Dense renumbering in raster order of each component's first run.
    remap: dict[int, int] = {}
    run_label = np.empty(n_runs, dtype=np.int64)
    for i in range(n_runs):
        root = find(i)
        lab = remap.get(root)
        if lab is None:
            lab = len(remap) + 1
            remap[root] = lab
        run_label[i] = lab

    # Paint every run with one scatter into the flat label array.
    lengths = ce - cs
    total = int(lengths.sum())
    starts_flat = rows * w + cs
    run_base = np.cumsum(lengths) - lengths  # exclusive prefix per run
    flat_idx = np.repeat(starts_flat - run_base, lengths) + np.arange(total)
    labels.ravel()[flat_idx] = np.repeat(run_label, lengths)
    return labels, len(remap)


def detect_targets(
    image: np.ndarray,
    threshold_sigma: float = 2.5,
    max_regions: int = 4,
    window: int = 24,
    min_pixels: int = 6,
) -> list[RegionOfInterest]:
    """Block 1: find bright connected regions and cut out ROIs.

    Thresholds the frame at ``mean + threshold_sigma * std``, labels the
    resulting mask, ranks components by above-threshold mass, and
    returns up to ``max_regions`` windows of side ``window`` centred on
    the component centroids (clipped to the frame).

    Per-component statistics (mass, centroid, bounding box) come from a
    single pass of ``np.bincount``-style aggregation over the label
    image rather than one ``labels == lab`` rescan per component.
    """
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    threshold = float(image.mean() + threshold_sigma * image.std())
    mask = image > threshold
    if not mask.any():
        return []
    labels, n = label_components(mask)
    ys, xs = np.nonzero(labels)
    labs = labels[ys, xs]
    counts = np.bincount(labs, minlength=n + 1)
    excess = image - threshold
    mass = np.bincount(labs, weights=excess[ys, xs], minlength=n + 1)
    # Pixel coordinates are exact in float64, so these sums (and the
    # centroids below) are bit-equal to the per-component .mean() path.
    sum_y = np.bincount(labs, weights=ys, minlength=n + 1)
    sum_x = np.bincount(labs, weights=xs, minlength=n + 1)
    y_min = np.full(n + 1, image.shape[0], dtype=np.int64)
    y_max = np.full(n + 1, -1, dtype=np.int64)
    x_min = np.full(n + 1, image.shape[1], dtype=np.int64)
    x_max = np.full(n + 1, -1, dtype=np.int64)
    np.minimum.at(y_min, labs, ys)
    np.maximum.at(y_max, labs, ys)
    np.minimum.at(x_min, labs, xs)
    np.maximum.at(x_max, labs, xs)

    half = window // 2
    r_hi = image.shape[0] - window
    c_hi = image.shape[1] - window
    regions: list[RegionOfInterest] = []
    for lab in range(1, n + 1):
        if counts[lab] < min_pixels:
            continue
        extent = int(max(y_max[lab] - y_min[lab], x_max[lab] - x_min[lab]) + 1)
        cy = int(round(sum_y[lab] / counts[lab]))
        cx = int(round(sum_x[lab] / counts[lab]))
        r0 = min(max(cy - half, 0), r_hi)
        c0 = min(max(cx - half, 0), c_hi)
        patch = image[r0 : r0 + window, c0 : c0 + window].copy()
        regions.append(
            RegionOfInterest(patch, r0, c0, float(mass[lab]), extent)
        )
    regions.sort(key=lambda roi: roi.mass, reverse=True)
    return regions[:max_regions]


# ---------------------------------------------------------------------------
# Block 2: FFT
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CorrelationSpectrum:
    """Frequency-domain products for one ROI against every template.

    Attributes
    ----------
    roi:
        The originating region.
    spectra:
        template name -> complex product ``F(patch) * conj(F(template))``.
    fft_size:
        The (square) transform size used.
    stacked:
        The same products as one ``(templates, fft_size, fft_size//2+1)``
        array (bank order), letting the IFFT block batch without
        restacking. ``spectra`` values are views into it.
    """

    roi: RegionOfInterest
    spectra: dict[str, np.ndarray]
    fft_size: int
    stacked: np.ndarray | None = dataclasses.field(
        default=None, repr=False, compare=False
    )


class _SpectrumCache:
    """Conjugated template-bank spectra, cached per (bank, FFT size).

    Banks are keyed on the identity of their template objects; each
    entry pins the bank tuple so those ids stay valid for the cache's
    lifetime. The stored arrays are ``conj(rfft2(normalized, s=(n, n)))``
    stacked along axis 0 in bank order, marked read-only because they
    are shared across every frame.
    """

    def __init__(self, max_banks: int = 8) -> None:
        self.max_banks = max_banks
        self.hits = 0
        self.misses = 0
        self._entries: dict[
            tuple[int, ...], tuple[tuple[t.Any, ...], dict[int, np.ndarray]]
        ] = {}

    def spectra(self, templates: t.Sequence[t.Any], n: int) -> np.ndarray:
        bank = tuple(templates)
        key = tuple(id(tp) for tp in bank)
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.max_banks:
                # Banks are few and cheap to rebuild; a full reset keeps
                # the bound without LRU bookkeeping on the hot path.
                self._entries.clear()
            entry = (bank, {})
            self._entries[key] = entry
        per_size = entry[1]
        stack = per_size.get(n)
        if stack is None:
            self.misses += 1
            if not bank:
                stack = np.empty((0, n, n // 2 + 1), dtype=np.complex128)
            else:
                stack = np.stack(
                    [
                        np.conj(np.fft.rfft2(tp.normalized(), s=(n, n)))
                        for tp in bank
                    ]
                )
            stack.setflags(write=False)
            per_size[n] = stack
        else:
            self.hits += 1
        return stack

    def clear(self) -> None:
        """Drop all cached spectra and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache shared by :func:`fft_correlate` and
#: :func:`repro.apps.atr.matching.match_region`.
TEMPLATE_SPECTRUM_CACHE = _SpectrumCache()


def template_bank_spectra(templates: t.Sequence[t.Any], n: int) -> np.ndarray:
    """Stacked ``conj(F(template))`` at FFT size ``n``, cached.

    Accepts any sequence of objects with ``normalized()`` (templates or
    :class:`~repro.apps.atr.matching.TemplateVariant`). Returns a
    read-only ``(len(templates), n, n//2+1)`` complex array in bank
    order; repeat calls with the same bank objects and size are cache
    hits and bit-identical to a fresh computation.
    """
    return TEMPLATE_SPECTRUM_CACHE.spectra(templates, n)


def _pad_size(shape: tuple[int, int]) -> int:
    """Power-of-two FFT size for linear correlation of a patch."""
    return 1 << (max(shape) * 2 - 1).bit_length()


#: Max surfaces per batched FFT call. Large batches in one 3-D
#: transform thrash the cache; chunking keeps the working set resident
#: without changing results (per-slice transforms are independent).
_FFT_CHUNK = 64


def fft_correlate(
    regions: t.Sequence[RegionOfInterest],
    templates: t.Sequence[Template] = TEMPLATE_BANK,
) -> list[CorrelationSpectrum]:
    """Block 2: transform each ROI and multiply with template spectra.

    Cross-correlation via the convolution theorem: the IFFT of
    ``F(patch) * conj(F(template))`` is the correlation surface. The
    template transforms come from :func:`template_bank_spectra` (cached
    across frames); ROI patches of the same shape are stacked and
    transformed in one batched ``rfft2`` call.
    """
    bank = tuple(templates)
    names = tuple(tp.name for tp in bank)
    out: list[CorrelationSpectrum | None] = [None] * len(regions)
    groups: dict[tuple[tuple[int, ...], int], list[int]] = {}
    for i, roi in enumerate(regions):
        n = _pad_size(roi.patch.shape)
        groups.setdefault((roi.patch.shape, n), []).append(i)
    for (_, n), idxs in groups.items():
        conj_bank = template_bank_spectra(bank, n)
        # Chunk very large batches: transforms on working sets that fit
        # in cache beat one huge 3-D FFT (results are identical either
        # way — the per-slice transforms are independent).
        for lo in range(0, len(idxs), _FFT_CHUNK):
            chunk = idxs[lo : lo + _FFT_CHUNK]
            if len(chunk) == 1:
                roi = regions[chunk[0]]
                patches = (roi.patch - roi.patch.mean())[None]
            else:
                patches = np.stack(
                    [regions[i].patch - regions[i].patch.mean() for i in chunk]
                )
            f_patches = np.fft.rfft2(patches, s=(n, n))
            products = f_patches[:, None, :, :] * conj_bank[None, :, :, :]
            for j, i in enumerate(chunk):
                stacked = products[j]
                out[i] = CorrelationSpectrum(
                    roi=regions[i],
                    spectra={name: stacked[ti] for ti, name in enumerate(names)},
                    fft_size=n,
                    stacked=stacked,
                )
    return [spectrum for spectrum in out if spectrum is not None]


# ---------------------------------------------------------------------------
# Block 3: IFFT
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CorrelationPeaks:
    """Spatial-domain correlation peaks for one ROI.

    Attributes
    ----------
    roi:
        The originating region.
    peaks:
        template name -> (peak value, peak row, peak col).
    """

    roi: RegionOfInterest
    peaks: dict[str, tuple[float, int, int]]


def ifft_peaks(spectra: t.Sequence[CorrelationSpectrum]) -> list[CorrelationPeaks]:
    """Block 3: invert each spectrum and locate the correlation maximum.

    All spectra sharing an FFT size — every template of every ROI of
    every frame in the batch — are stacked into one 3-D array and
    inverted with a single batched ``irfft2``; peaks come from one
    vectorized argmax over the flattened surfaces.
    """
    out: list[CorrelationPeaks | None] = [None] * len(spectra)
    stacks: list[np.ndarray | None] = [None] * len(spectra)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, spectrum in enumerate(spectra):
        stacked = spectrum.stacked
        if stacked is None:
            if not spectrum.spectra:
                out[i] = CorrelationPeaks(roi=spectrum.roi, peaks={})
                continue
            stacked = np.stack(list(spectrum.spectra.values()))
        elif stacked.shape[0] == 0:
            out[i] = CorrelationPeaks(roi=spectrum.roi, peaks={})
            continue
        stacks[i] = stacked
        groups.setdefault((spectrum.fft_size, stacked.shape[0]), []).append(i)
    for (n, t_count), group in groups.items():
        # Same cache-sized chunking as the forward block.
        step = max(1, _FFT_CHUNK // t_count)
        for lo in range(0, len(group), step):
            idxs = group[lo : lo + step]
            if len(idxs) == 1:
                big = t.cast(np.ndarray, stacks[idxs[0]])
            else:
                big = np.concatenate([t.cast(np.ndarray, stacks[i]) for i in idxs])
            surfaces = np.fft.irfft2(big, s=(n, n))
            flat = surfaces.reshape(surfaces.shape[0], -1)
            arg = flat.argmax(axis=1)
            vals = flat[np.arange(flat.shape[0]), arg]
            rr, cc = np.divmod(arg, n)
            for j, i in enumerate(idxs):
                base = j * t_count
                peaks = {
                    name: (
                        float(vals[base + ti]),
                        int(rr[base + ti]),
                        int(cc[base + ti]),
                    )
                    for ti, name in enumerate(spectra[i].spectra)
                }
                out[i] = CorrelationPeaks(roi=spectra[i].roi, peaks=peaks)
    return [peak_set for peak_set in out if peak_set is not None]


# ---------------------------------------------------------------------------
# Block 4: Compute Distance
# ---------------------------------------------------------------------------

def compute_distances(
    peak_sets: t.Sequence[CorrelationPeaks],
    templates: t.Sequence[Template] = TEMPLATE_BANK,
    min_score: float = 0.0,
) -> list[dict[str, t.Any]]:
    """Block 4: pick the best template per ROI and estimate range.

    Range uses the pinhole model shared with scene generation: the
    detected component extent is the apparent pixel size of a target of
    known physical size, so ``distance = FOCAL_PIXELS * size / extent``.

    Returns one record per ROI with keys ``template``, ``score``,
    ``position`` (frame coordinates of the ROI) and ``distance_m``.
    When every ROI carries the same number of candidate peaks (the
    normal case — one per bank template), the best-template argmax runs
    vectorized across the whole batch.
    """
    by_name = {template.name: template for template in templates}
    results: list[dict[str, t.Any]] = []
    if not peak_sets:
        return results

    def emit(peak_set: CorrelationPeaks, best_name: str, best_score: float) -> None:
        template = by_name[best_name]
        extent = max(peak_set.roi.extent, 1)
        results.append(
            {
                "template": best_name,
                "score": best_score,
                "position": (peak_set.roi.row, peak_set.roi.col),
                "distance_m": FOCAL_PIXELS * template.physical_size_m / extent,
            }
        )

    peak_counts = {len(ps.peaks) for ps in peak_sets}
    if len(peak_counts) == 1 and 0 not in peak_counts:
        values = np.array(
            [[value for value, _, _ in ps.peaks.values()] for ps in peak_sets]
        )
        best_idx = values.argmax(axis=1)
        best_scores = values[np.arange(len(peak_sets)), best_idx]
        for i, peak_set in enumerate(peak_sets):
            if best_scores[i] < min_score:
                continue
            best_name = list(peak_set.peaks)[int(best_idx[i])]
            emit(peak_set, best_name, float(best_scores[i]))
    else:
        for peak_set in peak_sets:
            best_name, (best_score, _, _) = max(
                peak_set.peaks.items(), key=lambda kv: kv[1][0]
            )
            if best_score < min_score:
                continue
            emit(peak_set, best_name, best_score)
    return results
