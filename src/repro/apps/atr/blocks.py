"""The four ATR functional blocks (Fig. 1), as real numpy computation.

Block boundaries follow the paper::

    detect_targets    -> regions of interest          (Target Detection)
    fft_correlate     -> correlation spectra          (FFT)
    ifft_peaks        -> correlation peaks per ROI    (IFFT)
    compute_distances -> template match + range       (Compute Distance)

Each block's output is the next block's input, mirroring the payload
chain of Fig. 6. The connected-component labeling inside detection is
a hand-rolled two-pass union-find — no scipy dependency in the hot
path, and the implementation is exercised by property tests.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.apps.atr.image import FOCAL_PIXELS
from repro.apps.atr.templates import TEMPLATE_BANK, Template

__all__ = [
    "RegionOfInterest",
    "CorrelationSpectrum",
    "CorrelationPeaks",
    "detect_targets",
    "fft_correlate",
    "ifft_peaks",
    "compute_distances",
    "label_components",
]


# ---------------------------------------------------------------------------
# Block 1: Target Detection
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RegionOfInterest:
    """A candidate target region extracted by detection.

    Attributes
    ----------
    patch:
        The image cut-out (padded to a square window).
    row, col:
        Top-left corner of the window in the source frame.
    mass:
        Total above-threshold energy inside the component (used to rank
        candidates).
    extent:
        Longest axis of the raw component bounding box, pixels.
    """

    patch: np.ndarray
    row: int
    col: int
    mass: float
    extent: int


class _UnionFind:
    """Minimal union-find for two-pass labeling."""

    def __init__(self) -> None:
        self.parent: list[int] = []

    def make(self) -> int:
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labeling (two-pass union-find).

    Returns ``(labels, n)`` where ``labels`` assigns 1..n to foreground
    pixels and 0 to background. Matches ``scipy.ndimage.label`` with the
    default structuring element (up to label permutation).
    """
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    h, w = mask.shape
    labels = np.zeros((h, w), dtype=np.int64)
    uf = _UnionFind()
    for r in range(h):
        row_mask = mask[r]
        for col in range(w):
            if not row_mask[col]:
                continue
            up = labels[r - 1, col] if r > 0 else 0
            left = labels[r, col - 1] if col > 0 else 0
            if up and left:
                labels[r, col] = min(up, left)
                uf.union(up - 1, left - 1)
            elif up or left:
                labels[r, col] = up or left
            else:
                labels[r, col] = uf.make() + 1
    # Second pass: flatten equivalences and renumber densely.
    remap: dict[int, int] = {}
    for r in range(h):
        for col in range(w):
            lab = labels[r, col]
            if lab:
                root = uf.find(lab - 1)
                if root not in remap:
                    remap[root] = len(remap) + 1
                labels[r, col] = remap[root]
    return labels, len(remap)


def detect_targets(
    image: np.ndarray,
    threshold_sigma: float = 2.5,
    max_regions: int = 4,
    window: int = 24,
    min_pixels: int = 6,
) -> list[RegionOfInterest]:
    """Block 1: find bright connected regions and cut out ROIs.

    Thresholds the frame at ``mean + threshold_sigma * std``, labels the
    resulting mask, ranks components by above-threshold mass, and
    returns up to ``max_regions`` windows of side ``window`` centred on
    the component centroids (clipped to the frame).
    """
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    threshold = float(image.mean() + threshold_sigma * image.std())
    mask = image > threshold
    if not mask.any():
        return []
    labels, n = label_components(mask)
    regions: list[RegionOfInterest] = []
    excess = image - threshold
    for lab in range(1, n + 1):
        ys, xs = np.nonzero(labels == lab)
        if len(ys) < min_pixels:
            continue
        mass = float(excess[ys, xs].sum())
        extent = int(max(ys.max() - ys.min(), xs.max() - xs.min()) + 1)
        cy, cx = int(round(ys.mean())), int(round(xs.mean()))
        half = window // 2
        r0 = int(np.clip(cy - half, 0, image.shape[0] - window))
        c0 = int(np.clip(cx - half, 0, image.shape[1] - window))
        patch = image[r0 : r0 + window, c0 : c0 + window].copy()
        regions.append(RegionOfInterest(patch, r0, c0, mass, extent))
    regions.sort(key=lambda roi: roi.mass, reverse=True)
    return regions[:max_regions]


# ---------------------------------------------------------------------------
# Block 2: FFT
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CorrelationSpectrum:
    """Frequency-domain products for one ROI against every template.

    Attributes
    ----------
    roi:
        The originating region.
    spectra:
        template name -> complex product ``F(patch) * conj(F(template))``.
    fft_size:
        The (square) transform size used.
    """

    roi: RegionOfInterest
    spectra: dict[str, np.ndarray]
    fft_size: int


def fft_correlate(
    regions: t.Sequence[RegionOfInterest],
    templates: t.Sequence[Template] = TEMPLATE_BANK,
) -> list[CorrelationSpectrum]:
    """Block 2: transform each ROI and multiply with template spectra.

    Cross-correlation via the convolution theorem: the IFFT of
    ``F(patch) * conj(F(template))`` is the correlation surface. The
    template transforms are computed at the padded ROI size.
    """
    out: list[CorrelationSpectrum] = []
    for roi in regions:
        n = 1 << (max(roi.patch.shape) * 2 - 1).bit_length()  # zero-pad to pow2
        patch = roi.patch - roi.patch.mean()
        f_patch = np.fft.rfft2(patch, s=(n, n))
        spectra: dict[str, np.ndarray] = {}
        for template in templates:
            f_tmpl = np.fft.rfft2(template.normalized(), s=(n, n))
            spectra[template.name] = f_patch * np.conj(f_tmpl)
        out.append(CorrelationSpectrum(roi=roi, spectra=spectra, fft_size=n))
    return out


# ---------------------------------------------------------------------------
# Block 3: IFFT
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CorrelationPeaks:
    """Spatial-domain correlation peaks for one ROI.

    Attributes
    ----------
    roi:
        The originating region.
    peaks:
        template name -> (peak value, peak row, peak col).
    """

    roi: RegionOfInterest
    peaks: dict[str, tuple[float, int, int]]


def ifft_peaks(spectra: t.Sequence[CorrelationSpectrum]) -> list[CorrelationPeaks]:
    """Block 3: invert each spectrum and locate the correlation maximum."""
    out: list[CorrelationPeaks] = []
    for spectrum in spectra:
        peaks: dict[str, tuple[float, int, int]] = {}
        n = spectrum.fft_size
        for name, spec in spectrum.spectra.items():
            surface = np.fft.irfft2(spec, s=(n, n))
            idx = int(np.argmax(surface))
            r, c = divmod(idx, surface.shape[1])
            peaks[name] = (float(surface[r, c]), r, c)
        out.append(CorrelationPeaks(roi=spectrum.roi, peaks=peaks))
    return out


# ---------------------------------------------------------------------------
# Block 4: Compute Distance
# ---------------------------------------------------------------------------

def compute_distances(
    peak_sets: t.Sequence[CorrelationPeaks],
    templates: t.Sequence[Template] = TEMPLATE_BANK,
    min_score: float = 0.0,
) -> list[dict[str, t.Any]]:
    """Block 4: pick the best template per ROI and estimate range.

    Range uses the pinhole model shared with scene generation: the
    detected component extent is the apparent pixel size of a target of
    known physical size, so ``distance = FOCAL_PIXELS * size / extent``.

    Returns one record per ROI with keys ``template``, ``score``,
    ``position`` (frame coordinates of the ROI) and ``distance_m``.
    """
    by_name = {template.name: template for template in templates}
    results: list[dict[str, t.Any]] = []
    for peak_set in peak_sets:
        best_name, (best_score, _, _) = max(
            peak_set.peaks.items(), key=lambda kv: kv[1][0]
        )
        if best_score < min_score:
            continue
        template = by_name[best_name]
        extent = max(peak_set.roi.extent, 1)
        results.append(
            {
                "template": best_name,
                "score": best_score,
                "position": (peak_set.roi.row, peak_set.roi.col),
                "distance_m": FOCAL_PIXELS * template.physical_size_m / extent,
            }
        )
    return results
