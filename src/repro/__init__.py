"""repro — a reproduction of Liu & Chou, *Distributed Embedded Systems
for Low Power: A Case Study* (IPPS 2004).

The paper measures four distributed dynamic-voltage-scaling (DVS)
techniques — DVS during I/O, partitioning, power-failure recovery, and
node rotation — on a testbed of battery-powered Itsy pocket computers
running an automatic target recognition (ATR) pipeline over serial
links. This library rebuilds that testbed as a deterministic
discrete-event simulation with a calibrated nonlinear battery model,
and reproduces the paper's figures and experiments.

Quick start::

    from repro import run_paper_suite, figure10_results

    runs = run_paper_suite(["1", "1A", "2", "2A"])
    print(figure10_results(runs).text)

Package map:

- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.hw` — the Itsy substrate: SA-1100 DVS table, power
  model, batteries (KiBaM / linear / Peukert), serial links, nodes.
- :mod:`repro.apps.atr` — the ATR workload: a real numpy implementation
  (with multi-scale matching and multi-frame tracking) and the Fig. 6
  task profile; :mod:`repro.apps.video` and :mod:`repro.apps.sensor`
  provide contrast workloads.
- :mod:`repro.pipeline` — partitioned pipeline execution, node
  rotation, power-failure recovery.
- :mod:`repro.core` — policies, partitioning analysis, metrics,
  calibration, and the paper's experiment suite.
- :mod:`repro.analysis` — tables, charts, timing diagrams, exports.
"""

from repro.errors import (
    BatteryError,
    CalibrationError,
    ConfigurationError,
    DeadlineMissError,
    InfeasiblePartitionError,
    LinkError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.sim import Simulator, TraceRecorder
from repro.hw import (
    PAPER_BATTERY,
    RakhmatovBattery,
    SA1100_TABLE,
    VoltageAwareBattery,
    DVSTable,
    FrequencyLevel,
    HostHub,
    ItsyNode,
    KiBaM,
    KiBaMParameters,
    LinearBattery,
    PeukertBattery,
    PowerMode,
    PowerModel,
    SerialLink,
    TransactionTiming,
)
from repro.hw.link import PAPER_LINK_TIMING
from repro.hw.power import PAPER_POWER_MODEL
from repro.apps.atr import (
    ATRPipeline,
    ATRTracker,
    PAPER_PROFILE,
    PAPER_PROFILE_RAW,
    SceneSpec,
    TaskProfile,
    generate_scene,
    measure_profile,
)
from repro.pipeline import (
    BurstyWorkload,
    ConstantWorkload,
    Partition,
    PipelineConfig,
    PipelineEngine,
    PipelineResult,
    RecoveryConfig,
    RoleConfig,
    RotationController,
    TraceWorkload,
    UniformWorkload,
    WorkloadModel,
    enumerate_partitions,
)
from repro.core import (
    PAPER_EXPERIMENTS,
    BaselinePolicy,
    DVSDuringIOPolicy,
    ExperimentMetrics,
    ExperimentRun,
    ExperimentSpec,
    PartitionAnalysis,
    PinnedLevelsPolicy,
    SlowestFeasiblePolicy,
    analyze_partitions,
    run_experiment,
    run_paper_suite,
    select_best,
    summarize_runs,
)
from repro.core.calibration import calibrate_battery, paper_anchors
from repro.core.yds import Job, SpeedSegment, yds_schedule
from repro.analysis import (
    bar_chart,
    energy_breakdown_rows,
    render_energy_breakdown,
    figure6_performance_profile,
    figure7_power_profile,
    figure8_partitioning,
    figure10_results,
    format_table,
    render_gantt,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimulationError",
    "ScheduleError",
    "DeadlineMissError",
    "InfeasiblePartitionError",
    "BatteryError",
    "LinkError",
    "CalibrationError",
    "ConfigurationError",
    # sim
    "Simulator",
    "TraceRecorder",
    # hw
    "FrequencyLevel",
    "DVSTable",
    "SA1100_TABLE",
    "PowerMode",
    "PowerModel",
    "PAPER_POWER_MODEL",
    "KiBaM",
    "KiBaMParameters",
    "PAPER_BATTERY",
    "LinearBattery",
    "PeukertBattery",
    "RakhmatovBattery",
    "VoltageAwareBattery",
    "SerialLink",
    "TransactionTiming",
    "PAPER_LINK_TIMING",
    "HostHub",
    "ItsyNode",
    # atr
    "ATRPipeline",
    "SceneSpec",
    "generate_scene",
    "TaskProfile",
    "PAPER_PROFILE",
    "PAPER_PROFILE_RAW",
    "measure_profile",
    "ATRTracker",
    # pipeline
    "Partition",
    "enumerate_partitions",
    "RoleConfig",
    "PipelineConfig",
    "PipelineEngine",
    "PipelineResult",
    "RotationController",
    "RecoveryConfig",
    "WorkloadModel",
    "ConstantWorkload",
    "UniformWorkload",
    "BurstyWorkload",
    "TraceWorkload",
    # core
    "BaselinePolicy",
    "SlowestFeasiblePolicy",
    "DVSDuringIOPolicy",
    "PinnedLevelsPolicy",
    "PartitionAnalysis",
    "analyze_partitions",
    "select_best",
    "ExperimentMetrics",
    "ExperimentSpec",
    "ExperimentRun",
    "PAPER_EXPERIMENTS",
    "run_experiment",
    "run_paper_suite",
    "summarize_runs",
    "calibrate_battery",
    "paper_anchors",
    "Job",
    "SpeedSegment",
    "yds_schedule",
    # analysis
    "format_table",
    "bar_chart",
    "render_gantt",
    "energy_breakdown_rows",
    "render_energy_breakdown",
    "figure6_performance_profile",
    "figure7_power_profile",
    "figure8_partitioning",
    "figure10_results",
]
