"""Fixed-width ASCII table rendering.

Small and dependency-free: benchmarks print paper tables with it, and
its alignment rules are tested so report output stays stable.
"""

from __future__ import annotations

import typing as t

__all__ = ["format_table"]


def _cell(value: t.Any, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: t.Sequence[t.Mapping[str, t.Any]],
    columns: t.Sequence[str] | None = None,
    headers: t.Mapping[str, str] | None = None,
    float_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Parameters
    ----------
    rows:
        Mapping rows; missing keys render as ``-``.
    columns:
        Column order (default: keys of the first row, in order).
    headers:
        Optional column-key -> display-name overrides.
    float_fmt:
        ``format()`` spec applied to floats.
    title:
        Optional title line above the table.

    Examples
    --------
    >>> print(format_table([{"a": 1, "b": 2.5}], float_fmt=".1f"))
    a | b
    --+----
    1 | 2.5
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    headers = dict(headers or {})
    head = [headers.get(col, col) for col in columns]
    body = [[_cell(row.get(col), float_fmt) for col in columns] for row in rows]

    widths = [
        max(len(head[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]
    numeric = [
        all(_is_numberish(row.get(col)) for row in rows) for col in columns
    ]

    def fmt_line(cells: t.Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return " | ".join(parts).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(head))
    lines.append(sep)
    lines.extend(fmt_line(line) for line in body)
    return "\n".join(lines)


def _is_numberish(value: t.Any) -> bool:
    return value is None or isinstance(value, (int, float)) and not isinstance(value, bool)
