"""ASCII bar charts and line plots for benchmark output.

The paper's Fig. 10 is a bar chart of absolute and normalized battery
lives; :func:`bar_chart` renders the same comparison in a terminal.
:func:`line_plot` covers discharge curves and ablation sweeps.
"""

from __future__ import annotations

import typing as t

__all__ = ["bar_chart", "line_plot"]


def bar_chart(
    items: t.Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    annotations: t.Mapping[str, str] | None = None,
    title: str | None = None,
) -> str:
    """Horizontal bar chart.

    Parameters
    ----------
    items:
        (label, value) pairs; values must be non-negative.
    width:
        Width in characters of the longest bar.
    unit:
        Suffix printed after each value.
    annotations:
        Optional label -> extra text (e.g. the Fig. 10 ratio labels).
    title:
        Optional title line.

    Examples
    --------
    >>> print(bar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a | #### 2.00
    b | ##   1.00
    """
    if not items:
        return (title + "\n" if title else "") + "(no data)"
    if any(v < 0 for _, v in items):
        raise ValueError("bar values must be non-negative")
    annotations = dict(annotations or {})
    peak = max(v for _, v in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        n = int(round(width * value / peak))
        bar = "#" * n
        extra = f"  {annotations[label]}" if label in annotations else ""
        lines.append(
            f"{label.ljust(label_w)} | {bar.ljust(width)} {value:.2f}{unit}{extra}"
        )
    return "\n".join(lines)


def line_plot(
    points: t.Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Scatter/line plot on a character grid.

    Points are marked with ``*``; axes are annotated with min/max
    values. Intended for monotone-ish series (discharge curves,
    parameter sweeps), not precision graphics.
    """
    if len(points) < 2:
        return (title + "\n" if title else "") + "(need >= 2 points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int(round((x - x0) / xspan * (width - 1)))
        row = int(round((y - y0) / yspan * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = [title] if title else []
    lines.append(f"{y_label} [{y0:.3g} .. {y1:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x0:.3g} .. {x1:.3g}]")
    return "\n".join(lines)
