"""Timing-vs-activity (Gantt) diagrams from simulation traces.

Renders a :class:`~repro.sim.trace.TraceRecorder`'s segments as one
character row per actor — the textual equivalent of the paper's
timing-vs-power diagrams (Figs. 2, 3 and 9). Each activity gets a
glyph; a legend is appended.
"""

from __future__ import annotations

import typing as t

from repro.sim.trace import Segment, TraceRecorder

__all__ = ["ACTIVITY_GLYPHS", "render_gantt"]

#: Default glyph per activity label.
ACTIVITY_GLYPHS: dict[str, str] = {
    "recv": "R",
    "send": "S",
    "proc": "P",
    "ack": "a",
    "idle": ".",
    "wait": ".",
    "reconfig": "#",
    "dead": "x",
}


def render_gantt(
    trace: TraceRecorder,
    start_s: float = 0.0,
    end_s: float | None = None,
    width: int = 100,
    actors: t.Sequence[str] | None = None,
    glyphs: t.Mapping[str, str] | None = None,
    deadline_s: float | None = None,
) -> str:
    """Render trace segments as per-actor activity rows.

    Parameters
    ----------
    trace:
        The recorded segments.
    start_s, end_s:
        Window to render (default: from 0 to the last segment end).
    width:
        Characters across the window.
    actors:
        Row order (default: trace order).
    glyphs:
        Activity -> glyph overrides, merged over
        :data:`ACTIVITY_GLYPHS`.
    deadline_s:
        If given, a ruler row marks every frame-delay boundary with
        ``|``.
    """
    actors = list(actors) if actors is not None else trace.actors
    if not actors:
        return "(empty trace)"
    glyph_map = dict(ACTIVITY_GLYPHS)
    glyph_map.update(glyphs or {})

    if end_s is None:
        end_s = max(
            (s.end for a in actors for s in trace.segments(a)), default=start_s + 1.0
        )
    span = end_s - start_s
    if span <= 0:
        return "(empty window)"

    def column(ts: float) -> int:
        return int((ts - start_s) / span * width)

    lines = []
    if deadline_s:
        ruler = [" "] * (width + 1)
        k = 0
        while start_s + k * deadline_s <= end_s:
            pos = column(start_s + k * deadline_s)
            if 0 <= pos <= width:
                ruler[pos] = "|"
            k += 1
        label_w = max(len(a) for a in actors)
        lines.append(" " * label_w + "  " + "".join(ruler).rstrip())

    label_w = max(len(a) for a in actors)
    used: set[str] = set()
    for actor in actors:
        row = [" "] * (width + 1)
        for segment in trace.segments(actor):
            if segment.end <= start_s or segment.start >= end_s:
                continue
            glyph = glyph_map.get(segment.activity, "?")
            used.add(segment.activity)
            c0 = max(0, column(max(segment.start, start_s)))
            c1 = min(width, column(min(segment.end, end_s)))
            for col in range(c0, max(c0 + 1, c1)):
                row[col] = glyph
        lines.append(f"{actor.ljust(label_w)}  " + "".join(row).rstrip())

    legend = "  ".join(
        f"{glyph_map.get(act, '?')}={act}" for act in sorted(used)
    )
    lines.append(f"[{start_s:.1f}s .. {end_s:.1f}s]  {legend}")
    return "\n".join(lines)
