"""Per-node energy accounting from battery telemetry.

The paper's discussion keeps returning to *where the charge went*: I/O
time is long but cheap per second, computation dominates, and an
unbalanced partition strands capacity in the surviving node. This
module turns a pipeline run's :class:`~repro.hw.battery.BatteryMonitor`
records into that accounting — per-node delivered charge, per-mode
charge and time shares, and the charge left stranded at the end.

Requires the run to have been configured with monitors
(``monitor_interval_s`` not None).
"""

from __future__ import annotations

import typing as t

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.pipeline.engine import PipelineResult
from repro.units import mas_to_mah

__all__ = ["energy_breakdown_rows", "render_energy_breakdown"]

#: Power modes reported as columns, in display order.
_MODES = ("computation", "communication", "idle")


def energy_breakdown_rows(result: PipelineResult) -> list[dict[str, t.Any]]:
    """One row per node: delivered charge, mode shares, stranded charge.

    Raises
    ------
    ConfigurationError
        If the run was executed without battery monitors.
    """
    if not result.monitors:
        raise ConfigurationError(
            "energy breakdown needs battery monitors; run the pipeline "
            "with monitor_interval_s set"
        )
    rows: list[dict[str, t.Any]] = []
    for name, monitor in result.monitors.items():
        row: dict[str, t.Any] = {
            "node": name,
            "delivered_mAh": monitor.battery.delivered_mah,
        }
        total_time = sum(monitor.time_by_mode_s.values()) or 1.0
        for mode in _MODES:
            row[f"{mode}_charge_pct"] = 100.0 * monitor.mode_share(mode)
            row[f"{mode}_time_pct"] = (
                100.0 * monitor.time_by_mode_s.get(mode, 0.0) / total_time
            )
        row["stranded_mAh"] = mas_to_mah(
            monitor.battery.charge_fraction()
            * monitor.battery.capacity_mah
            * 3600.0
        )
        row["died"] = name in result.death_times_s
        rows.append(row)
    return rows


def render_energy_breakdown(result: PipelineResult) -> str:
    """ASCII table of :func:`energy_breakdown_rows`."""
    rows = energy_breakdown_rows(result)
    return format_table(
        rows,
        columns=[
            "node",
            "delivered_mAh",
            "computation_charge_pct",
            "communication_charge_pct",
            "idle_charge_pct",
            "computation_time_pct",
            "communication_time_pct",
            "idle_time_pct",
            "stranded_mAh",
            "died",
        ],
        headers={
            "delivered_mAh": "delivered mAh",
            "computation_charge_pct": "comp %q",
            "communication_charge_pct": "comm %q",
            "idle_charge_pct": "idle %q",
            "computation_time_pct": "comp %t",
            "communication_time_pct": "comm %t",
            "idle_time_pct": "idle %t",
            "stranded_mAh": "stranded mAh",
        },
        float_fmt=".1f",
        title="energy breakdown (q = charge share, t = time share)",
    )
