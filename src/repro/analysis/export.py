"""CSV/JSON/LaTeX export of structured report rows."""

from __future__ import annotations

import csv
import io
import json
import pathlib
import typing as t

__all__ = ["rows_to_csv", "rows_to_json", "rows_to_latex", "write_rows"]


def rows_to_csv(rows: t.Sequence[t.Mapping[str, t.Any]], columns: t.Sequence[str] | None = None) -> str:
    """Serialize dict rows to CSV text (header included).

    With explicit ``columns``, zero rows still produce the header line
    — an exported file from an empty run (e.g. a zero-event telemetry
    log) stays parseable instead of being empty. Without ``columns``
    there is nothing to name, so zero rows yield an empty string.
    """
    if not rows and columns is None:
        return ""
    columns = list(columns) if columns is not None else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k) for k in columns})
    return buf.getvalue()


def rows_to_json(rows: t.Sequence[t.Mapping[str, t.Any]], indent: int = 2) -> str:
    """Serialize dict rows to a JSON array."""
    return json.dumps([dict(r) for r in rows], indent=indent, default=_coerce)


_LATEX_ESCAPES = {
    "&": r"\&",
    "%": r"\%",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
}


def _latex_cell(value: t.Any, float_fmt: str) -> str:
    if value is None:
        return "--"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    text = str(value)
    for char, escape in _LATEX_ESCAPES.items():
        text = text.replace(char, escape)
    return text


def rows_to_latex(
    rows: t.Sequence[t.Mapping[str, t.Any]],
    columns: t.Sequence[str] | None = None,
    headers: t.Mapping[str, str] | None = None,
    float_fmt: str = ".2f",
    caption: str | None = None,
    label: str | None = None,
) -> str:
    """Serialize dict rows to a LaTeX ``tabular`` (optionally in a table env).

    The figure generators' structured rows drop straight into a paper:

    >>> print(rows_to_latex([{"exp": "2C", "T": 19.58}]))  # doctest: +SKIP
    """
    if not rows:
        return "% (no rows)\n"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    headers = dict(headers or {})
    lines = []
    if caption is not None or label is not None:
        lines.append("\\begin{table}[t]")
        lines.append("\\centering")
    lines.append("\\begin{tabular}{" + "l" * len(columns) + "}")
    lines.append("\\toprule")
    lines.append(
        " & ".join(_latex_cell(headers.get(c, c), float_fmt) for c in columns)
        + " \\\\"
    )
    lines.append("\\midrule")
    for row in rows:
        lines.append(
            " & ".join(_latex_cell(row.get(c), float_fmt) for c in columns)
            + " \\\\"
        )
    lines.append("\\bottomrule")
    lines.append("\\end{tabular}")
    if caption is not None:
        lines.append(f"\\caption{{{caption}}}")
    if label is not None:
        lines.append(f"\\label{{{label}}}")
    if caption is not None or label is not None:
        lines.append("\\end{table}")
    return "\n".join(lines) + "\n"


def write_rows(
    rows: t.Sequence[t.Mapping[str, t.Any]],
    path: str | pathlib.Path,
    columns: t.Sequence[str] | None = None,
) -> pathlib.Path:
    """Write rows to ``path``; format chosen by suffix (.csv/.json/.tex)."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        path.write_text(rows_to_csv(rows, columns))
    elif path.suffix == ".json":
        path.write_text(rows_to_json(rows))
    elif path.suffix == ".tex":
        path.write_text(rows_to_latex(rows, columns))
    else:
        raise ValueError(
            f"unsupported export suffix {path.suffix!r} (use .csv, .json or .tex)"
        )
    return path


def _coerce(obj: t.Any) -> t.Any:
    """JSON fallback for numpy scalars and similar."""
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)
