"""One generator per paper artifact.

Each ``figureN_*`` function returns a :class:`FigureData`: the
structured rows/series behind the paper's figure plus a rendered text
block. The benchmark harness prints the text; the regression tests
assert on the rows.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.analysis.charts import bar_chart
from repro.analysis.tables import format_table
from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.experiments import ExperimentRun, summarize_runs
from repro.core.partitioning import analyze_partitions
from repro.hw.dvs import SA1100_TABLE, DVSTable
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.units import bytes_to_kb

__all__ = [
    "FigureData",
    "figure6_performance_profile",
    "figure7_power_profile",
    "figure8_partitioning",
    "figure10_results",
    "figure_discharge_curves",
]


@dataclasses.dataclass(frozen=True)
class FigureData:
    """Structured rows plus rendered text for one paper artifact."""

    figure: str
    rows: tuple[dict[str, t.Any], ...]
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def figure6_performance_profile(
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
) -> FigureData:
    """Fig. 6: per-block compute times, payloads, and transfer delays."""
    rows: list[dict[str, t.Any]] = []
    rows.append(
        {
            "stage": "input (host -> node)",
            "proc_s_at_206MHz": None,
            "payload_kb": bytes_to_kb(profile.input_bytes),
            "transfer_s": timing.nominal_duration(profile.input_bytes),
        }
    )
    for block in profile.blocks:
        rows.append(
            {
                "stage": block.name,
                "proc_s_at_206MHz": block.seconds_at_max,
                "payload_kb": bytes_to_kb(block.output_bytes),
                "transfer_s": timing.nominal_duration(block.output_bytes),
            }
        )
    total = {
        "stage": "TOTAL (PROC)",
        "proc_s_at_206MHz": profile.total_seconds_at_max,
        "payload_kb": None,
        "transfer_s": None,
    }
    rows.append(total)
    text = format_table(
        rows,
        columns=["stage", "proc_s_at_206MHz", "payload_kb", "transfer_s"],
        headers={
            "proc_s_at_206MHz": "PROC s @206.4MHz",
            "payload_kb": "output KB",
            "transfer_s": "transfer s",
        },
        float_fmt=".3f",
        title="Fig. 6 — ATR performance profile on Itsy",
    )
    return FigureData("fig6", tuple(rows), text)


def figure7_power_profile(power_model: PowerModel = PAPER_POWER_MODEL) -> FigureData:
    """Fig. 7: idle/communication/computation current per DVS level."""
    rows = tuple(power_model.figure7_rows())
    text = format_table(
        rows,
        columns=["freq_mhz", "volts", "idle_ma", "communication_ma", "computation_ma"],
        headers={
            "freq_mhz": "MHz",
            "volts": "V",
            "idle_ma": "idle mA",
            "communication_ma": "comm mA",
            "computation_ma": "comp mA",
        },
        float_fmt=".1f",
        title="Fig. 7 — power profile of ATR on Itsy (net current draw)",
    )
    return FigureData("fig7", rows, text)


def figure8_partitioning(
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    table: DVSTable = SA1100_TABLE,
    n_stages: int = 2,
) -> FigureData:
    """Fig. 8: the partitioning schemes with required clocks and payloads."""
    analyses = analyze_partitions(profile, n_stages, timing, deadline_s, table)
    rows = tuple(a.as_row() for a in analyses)
    text = format_table(
        rows,
        title=f"Fig. 8 — {n_stages}-way partitioning schemes (D = {deadline_s} s)",
        float_fmt=".1f",
    )
    return FigureData("fig8", rows, text)


def figure_discharge_curves(run: ExperimentRun, width: int = 64, height: int = 12) -> FigureData:
    """Per-node discharge curves (charge fraction vs hours) for one run.

    Not a figure the paper prints, but the measurement its power
    monitor produced; shows visually how unbalanced partitions drain
    one cell ahead of the other and how rotation locks the curves
    together. Requires battery monitors (``monitor_interval_s`` set).
    """
    from repro.analysis.charts import line_plot
    from repro.errors import ConfigurationError

    if run.pipeline is None or not run.pipeline.monitors:
        raise ConfigurationError(
            "discharge curves need a pipeline run with battery monitors"
        )
    rows: list[dict[str, t.Any]] = []
    plots: list[str] = []
    for name, monitor in run.pipeline.monitors.items():
        curve = [(ts / 3600.0, frac) for ts, frac in monitor.discharge_curve()]
        if len(curve) < 2:
            continue
        for hours, frac in curve:
            rows.append({"node": name, "hours": hours, "charge_fraction": frac})
        plots.append(
            line_plot(
                curve,
                width=width,
                height=height,
                x_label="hours",
                y_label="charge",
                title=f"{name} discharge (experiment {run.spec.label})",
            )
        )
    return FigureData("discharge", tuple(rows), "\n\n".join(plots))


def figure10_results(runs: dict[str, ExperimentRun]) -> FigureData:
    """Fig. 10: absolute and normalized battery life per experiment.

    ``runs`` should contain the I/O-bound experiments (1, 1A, 2, 2A,
    2B, 2C); the no-I/O runs are excluded, as in the paper.
    """
    metrics = [
        m for m in summarize_runs(runs) if runs[m.label].spec.io_enabled
    ]
    rows = []
    for m in metrics:
        paper = runs[m.label].spec.paper
        rows.append(
            {
                **m.as_row(),
                "paper_T_hours": paper.t_hours if paper else None,
                "paper_Rnorm_percent": paper.rnorm_percent if paper else None,
            }
        )
    table_text = format_table(
        rows,
        title="Fig. 10 — experiment results (measured vs paper)",
        float_fmt=".2f",
    )
    annotations = {
        m.label: f"Rnorm {m.rnorm * 100:.0f}%" if m.rnorm is not None else ""
        for m in metrics
    }
    absolute = bar_chart(
        [(m.label, m.t_hours) for m in metrics],
        unit=" h",
        title="absolute battery life",
    )
    normalized = bar_chart(
        [(m.label, m.tnorm_hours) for m in metrics],
        unit=" h",
        annotations=annotations,
        title="normalized battery life (T / N)",
    )
    text = "\n\n".join([table_text, absolute, normalized])
    return FigureData("fig10", tuple(rows), text)
