"""Reporting: tables, charts, timing diagrams, and exports.

Everything here renders to plain text (and CSV/JSON) — the benchmarks
print the same rows and series the paper's figures show, and the tests
assert on the structured data behind them.

- :mod:`repro.analysis.tables` — fixed-width ASCII tables.
- :mod:`repro.analysis.charts` — ASCII bar charts and line plots.
- :mod:`repro.analysis.gantt` — timing-vs-activity diagrams from
  simulation traces (the paper's Figs. 2, 3 and 9).
- :mod:`repro.analysis.figures` — one generator per paper artifact
  (Fig. 6, 7, 8, 10), returning structured rows plus rendered text.
- :mod:`repro.analysis.export` — CSV/JSON writers.
"""

from repro.analysis.charts import bar_chart, line_plot
from repro.analysis.energy import energy_breakdown_rows, render_energy_breakdown
from repro.analysis.export import rows_to_csv, rows_to_json
from repro.analysis.gantt import render_gantt
from repro.analysis.report import build_report, write_report
from repro.analysis.sensitivity import ScenarioOutcome, evaluate_scenario, sensitivity_sweep
from repro.analysis.tables import format_table
from repro.analysis.figures import (
    figure6_performance_profile,
    figure7_power_profile,
    figure8_partitioning,
    figure10_results,
    figure_discharge_curves,
)

__all__ = [
    "format_table",
    "bar_chart",
    "line_plot",
    "render_gantt",
    "build_report",
    "write_report",
    "ScenarioOutcome",
    "evaluate_scenario",
    "sensitivity_sweep",
    "rows_to_csv",
    "energy_breakdown_rows",
    "render_energy_breakdown",
    "rows_to_json",
    "figure6_performance_profile",
    "figure7_power_profile",
    "figure8_partitioning",
    "figure10_results",
    "figure_discharge_curves",
]
