"""Sensitivity of the headline results to the calibrated parameters.

The reproduction's conclusions rest on five fitted constants (KiBaM
capacity, c, k'; io_activity; the idle-curve top). This module
perturbs each one-at-a-time and recomputes the key comparison — the
normalized lifetimes of the baseline, the partitioned pipeline, and
the rotating pipeline — with the analytical predictor, answering: *is
the paper's ordering an artefact of the fit, or a robust property of
the model family?*
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.optimizer import predict_rotation_lifetime_hours
from repro.core.policies import BaselinePolicy, DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.core.prediction import predict_first_death
from repro.errors import ConfigurationError
from repro.hw.battery.kibam import KiBaMParameters, PAPER_KIBAM_PARAMETERS
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition

__all__ = ["ScenarioOutcome", "evaluate_scenario", "sensitivity_sweep"]

#: The calibrated parameters and how to perturb each.
PARAMETERS = ("capacity", "c", "k_prime", "io_activity")


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """Key normalized lifetimes under one parameterization.

    Attributes
    ----------
    label:
        Which parameter was perturbed, and by how much.
    baseline_h:
        T(1): single node with I/O at full speed (experiment 1).
    partitioned_norm_h:
        Tnorm of the 2-node scheme-1 pipeline (first death / 2).
    rotating_norm_h:
        Tnorm with ideal rotation (balanced death / 2).
    """

    label: str
    baseline_h: float
    partitioned_norm_h: float
    rotating_norm_h: float

    @property
    def partitioning_rnorm(self) -> float:
        """Rnorm of partitioning alone vs the baseline."""
        return self.partitioned_norm_h / self.baseline_h

    @property
    def rotation_rnorm(self) -> float:
        """Rnorm of partitioning + rotation vs the baseline."""
        return self.rotating_norm_h / self.baseline_h

    @property
    def ordering_holds(self) -> bool:
        """The paper's headline: baseline < partitioned < rotating."""
        return self.baseline_h < self.partitioned_norm_h < self.rotating_norm_h


def evaluate_scenario(
    label: str,
    battery: KiBaMParameters,
    power_model: PowerModel,
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
) -> ScenarioOutcome:
    """Compute the three key lifetimes for one parameterization."""
    table = SA1100_TABLE
    single = Partition(profile)
    single_plans = [plan_node(single.stage(0), timing, deadline_s, table)]
    # The paper's reference point is experiment (1): full speed, no
    # DVS anywhere.
    single_roles = BaselinePolicy().role_configs(single_plans, table)
    _, baseline_h, _ = predict_first_death(
        single_roles, timing, deadline_s, battery, power_model, table
    )

    pair = Partition(profile, (1,))
    pair_plans = [
        plan_node(a, timing, deadline_s, table) for a in pair.assignments
    ]
    pair_roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        pair_plans, table
    )
    _, first_death_h, _ = predict_first_death(
        pair_roles, timing, deadline_s, battery, power_model, table
    )
    rotating_h = predict_rotation_lifetime_hours(
        pair_roles, timing, deadline_s, battery, power_model, table
    )
    return ScenarioOutcome(
        label=label,
        baseline_h=baseline_h,
        partitioned_norm_h=first_death_h / 2.0,
        rotating_norm_h=rotating_h / 2.0,
    )


def _perturbed(
    parameter: str, factor: float
) -> tuple[KiBaMParameters, PowerModel]:
    battery = PAPER_KIBAM_PARAMETERS
    power = PAPER_POWER_MODEL
    if parameter == "capacity":
        battery = dataclasses.replace(
            battery, capacity_mah=battery.capacity_mah * factor
        )
    elif parameter == "c":
        battery = dataclasses.replace(battery, c=min(0.95, battery.c * factor))
    elif parameter == "k_prime":
        battery = dataclasses.replace(
            battery, k_prime_per_hour=battery.k_prime_per_hour * factor
        )
    elif parameter == "io_activity":
        power = power.replace(io_activity=min(1.0, power.io_activity * factor))
    else:
        raise ConfigurationError(f"unknown parameter {parameter!r}")
    return battery, power


def _scenario_job(
    task: tuple[str, KiBaMParameters, PowerModel]
) -> ScenarioOutcome:
    """Worker entry point for parallel sweeps (module-level: picklable)."""
    label, battery, power = task
    return evaluate_scenario(label, battery, power)


def sensitivity_sweep(
    rel_changes: t.Sequence[float] = (-0.10, 0.10),
    jobs: int = 1,
    batch: bool = False,
) -> list[ScenarioOutcome]:
    """One-at-a-time perturbation of every calibrated parameter.

    Returns the nominal scenario first, then one outcome per
    (parameter, change) pair. ``jobs > 1`` fans the scenarios over
    worker processes (each scenario is an independent analytical
    prediction, so ordering and results are identical to serial).
    ``batch=True`` routes every scenario through the vectorized cohort
    path (:func:`repro.batch.sweep.evaluate_tasks_batch`) — same
    outcomes, bit for bit, one numpy pass per epoch instead of one
    Python loop per config.
    """
    tasks: list[tuple[str, KiBaMParameters, PowerModel]] = [
        ("nominal", PAPER_KIBAM_PARAMETERS, PAPER_POWER_MODEL)
    ]
    for parameter in PARAMETERS:
        for change in rel_changes:
            battery, power = _perturbed(parameter, 1.0 + change)
            tasks.append((f"{parameter} {change:+.0%}", battery, power))
    if batch:
        from repro.batch.sweep import evaluate_tasks_batch

        return list(evaluate_tasks_batch(tasks).outcomes)
    if jobs <= 1:
        return [_scenario_job(task) for task in tasks]

    from repro.exec import SweepExecutor

    return SweepExecutor(jobs=jobs).map(_scenario_job, tasks)
