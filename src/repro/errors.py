"""Exception hierarchy for :mod:`repro`.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError``, ``ValueError`` from numpy, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleError",
    "DeadlineMissError",
    "InfeasiblePartitionError",
    "BatteryError",
    "LinkError",
    "CalibrationError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state.

    Raised for kernel-level problems such as scheduling an event in the
    past, resuming a finished process, or running a simulation whose
    event queue was corrupted.
    """


class ScheduleError(ReproError):
    """A node schedule could not be constructed.

    Raised when the RECV/PROC/SEND phases of a frame cannot be laid out
    (e.g. negative durations, overlapping phases).
    """


class DeadlineMissError(ScheduleError):
    """A node failed to complete RECV+PROC+SEND within the frame delay D.

    Attributes
    ----------
    node:
        Name of the offending node.
    required:
        Time the node actually needs for one frame, in seconds.
    deadline:
        The frame delay D it had to meet, in seconds.
    """

    def __init__(self, node: str, required: float, deadline: float):
        self.node = node
        self.required = required
        self.deadline = deadline
        super().__init__(
            f"node {node!r} needs {required:.3f}s per frame but the frame "
            f"delay is {deadline:.3f}s"
        )


class InfeasiblePartitionError(ReproError):
    """No frequency level allows a partition to meet the frame delay.

    Mirrors the paper's third partitioning scheme, where Node1 would
    have to run at ~380 MHz against a 206.4 MHz maximum.
    """

    def __init__(self, message: str, required_mhz: float | None = None):
        super().__init__(message)
        self.required_mhz = required_mhz


class BatteryError(ReproError):
    """Invalid battery operation (negative draw, step on a dead cell, ...)."""


class LinkError(ReproError):
    """Invalid serial-link operation or saturated-network condition."""


class CalibrationError(ReproError):
    """A model calibration failed to converge or hit its bounds."""


class ConfigurationError(ReproError):
    """An experiment or component configuration is inconsistent."""
