"""Batched sensitivity sweeps: 10k configs through one cohort.

A sweep *point* perturbs the calibrated constants (KiBaM capacity /
``c`` / ``k'``, the power model's ``io_activity``) by per-axis factors;
evaluating a point means predicting the paper's three key lifetimes —
baseline, partitioned first death, ideal rotation — which reduces to
four battery cells per point, each repeating a fixed duty cycle. The
batch path packs every cell of every point into one
:class:`~repro.batch.kibam.KiBaMCohort` and lets the
:class:`~repro.batch.stepper.CohortStepper` drive them all at once.

Because the role structure (and therefore every segment *duration*) is
config-independent, only currents and battery constants vary across the
cohort: per-point currents follow the same affine
``idle + w * (peak - idle)`` expression the scalar
:meth:`~repro.hw.power.PowerModel.current_ma` evaluates, so batch and
scalar sweeps agree bit for bit (see ``tests/batch/``).

:func:`batch_sweep` chunks the point list through
:class:`~repro.exec.SweepExecutor`, so cohort batching composes with
process parallelism and the content-addressed
:class:`~repro.exec.cache.ResultCache`; each chunk ships its telemetry
home inside the payload, cache hits included, keeping folded telemetry
deterministic across serial / parallel / replayed runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import time
import typing as t

import numpy as np

from repro.analysis.sensitivity import PARAMETERS, ScenarioOutcome
from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.batch.kibam import CohortCell, KiBaMCohort
from repro.batch.stepper import CohortStepper
from repro.core.policies import BaselinePolicy, DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.core.prediction import role_duty_cycle
from repro.errors import CalibrationError, ConfigurationError
from repro.exec import SweepExecutor
from repro.exec.cache import ResultCache
from repro.hw.battery.kibam import (
    KiBaM,
    KiBaMParameters,
    PAPER_KIBAM_PARAMETERS,
    lifetime_seconds,
)
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.obs import Telemetry
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "SCENARIO_KINDS",
    "SweepPoint",
    "BatchSweepSpec",
    "BatchScenarioResult",
    "BatchStats",
    "BatchSweepResult",
    "VerifyReport",
    "scenario_segments",
    "evaluate_cycles_batch",
    "evaluate_tasks_batch",
    "evaluate_points_batch",
    "task_reference_scalar",
    "point_reference_scalar",
    "batch_sweep",
    "verify_sample",
]

#: The four cells a sensitivity scenario discharges, in cohort order.
SCENARIO_KINDS = ("baseline", "stage0", "stage1", "rotation")

#: Short axis names used in generated grid labels, aligned with
#: :data:`repro.analysis.sensitivity.PARAMETERS`.
_SHORT = {"capacity": "cap", "c": "c", "k_prime": "kp", "io_activity": "io"}

#: One scenario task: (label, battery parameters, power model) — the
#: same triple :func:`repro.analysis.sensitivity.evaluate_scenario` takes.
Task = tuple[str, KiBaMParameters, PowerModel]


# ---------------------------------------------------------------------------
# sweep points
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One sweep config: per-axis perturbation factors.

    ``factors`` aligns with :data:`~repro.analysis.sensitivity.PARAMETERS`
    (capacity, c, k_prime, io_activity); a factor of 1.0 leaves that
    axis at its calibrated value.
    """

    label: str
    factors: tuple[float, float, float, float]

    def task(self) -> Task:
        """Resolve to the calibrated constants with factors applied.

        Mirrors :func:`repro.analysis.sensitivity._perturbed` expression
        for expression (including the ``c``/``io_activity`` clamps), so
        a single-axis point resolves to exactly what the one-at-a-time
        scalar sweep evaluates.
        """
        battery = PAPER_KIBAM_PARAMETERS
        power = PAPER_POWER_MODEL
        cap_f, c_f, kp_f, io_f = self.factors
        battery = dataclasses.replace(
            battery,
            capacity_mah=battery.capacity_mah * cap_f,
            c=min(0.95, battery.c * c_f),
            k_prime_per_hour=battery.k_prime_per_hour * kp_f,
        )
        power = power.replace(io_activity=min(1.0, power.io_activity * io_f))
        return (self.label, battery, power)


@dataclasses.dataclass(frozen=True)
class BatchSweepSpec:
    """What to sweep: axes, span, and grid resolution.

    ``mode="grid"`` takes the full cross product (``grid ** len(parameters)``
    configs — ``grid=10`` over all four axes is the 10k-config sweep);
    ``mode="one_at_a_time"`` perturbs each axis separately around the
    nominal point, like the classic sensitivity sweep.
    """

    grid: int = 3
    rel_span: float = 0.10
    mode: str = "grid"
    parameters: tuple[str, ...] = PARAMETERS
    deadline_s: float = 2.3
    max_hours: float = 400.0

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise ConfigurationError(f"grid must be >= 1, got {self.grid}")
        if not 0.0 < self.rel_span < 1.0:
            raise ConfigurationError(
                f"rel_span must be in (0, 1), got {self.rel_span}"
            )
        if self.mode not in ("grid", "one_at_a_time"):
            raise ConfigurationError(f"unknown sweep mode {self.mode!r}")
        unknown = [p for p in self.parameters if p not in PARAMETERS]
        if unknown or not self.parameters:
            raise ConfigurationError(
                f"parameters must be a non-empty subset of {PARAMETERS}, "
                f"got {self.parameters}"
            )

    def axis_factors(self) -> tuple[float, ...]:
        """Evenly spaced factors spanning ``1 ± rel_span``."""
        if self.grid == 1:
            return (1.0,)
        lo = 1.0 - self.rel_span
        step = 2.0 * self.rel_span / (self.grid - 1)
        return tuple(lo + step * i for i in range(self.grid))

    def points(self) -> tuple[SweepPoint, ...]:
        """The sweep's configs, in deterministic enumeration order."""
        factors = self.axis_factors()
        if self.mode == "one_at_a_time":
            points = [SweepPoint("nominal", (1.0, 1.0, 1.0, 1.0))]
            for parameter in self.parameters:
                for f in factors:
                    if f == 1.0:
                        continue
                    axis = tuple(
                        f if p == parameter else 1.0 for p in PARAMETERS
                    )
                    points.append(
                        SweepPoint(f"{parameter} {f - 1.0:+.0%}", axis)
                    )
            return tuple(points)
        axes = [factors if p in self.parameters else (1.0,) for p in PARAMETERS]
        points = []
        for combo in itertools.product(*axes):
            label = " ".join(
                f"{_SHORT[p]}{(f - 1.0) * 100.0:+.3g}%"
                for p, f in zip(PARAMETERS, combo)
                if p in self.parameters
            )
            points.append(SweepPoint(label, combo))
        return tuple(points)


# ---------------------------------------------------------------------------
# scenario structure (config-independent)
# ---------------------------------------------------------------------------

def scenario_segments(
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
) -> tuple[tuple, ...]:
    """The four duty-cycle segment tuples a scenario discharges.

    Hoists the role structure out of the per-config loop: partitioning,
    plans, and DVS policy depend only on the profile / timing /
    deadline, never on the battery or ``io_activity``, so all configs
    share these segments and differ only in currents. Mirrors
    :func:`repro.analysis.sensitivity.evaluate_scenario` exactly —
    baseline from the single-node :class:`BaselinePolicy` role, the
    scheme-1 pair under DVS-during-I/O, and rotation as the pair's
    concatenated cycles (:func:`predict_rotation_lifetime_hours`).
    """
    table = SA1100_TABLE
    single = Partition(profile)
    single_plans = [plan_node(single.stage(0), timing, deadline_s, table)]
    single_roles = BaselinePolicy().role_configs(single_plans, table)
    pair = Partition(profile, (1,))
    pair_plans = [plan_node(a, timing, deadline_s, table) for a in pair.assignments]
    pair_roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        pair_plans, table
    )
    baseline = role_duty_cycle(single_roles[0], timing, deadline_s)
    stages = [role_duty_cycle(role, timing, deadline_s) for role in pair_roles]
    rotation: list = []
    for cycle in stages:
        rotation.extend(cycle)
    return (baseline, stages[0], stages[1], tuple(rotation))


def _task_cycles(
    task: Task,
    segments4: tuple[tuple, ...],
    memo: dict[t.Any, tuple[tuple[tuple[float, float], ...], ...]],
) -> tuple[tuple[tuple[float, float], ...], ...]:
    """The four ``(current, dt)`` cycles for one task's power model.

    Currents are memoized per power-model identity: sweep points share
    curve objects (only ``io_activity`` varies), so a 10k-point grid
    computes each distinct current set once.
    """
    _, _, power = task
    key = (
        power.io_activity,
        power.sleep_ma,
        id(power.table),
        tuple(id(curve) for curve in power.curves.values()),
    )
    got = memo.get(key)
    if got is not None:
        return got
    table = SA1100_TABLE
    cycles = tuple(
        tuple(
            (power.current_ma(seg.mode, table.level_at(seg.level_mhz)), seg.duration_s)
            for seg in segments
        )
        for segments in segments4
    )
    memo[key] = cycles
    return cycles


# ---------------------------------------------------------------------------
# batch evaluation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BatchScenarioResult:
    """Outcomes plus the identity oracle for one cohort evaluation."""

    outcomes: tuple[ScenarioOutcome, ...]
    #: Completed duty cycles per (config, cell kind) — compare against
    #: the scalar reference for frame-count identity.
    cycles: tuple[tuple[int, int, int, int], ...]
    epochs: int
    root_solves: int


def evaluate_cycles_batch(
    cells: t.Sequence[tuple[KiBaMParameters, tuple[tuple[float, float], ...]]],
    max_hours: float = 400.0,
    obs: t.Any = None,
) -> tuple[tuple[float, ...], tuple[int, ...], int, int]:
    """Advance arbitrary ``(battery, cycle)`` cells through one cohort.

    The rung-sized entry point the explore scheduler uses: unlike
    :func:`evaluate_tasks_batch` it imposes no four-cell scenario shape
    — callers pack whatever ragged cell list a promotion cohort needs —
    and a cell outliving ``max_hours`` reports ``inf`` instead of
    raising, because "no death within the horizon" is a verdict for the
    scheduler, not an error.

    Returns ``(death_s, cycles, epochs, root_solves)`` with ``death_s``
    and ``cycles`` aligned to ``cells``; each death is bit-identical to
    the scalar :func:`~repro.hw.battery.kibam.lifetime_seconds` walk.
    """
    if not cells:
        return ((), (), 0, 0)
    cohort = KiBaMCohort([CohortCell(params, cycle) for params, cycle in cells])
    result = CohortStepper(cohort, max_hours * SECONDS_PER_HOUR, obs=obs).run()
    return (
        tuple(float(d) for d in result.death_s),
        tuple(int(c) for c in result.cycles),
        result.epochs,
        result.root_solves,
    )


def evaluate_tasks_batch(
    tasks: t.Sequence[Task],
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    max_hours: float = 400.0,
    obs: t.Any = None,
) -> BatchScenarioResult:
    """Evaluate many sensitivity scenarios in one cohort pass.

    The batch twin of mapping
    :func:`~repro.analysis.sensitivity.evaluate_scenario` over
    ``tasks`` — same outcomes, bit for bit, at cohort speed.
    """
    if not tasks:
        return BatchScenarioResult((), (), 0, 0)
    segments4 = scenario_segments(profile, timing, deadline_s)
    memo: dict[t.Any, tuple] = {}
    cells: list[CohortCell] = []
    for task in tasks:
        _, battery, _ = task
        for cycle in _task_cycles(task, segments4, memo):
            cells.append(CohortCell(battery, cycle))
    cohort = KiBaMCohort(cells)
    result = CohortStepper(cohort, max_hours * SECONDS_PER_HOUR, obs=obs).run()
    if np.isinf(result.death_s).any():
        row = int(np.flatnonzero(np.isinf(result.death_s))[0])
        raise CalibrationError(
            f"{tasks[row // 4][0]} ({SCENARIO_KINDS[row % 4]}): no death "
            f"within {max_hours} h (current too low for this parameterization)"
        )
    hours = result.death_s / SECONDS_PER_HOUR
    outcomes = []
    cycle_counts = []
    for i, (label, _, _) in enumerate(tasks):
        base, s0, s1, rot = (float(h) for h in hours[4 * i : 4 * i + 4])
        outcomes.append(
            ScenarioOutcome(
                label=label,
                baseline_h=base,
                partitioned_norm_h=min(s0, s1) / 2.0,
                rotating_norm_h=rot / 2.0,
            )
        )
        cycle_counts.append(tuple(int(c) for c in result.cycles[4 * i : 4 * i + 4]))
    return BatchScenarioResult(
        outcomes=tuple(outcomes),
        cycles=tuple(cycle_counts),
        epochs=result.epochs,
        root_solves=result.root_solves,
    )


def evaluate_points_batch(
    points: t.Sequence[SweepPoint],
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    max_hours: float = 400.0,
    obs: t.Any = None,
) -> BatchScenarioResult:
    """:func:`evaluate_tasks_batch` over resolved sweep points."""
    return evaluate_tasks_batch(
        [point.task() for point in points],
        profile=profile,
        timing=timing,
        deadline_s=deadline_s,
        max_hours=max_hours,
        obs=obs,
    )


# ---------------------------------------------------------------------------
# scalar reference twin
# ---------------------------------------------------------------------------

def task_reference_scalar(
    task: Task,
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    max_hours: float = 400.0,
) -> tuple[ScenarioOutcome, tuple[int, int, int, int]]:
    """The scalar twin of one batched scenario: outcome + cycle counts.

    Runs the shared reference loop
    (:func:`repro.hw.battery.kibam.lifetime_seconds`) over the same
    four cycles the cohort packs, so spot checks can assert both
    lifetime equality and frame-count identity. The outcome also equals
    :func:`~repro.analysis.sensitivity.evaluate_scenario` bit for bit
    (the production path; asserted in tests).
    """
    label, battery, _ = task
    segments4 = scenario_segments(profile, timing, deadline_s)
    cycles4 = _task_cycles(task, segments4, {})
    deaths = []
    counts = []
    for cycle in cycles4:
        death_s, count = lifetime_seconds(
            KiBaM(battery), cycle, max_hours * SECONDS_PER_HOUR
        )
        if not math.isfinite(death_s):
            raise CalibrationError(
                f"{label}: no death within {max_hours} h "
                "(current too low for this parameterization)"
            )
        deaths.append(death_s / SECONDS_PER_HOUR)
        counts.append(count)
    outcome = ScenarioOutcome(
        label=label,
        baseline_h=deaths[0],
        partitioned_norm_h=min(deaths[1], deaths[2]) / 2.0,
        rotating_norm_h=deaths[3] / 2.0,
    )
    return outcome, (counts[0], counts[1], counts[2], counts[3])


def point_reference_scalar(
    point: SweepPoint,
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    max_hours: float = 400.0,
) -> tuple[ScenarioOutcome, tuple[int, int, int, int]]:
    """:func:`task_reference_scalar` for a resolved sweep point."""
    return task_reference_scalar(
        point.task(),
        profile=profile,
        timing=timing,
        deadline_s=deadline_s,
        max_hours=max_hours,
    )


# ---------------------------------------------------------------------------
# chunked sweep through the executor
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BatchStats:
    """Accounting for one :func:`batch_sweep` call."""

    configs: int
    cells: int
    chunks: int
    executed: int
    cache_hits: int
    epochs: int
    root_solves: int
    wall_s: float

    @property
    def configs_per_sec(self) -> float:
        """Throughput over the whole call (cache hits included)."""
        return self.configs / self.wall_s if self.wall_s > 0 else float("inf")


@dataclasses.dataclass(frozen=True)
class BatchSweepResult:
    """Everything one batched sweep produced."""

    spec: BatchSweepSpec
    points: tuple[SweepPoint, ...]
    outcomes: tuple[ScenarioOutcome, ...]
    cycles: tuple[tuple[int, int, int, int], ...]
    stats: BatchStats

    def summary(self) -> dict[str, t.Any]:
        """JSON-stable headline numbers (registry / CLI / bench)."""
        holds = sum(1 for o in self.outcomes if o.ordering_holds)
        part = [o.partitioning_rnorm for o in self.outcomes]
        rot = [o.rotation_rnorm for o in self.outcomes]
        return {
            "configs": self.stats.configs,
            "ordering_holds": holds,
            "ordering_fraction": holds / max(1, len(self.outcomes)),
            "partitioning_rnorm_min": min(part),
            "partitioning_rnorm_max": max(part),
            "rotation_rnorm_min": min(rot),
            "rotation_rnorm_max": max(rot),
            "frames": int(sum(sum(c) for c in self.cycles)),
        }


def _chunk_job(item: tuple) -> dict[str, t.Any]:
    """Worker entry point: evaluate one chunk of points (picklable)."""
    points, profile, timing, deadline_s, max_hours, events = item
    obs = Telemetry(events=events)
    result = evaluate_points_batch(
        points,
        profile=profile if profile is not None else PAPER_PROFILE,
        timing=timing if timing is not None else PAPER_LINK_TIMING,
        deadline_s=deadline_s,
        max_hours=max_hours,
        obs=obs,
    )
    # Labels are reconstructed by the parent from its own point list
    # (chunk outcomes are in point order), so shipping them back would
    # only fatten every pickle and cache entry.
    return {
        "outcomes": [
            [o.baseline_h, o.partitioned_norm_h, o.rotating_norm_h]
            for o in result.outcomes
        ],
        "cycles": [list(c) for c in result.cycles],
        "epochs": result.epochs,
        "root_solves": result.root_solves,
        "obs": obs.as_dict(),
    }


def batch_sweep(
    spec: BatchSweepSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    chunk_size: int = 2048,
    obs: t.Any = None,
    events: bool = False,
    profile: TaskProfile | None = None,
    timing: TransactionTiming | None = None,
    flight: t.Any = None,
) -> BatchSweepResult:
    """Run a whole sweep spec through chunked cohorts.

    Chunks of ``chunk_size`` points become :class:`SweepExecutor` work
    items, so ``jobs > 1`` fans cohorts over processes and a
    :class:`ResultCache` short-circuits repeated chunks — results are
    bit-identical across serial, parallel, and cache-replayed runs.
    Telemetry (``batch.epoch`` events when ``events=True``, ``batch.*``
    counters always) rides home inside each chunk payload and is folded
    into ``obs`` in input order. An optional
    :class:`~repro.obs.flight.FlightRecorder` (``flight=``) journals
    each chunk and streams live progress.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    points = spec.points()
    started = time.perf_counter()
    items = [
        (
            points[i : i + chunk_size],
            profile,
            timing,
            spec.deadline_s,
            spec.max_hours,
            events,
        )
        for i in range(0, len(points), chunk_size)
    ]
    keys = None
    if cache is not None:
        keys = [cache.key_for("batch_sweep", "v2", item) for item in items]
    if flight is not None:
        flight.phase("batch", total=len(items))
    executor = SweepExecutor(jobs=jobs, cache=cache, obs=obs, flight=flight)
    payloads = executor.map(
        _chunk_job,
        items,
        keys=keys,
        encode=lambda payload: payload,
        decode=lambda item, payload: payload,
    )
    outcomes: list[ScenarioOutcome] = []
    cycles: list[tuple[int, int, int, int]] = []
    epochs = 0
    root_solves = 0
    for payload in payloads:
        for base, part, rot in payload["outcomes"]:
            outcomes.append(
                ScenarioOutcome(points[len(outcomes)].label, base, part, rot)
            )
        cycles.extend(tuple(int(c) for c in row) for row in payload["cycles"])
        epochs += int(payload["epochs"])
        root_solves += int(payload["root_solves"])
        if obs is not None and payload.get("obs") is not None:
            child = Telemetry.from_dict(payload["obs"])
            for event in child.events.records:
                obs.events.record(event)
            obs.metrics.merge(child.metrics)
    wall_s = time.perf_counter() - started
    stats = BatchStats(
        configs=len(points),
        cells=len(points) * len(SCENARIO_KINDS),
        chunks=len(items),
        executed=executor.stats.executed,
        cache_hits=executor.stats.cache_hits,
        epochs=epochs,
        root_solves=root_solves,
        wall_s=wall_s,
    )
    return BatchSweepResult(
        spec=spec,
        points=points,
        outcomes=tuple(outcomes),
        cycles=tuple(cycles),
        stats=stats,
    )


# ---------------------------------------------------------------------------
# scalar-vs-vector spot checks
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class VerifyReport:
    """Outcome of a scalar-vs-vector spot check."""

    checked: int
    frames_identical: bool
    max_rel_err: float
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Frames identical and lifetimes within float noise (1e-9)."""
        return self.frames_identical and self.max_rel_err <= 1e-9


def verify_sample(
    result: BatchSweepResult,
    sample: int = 8,
    profile: TaskProfile | None = None,
    timing: TransactionTiming | None = None,
) -> VerifyReport:
    """Re-run a deterministic sample of configs through the scalar path.

    Asserts the acceptance contract: per-cell completed-cycle counts
    (frame counts) identical, lifetimes within float noise. In practice
    the batch path is bit-identical, so ``max_rel_err`` is 0.0.
    """
    n = len(result.points)
    k = max(1, min(sample, n))
    indices = sorted({round(i * (n - 1) / max(1, k - 1)) for i in range(k)})
    max_rel = 0.0
    frames_ok = True
    mismatches: list[str] = []
    for i in indices:
        point = result.points[i]
        outcome, counts = point_reference_scalar(
            point,
            profile=profile if profile is not None else PAPER_PROFILE,
            timing=timing if timing is not None else PAPER_LINK_TIMING,
            deadline_s=result.spec.deadline_s,
            max_hours=result.spec.max_hours,
        )
        got = result.outcomes[i]
        for field in ("baseline_h", "partitioned_norm_h", "rotating_norm_h"):
            a = getattr(got, field)
            b = getattr(outcome, field)
            rel = abs(a - b) / max(abs(b), 1e-300)
            max_rel = max(max_rel, rel)
            if rel > 1e-9:
                mismatches.append(
                    f"{point.label}: {field} batch={a!r} scalar={b!r}"
                )
        if result.cycles[i] != counts:
            frames_ok = False
            mismatches.append(
                f"{point.label}: frames batch={result.cycles[i]} scalar={counts}"
            )
    return VerifyReport(
        checked=len(indices),
        frames_identical=frames_ok,
        max_rel_err=max_rel,
        mismatches=tuple(mismatches),
    )
