"""Vector step kernels for the non-KiBaM chemistries.

The ablation batteries (linear / Peukert / Rakhmatov) are not yet
wired into a cohort stepper; these kernels are the ground layer for
that work — each one advances a whole *column* of cells through one
constant-current step, and the property tests in
``tests/batch/test_chemistries.py`` pin them elementwise against the
scalar models' ``preview``/``draw`` as the equivalence oracle.

Exactness contract (established empirically on this platform, and
enforced by the tests):

- **linear** — pure float64 ``+ - * /``; numpy and Python agree on
  every bit, so :func:`linear_step` is *bit-identical* to the scalar
  model.
- **Rakhmatov** — the scalar model already computes its decay with
  ``np.exp``, and numpy's ``exp`` is shape-invariant (an array call
  agrees bitwise with per-element scalar calls), so
  :func:`rakhmatov_step` is *bit-identical* too.
- **Peukert** — the rate law ``I * (I / I_ref) ** (p - 1)`` involves
  ``pow``, where numpy's vectorized kernel and Python's scalar ``**``
  disagree by ~1 ULP on a few percent of inputs. The default
  (``exact=True``) computes the rate factor elementwise with Python
  scalar semantics — bit-identical, and still cheap because the
  surrounding arithmetic stays vectorized. ``exact=False`` uses
  numpy's ``**`` throughout: fully vectorized, equal to the scalar
  model only within documented float-noise bounds (relative error
  ``<= 4e-16``, i.e. a couple of ULPs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BatteryError

__all__ = [
    "PEUKERT_VECTOR_RTOL",
    "linear_step",
    "peukert_rates",
    "peukert_step",
    "rakhmatov_decay_rates",
    "rakhmatov_step",
]

#: Bound on ``|vector - scalar| / scalar`` for the ``exact=False``
#: Peukert rate path (numpy ``**`` vs Python ``**``: ~2 ULPs).
PEUKERT_VECTOR_RTOL = 4e-16


def _column(name: str, values: np.ndarray) -> np.ndarray:
    out = np.asarray(values, dtype=np.float64)
    if out.ndim != 1:
        raise BatteryError(f"{name} must be a 1-D column, got shape {out.shape}")
    if (out < 0).any():
        raise BatteryError(f"{name} must be non-negative")
    return out


def linear_step(
    remaining_mas: np.ndarray, currents_ma: np.ndarray, dt_s: np.ndarray
) -> np.ndarray:
    """``LinearBattery.preview`` over a column of cells.

    Bit-identical to the scalar model (no clamp — death handling is the
    caller's, exactly like ``preview``).
    """
    remaining = np.asarray(remaining_mas, dtype=np.float64)
    currents = _column("currents_ma", currents_ma)
    dt = _column("dt_s", dt_s)
    return remaining - currents * dt


def peukert_rates(
    currents_ma: np.ndarray,
    reference_ma: float,
    exponent: float,
    exact: bool = True,
) -> np.ndarray:
    """``PeukertBattery.effective_rate`` over a column of currents.

    ``exact=True`` evaluates the ``pow`` with Python scalar semantics
    (bit-identical to the scalar model); ``exact=False`` stays fully
    vectorized and agrees within :data:`PEUKERT_VECTOR_RTOL`.
    """
    if reference_ma <= 0:
        raise BatteryError(f"reference current must be positive: {reference_ma}")
    if exponent < 1.0:
        raise BatteryError(f"Peukert exponent must be >= 1: {exponent}")
    currents = _column("currents_ma", currents_ma)
    if exact:
        p = exponent - 1.0
        return np.array(
            [
                0.0 if i == 0.0 else i * (i / reference_ma) ** p
                for i in currents.tolist()
            ]
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = currents * (currents / reference_ma) ** (exponent - 1.0)
    return np.where(currents == 0.0, 0.0, rates)


def peukert_step(
    remaining_effective_mas: np.ndarray,
    currents_ma: np.ndarray,
    dt_s: np.ndarray,
    reference_ma: float,
    exponent: float,
    exact: bool = True,
) -> np.ndarray:
    """``PeukertBattery.preview`` over a column of cells."""
    remaining = np.asarray(remaining_effective_mas, dtype=np.float64)
    dt = _column("dt_s", dt_s)
    rates = peukert_rates(currents_ma, reference_ma, exponent, exact=exact)
    return remaining - rates * dt


def rakhmatov_decay_rates(beta_per_sqrt_s: float, n_terms: int) -> np.ndarray:
    """Per-harmonic decay rates, exactly as the scalar model builds them."""
    if beta_per_sqrt_s <= 0:
        raise BatteryError(f"beta must be positive: {beta_per_sqrt_s}")
    if n_terms < 1:
        raise BatteryError(f"need at least one series term: {n_terms}")
    return np.array(
        [beta_per_sqrt_s**2 * m**2 for m in range(1, n_terms + 1)]
    )


def rakhmatov_step(
    s_mas: np.ndarray,
    a_mas: np.ndarray,
    currents_ma: np.ndarray,
    dt_s: np.ndarray,
    rates: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``RakhmatovBattery._advance`` over a column of cells.

    ``s_mas`` is ``(n, m)`` — one row of diffusion harmonics per cell;
    returns ``(s_next, a_next, sigma_next)``. Bit-identical to the
    scalar model: both paths evaluate the decay with ``np.exp`` and the
    update in the same association order.
    """
    s = np.asarray(s_mas, dtype=np.float64)
    if s.ndim != 2:
        raise BatteryError(f"s_mas must be (n, m), got shape {s.shape}")
    a = np.asarray(a_mas, dtype=np.float64)
    currents = _column("currents_ma", currents_ma)[:, None]
    dt = _column("dt_s", dt_s)[:, None]
    rates = np.asarray(rates, dtype=np.float64)[None, :]
    decay = np.exp(-rates * dt)
    s_next = s * decay + currents * (1.0 - decay) / rates
    a_next = a + (currents * dt)[:, 0]
    sigma_next = a_next + 2.0 * s_next.sum(axis=1)
    return s_next, a_next, sigma_next
