"""Vectorized many-run substrate: structure-of-arrays config cohorts.

A 10k-config sensitivity sweep through the scalar predictor costs one
Python jump/walk loop *per config*; this package advances the entire
sweep in one numpy pass per epoch instead:

- :mod:`repro.batch.kibam` — :class:`KiBaMCohort`, the KiBaM model in
  structure-of-arrays layout (per-config wells, currents and affine
  cycle maps as float64 columns), bit-identical to the scalar model;
- :mod:`repro.batch.stepper` — :class:`CohortStepper`, the epoch loop:
  analytic whole-cycle jumps for every row far from death, a masked
  segment walk with exact scalar root solves for the few near it;
- :mod:`repro.batch.chemistries` — vector step kernels for the
  non-KiBaM chemistries (linear / Peukert / Rakhmatov), oracle-tested
  against the scalar models for future vectorization;
- :mod:`repro.batch.sweep` — :func:`batch_sweep` and friends: the
  sensitivity-scenario cohort builder, chunked execution through
  :class:`repro.exec.SweepExecutor` (so batching composes with process
  parallelism and the result cache), and the scalar spot-check twin.
"""

from repro.batch.kibam import CohortCell, KiBaMCohort
from repro.batch.stepper import CohortResult, CohortStepper
from repro.batch.sweep import (
    BatchScenarioResult,
    BatchSweepResult,
    BatchSweepSpec,
    SweepPoint,
    batch_sweep,
    evaluate_points_batch,
    evaluate_tasks_batch,
    point_reference_scalar,
)

__all__ = [
    "CohortCell",
    "KiBaMCohort",
    "CohortResult",
    "CohortStepper",
    "BatchScenarioResult",
    "BatchSweepResult",
    "BatchSweepSpec",
    "SweepPoint",
    "batch_sweep",
    "evaluate_points_batch",
    "evaluate_tasks_batch",
    "point_reference_scalar",
]
