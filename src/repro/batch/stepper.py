"""Cohort epoch loop: analytic jumps for the many, exact roots for the few.

:class:`CohortStepper` drives a :class:`~repro.batch.kibam.KiBaMCohort`
to death row by row, replaying — per row, in vector form — exactly the
jump/walk sequence of the scalar reference loop
(:func:`repro.hw.battery.kibam.lifetime_seconds`):

- **epoch jump**: every row far from death advances ``min(safe,
  remaining)`` whole duty cycles in one vectorized binary powering of
  its affine cycle map (the same safe-margin policy PR 5's fast-forward
  uses for its steady-state epochs);
- **death-mask walk**: rows whose safety margin is exhausted walk one
  cycle segment by segment, vectorized, with the cheap ``y1/I`` lower
  bound deciding — per row, per segment — whether the exact scalar
  root solve (:meth:`KiBaM.time_to_death`, Brent's method) must run.
  Only those few rows ever leave vector land, and only for the solve
  itself.

Because each row sees the same jump counts, the same closed-form
arithmetic (in the same expression order) and the same Brent solves
from bitwise-equal state, the resulting death times and cycle counts
are **bit-identical** to the scalar path — asserted by the equivalence
tests in ``tests/batch/``.

Each epoch emits one coalesced ``batch.epoch`` telemetry event
(mirroring PR 5's ``ff.epoch``) so monitors can fold batched frames
into their coverage counts without per-frame events.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import BatteryError
from repro.hw.battery.kibam import KiBaM
from repro.batch.kibam import KiBaMCohort
from repro.units import mas_to_mah

__all__ = ["CohortResult", "CohortStepper"]


@dataclasses.dataclass(frozen=True)
class CohortResult:
    """Outcome of one cohort run.

    Attributes
    ----------
    death_s:
        Per-row death time in seconds; ``inf`` where the cell was
        still alive at the horizon.
    cycles:
        Per-row count of *whole* duty cycles completed before death —
        the frame-count identity oracle against the scalar path.
    epochs:
        Epoch-loop iterations taken (vector passes).
    root_solves:
        How many exact scalar root solves ran (the only scalar work).
    delivered_mas:
        Per-row charge delivered, mA*s.
    """

    death_s: np.ndarray
    cycles: np.ndarray
    epochs: int
    root_solves: int
    delivered_mas: np.ndarray


class CohortStepper:
    """Advance a whole cohort to death (or the time horizon).

    Parameters
    ----------
    cohort:
        The structure-of-arrays cell batch; mutated in place.
    limit_s:
        Absolute time horizon (rows alive past it report ``inf``).
    obs:
        Optional :class:`repro.obs.Telemetry`; one ``batch.epoch``
        event per epoch plus ``batch.*`` counters.
    actor:
        Actor name stamped on emitted events.
    """

    def __init__(
        self,
        cohort: KiBaMCohort,
        limit_s: float,
        obs: t.Any = None,
        actor: str = "batch",
    ):
        if limit_s <= 0:
            raise BatteryError(f"time horizon must be positive: {limit_s}")
        self.cohort = cohort
        self.limit_s = float(limit_s)
        self.obs = obs
        self.actor = actor

    def run(self) -> CohortResult:
        cohort = self.cohort
        n = cohort.n
        limit = self.limit_s
        t_now = np.zeros(n)
        cycles = np.zeros(n, dtype=np.int64)
        death = np.full(n, np.inf)
        alive = np.ones(n, dtype=bool)
        epochs = 0
        root_solves = 0

        can_jump = cohort.drain > 0.0
        while True:
            rows = np.flatnonzero(alive)
            if rows.size == 0:
                break
            epochs += 1
            t0 = float(t_now[rows].min())
            drained_before = float(cohort.delivered_mas[rows].sum())

            # Mirror of the scalar jump policy: int() truncation equals
            # floor for these non-negative quantities, so the vector
            # int64 cast reproduces the scalar cycle counts exactly.
            drain = cohort.drain[rows]
            cyc_s = cohort.cycle_s[rows]
            can = can_jump[rows]
            safe = (
                np.where(can, cohort.y1[rows] / np.where(can, drain, 1.0), 0.0)
            ).astype(np.int64) - 2
            remaining = ((limit - t_now[rows]) / cyc_s).astype(np.int64) + 1
            jump = np.where(can, np.minimum(safe, remaining), 0)

            jmask = jump > 0
            jrows = rows[jmask]
            frames = 0
            if jrows.size:
                nj = jump[jmask]
                cohort.advance(jrows, nj)
                t_now[jrows] += nj * cyc_s[jmask]
                cycles[jrows] += nj
                frames += int(nj.sum())

            wrows = rows[~jmask]
            if wrows.size:
                solves, completed = self._walk_cycle(
                    wrows, t_now, cycles, death, alive
                )
                root_solves += solves
                frames += completed

            timed_out = rows[alive[rows] & (t_now[rows] >= limit)]
            if timed_out.size:
                alive[timed_out] = False

            if self.obs is not None:
                t1 = float(t_now[rows].max())
                drained_mah = mas_to_mah(
                    float(cohort.delivered_mas[rows].sum()) - drained_before
                )
                self.obs.emit(
                    "batch.epoch",
                    t1,
                    self.actor,
                    epoch=epochs,
                    alive=int(rows.size),
                    jumped=int(jrows.size),
                    walked=int(rows.size - jrows.size),
                    frames=frames,
                    t0=t0,
                    t1=t1,
                    drained_mah=drained_mah,
                    link_busy_s={},
                )

        if self.obs is not None:
            m = self.obs.metrics
            m.counter("batch.cells").inc(n)
            m.counter("batch.epochs").inc(epochs)
            m.counter("batch.frames").inc(int(cycles.sum()))
            m.counter("batch.root_solves").inc(root_solves)
        return CohortResult(
            death_s=death,
            cycles=cycles,
            epochs=epochs,
            root_solves=root_solves,
            delivered_mas=cohort.delivered_mas.copy(),
        )

    # -- the death-mask walk --------------------------------------------
    def _walk_cycle(
        self,
        wrows: np.ndarray,
        t_now: np.ndarray,
        cycles: np.ndarray,
        death: np.ndarray,
        alive: np.ndarray,
    ) -> tuple[int, int]:
        """Walk one duty cycle for rows too close to death to jump.

        Per segment: the cheap lower bound (``y1/I``, exactly the
        scalar ``time_to_death_lower_bound``) selects the rows that
        *might* die this segment; each runs the exact scalar root
        solve from injected state, and dies at ``t + ttd`` if the root
        lands inside the segment. Everyone else takes the vectorized
        closed-form step (with the scalar death latch). Rows that
        finish the whole cycle alive count one completed frame period.

        Returns ``(root_solves, completed_cycles)``.
        """
        cohort = self.cohort
        eps = KiBaM.DEATH_EPS_MAS
        walking = np.ones(wrows.size, dtype=bool)
        solves = 0
        for s in range(cohort.max_segments):
            act_pos = np.flatnonzero(walking)
            if act_pos.size == 0:
                break
            act = wrows[act_pos]
            cur = cohort.cur[act, s]
            dt = cohort.dt[act, s]
            y1 = cohort.y1[act]
            # Padding slots do not exist on the scalar path; skip them
            # entirely (they would otherwise kill latched rows one
            # cycle early and desync the frame counts).
            notpad = ~cohort.pad[act, s]
            empty = cohort.latched[act] | (y1 <= eps)
            with np.errstate(divide="ignore"):
                lb = np.where(cur > 0.0, y1 / np.where(cur > 0.0, cur, 1.0), np.inf)
            trigger = notpad & (empty | (lb <= dt))
            if trigger.any():
                for j in np.flatnonzero(trigger):
                    i = int(act[j])
                    if empty[j]:
                        ttd = 0.0
                    else:
                        solves += 1
                        ttd = cohort.scalar_cell(i).time_to_death(float(cur[j]))
                    if ttd <= float(dt[j]):
                        death[i] = t_now[i] + ttd
                        alive[i] = False
                        walking[act_pos[j]] = False
            survivors = wrows[walking]
            cohort.step_segment(survivors, s)
            t_now[survivors] += cohort.dt[survivors, s]
        completed = wrows[walking]
        cycles[completed] += 1
        return solves, int(completed.size)
