"""Structure-of-arrays KiBaM cohort: one numpy row per cell.

A sweep point is a ``(KiBaMParameters, duty cycle)`` pair; a cohort
packs thousands of them into parallel float64 columns — ``y1``/``y2``
wells, per-segment currents and closed-form factors, composed affine
cycle maps — so one numpy pass advances every still-alive config at
once (see :class:`repro.batch.stepper.CohortStepper`).

Bit-identity with the scalar path
---------------------------------
The cohort reproduces :class:`repro.hw.battery.kibam.KiBaM` *bit for
bit*, not merely to float noise. Three details make that work:

- **``math.exp`` at setup.** numpy's SIMD ``exp`` differs from libm's
  ``math.exp`` by an ULP on a few percent of inputs, so every
  ``(e^-x, 1-e^-x, r)`` factor is computed elementwise with
  ``math.exp`` (memoized per ``(k', dt)`` — sweeps share segment
  durations, so the memo collapses the cost). All *hot-loop*
  arithmetic is float64 ``+ - * /``, where numpy and Python floats are
  IEEE-identical.
- **Same expression order.** Every formula below is transcribed from
  ``KiBaM._step`` / ``cycle_map`` / ``advance_cycles`` with the same
  association order, including the scalar tuple-assignment semantics
  (the affine-offset update reads the *old* result matrix).
- **Same accumulation order.** ``drain`` and ``cycle_s`` accumulate
  segment by segment, matching the scalar generator sums.

Ragged cycles are padded with zero-duration, zero-current segments
whose factors form the exact identity affine map, so padding composes
without perturbing a single bit; :attr:`KiBaMCohort.pad` records which
slots are padding so near-death walks can skip them.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

import numpy as np

from repro.errors import BatteryError
from repro.hw.battery.kibam import KiBaM, KiBaMParameters
from repro.units import mah_to_mas

__all__ = ["CohortCell", "KiBaMCohort"]


@dataclasses.dataclass(frozen=True)
class CohortCell:
    """One cohort row: a cell and the duty cycle it repeats."""

    params: KiBaMParameters
    cycle: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.cycle:
            raise BatteryError("cohort cell needs a non-empty duty cycle")
        for current, dt in self.cycle:
            if current < 0 or dt < 0:
                raise BatteryError(
                    "cycle needs non-negative currents and durations"
                )
        if sum(dt for _, dt in self.cycle) <= 0.0:
            raise BatteryError("duty cycle needs a positive total duration")


def _factors(
    kp_s: float, dt_s: float, memo: dict[tuple[float, float], tuple[float, float, float]]
) -> tuple[float, float, float]:
    """``(e^-x, 1-e^-x, r)`` exactly as ``KiBaM._dt_factors`` computes them."""
    key = (kp_s, dt_s)
    got = memo.get(key)
    if got is not None:
        return got
    x = kp_s * dt_s
    ex = math.exp(-x)
    if x < 1e-6:
        r = (x * x / 2.0 - x * x * x / 6.0) / kp_s
        om = x - x * x / 2.0 + x * x * x / 6.0
    else:
        r = (x - 1.0 + ex) / kp_s
        om = 1.0 - ex
    memo[key] = factors = (ex, om, r)
    return factors


class KiBaMCohort:
    """A batch of independent KiBaM cells in structure-of-arrays layout.

    All state lives in ``(n,)`` or ``(n, max_segments)`` float64
    arrays; methods take explicit row-index arrays so the stepper can
    operate on the still-alive subset without repacking.

    Attributes (all read-only by convention)
    ----------------------------------------
    y1, y2:
        Available / bound charge per row, mA*s.
    delivered_mas:
        Charge delivered so far per row, mA*s.
    latched:
        Death latch per row (mirrors ``KiBaM._dead``).
    cur, dt:
        Per-(row, segment) current (mA) and duration (s), zero-padded.
    pad:
        True where a (row, segment) slot is ragged-cycle padding.
    drain, cycle_s:
        Per-row whole-cycle charge (mA*s) and duration (s).
    """

    def __init__(self, cells: t.Sequence[CohortCell]):
        if not cells:
            raise BatteryError("cohort needs at least one cell")
        self.cells = tuple(cells)
        n = len(self.cells)
        self.n = n
        smax = max(len(cell.cycle) for cell in self.cells)
        self.max_segments = smax

        kp = np.array(
            [cell.params.k_prime_per_second for cell in self.cells]
        )
        c = np.array([cell.params.c for cell in self.cells])
        total = np.array(
            [mah_to_mas(cell.params.capacity_mah) for cell in self.cells]
        )
        self.kp = kp
        self.c = c
        self.y1 = c * total
        self.y2 = (1.0 - c) * total
        self.delivered_mas = np.zeros(n)
        self.latched = np.zeros(n, dtype=bool)

        self.cur = np.zeros((n, smax))
        self.dt = np.zeros((n, smax))
        self.pad = np.ones((n, smax), dtype=bool)
        ex = np.ones((n, smax))
        om = np.zeros((n, smax))
        r = np.zeros((n, smax))
        memo: dict[tuple[float, float], tuple[float, float, float]] = {}
        for i, cell in enumerate(self.cells):
            kps = cell.params.k_prime_per_second
            for s, (current, dt_s) in enumerate(cell.cycle):
                self.cur[i, s] = current
                self.dt[i, s] = dt_s
                self.pad[i, s] = False
                ex[i, s], om[i, s], r[i, s] = _factors(kps, dt_s, memo)
        self.ex = ex
        self.om = om
        self.r = r

        # Compose the per-row affine cycle map segment by segment,
        # mirroring KiBaM.cycle_map (padding slots compose the exact
        # identity, so ragged rows are unaffected).
        a11 = np.ones(n)
        a12 = np.zeros(n)
        a21 = np.zeros(n)
        a22 = np.ones(n)
        b1 = np.zeros(n)
        b2 = np.zeros(n)
        drain = np.zeros(n)
        cycle_s = np.zeros(n)
        for s in range(smax):
            exs, oms, rs = ex[:, s], om[:, s], r[:, s]
            cur_s, dt_s = self.cur[:, s], self.dt[:, s]
            m11 = exs + c * oms
            m12 = c * oms
            m21 = (1.0 - c) * oms
            m22 = exs + (1.0 - c) * oms
            s1 = -cur_s * (oms / kp + c * rs)
            s2 = -cur_s * (1.0 - c) * rs
            a11, a12, a21, a22, b1, b2 = (
                m11 * a11 + m12 * a21,
                m11 * a12 + m12 * a22,
                m21 * a11 + m22 * a21,
                m21 * a12 + m22 * a22,
                m11 * b1 + m12 * b2 + s1,
                m21 * b1 + m22 * b2 + s2,
            )
            drain = drain + cur_s * dt_s
            cycle_s = cycle_s + dt_s
        self.a11, self.a12, self.a21, self.a22 = a11, a12, a21, a22
        self.b1, self.b2 = b1, b2
        self.drain = drain
        self.cycle_s = cycle_s

    # -- vectorized fast paths ------------------------------------------
    def advance(self, rows: np.ndarray, n_cycles: np.ndarray) -> None:
        """``KiBaM.advance_cycles`` over ``rows``, with per-row counts.

        Vectorized binary powering of each row's affine cycle map.
        Lanes whose exponent is exhausted keep computing and discard
        the result via ``np.where`` — cheaper than repacking, and the
        select keeps their state bit-stable. The update expressions use
        the *old* matrix values exactly like the scalar tuple
        assignment, which the bit-identity tests depend on.
        """
        if rows.size == 0:
            return
        n = np.asarray(n_cycles, dtype=np.int64)
        if (n <= 0).any():
            raise BatteryError("advance needs positive cycle counts")
        if (self.y1[rows] - n * self.drain[rows] <= KiBaM.DEATH_EPS_MAS).any():
            raise BatteryError(
                "advance may cross death; leave at least one cycle's margin"
            )
        A11 = self.a11[rows].copy()
        A12 = self.a12[rows].copy()
        A21 = self.a21[rows].copy()
        A22 = self.a22[rows].copy()
        B1 = self.b1[rows].copy()
        B2 = self.b2[rows].copy()
        m = rows.size
        R11 = np.ones(m)
        R12 = np.zeros(m)
        R21 = np.zeros(m)
        R22 = np.ones(m)
        C1 = np.zeros(m)
        C2 = np.zeros(m)
        k = n.copy()
        while (k > 0).any():
            odd = (k & 1) == 1
            nR11 = R11 * A11 + R12 * A21
            nR12 = R11 * A12 + R12 * A22
            nR21 = R21 * A11 + R22 * A21
            nR22 = R21 * A12 + R22 * A22
            nC1 = R11 * B1 + R12 * B2 + C1
            nC2 = R21 * B1 + R22 * B2 + C2
            R11 = np.where(odd, nR11, R11)
            R12 = np.where(odd, nR12, R12)
            R21 = np.where(odd, nR21, R21)
            R22 = np.where(odd, nR22, R22)
            C1 = np.where(odd, nC1, C1)
            C2 = np.where(odd, nC2, C2)
            k >>= 1
            live = k > 0
            if not live.any():
                break
            sA11 = A11 * A11 + A12 * A21
            sA12 = A11 * A12 + A12 * A22
            sA21 = A21 * A11 + A22 * A21
            sA22 = A21 * A12 + A22 * A22
            sB1 = A11 * B1 + A12 * B2 + B1
            sB2 = A21 * B1 + A22 * B2 + B2
            A11 = np.where(live, sA11, A11)
            A12 = np.where(live, sA12, A12)
            A21 = np.where(live, sA21, A21)
            A22 = np.where(live, sA22, A22)
            B1 = np.where(live, sB1, B1)
            B2 = np.where(live, sB2, B2)
        y1 = self.y1[rows]
        y2 = self.y2[rows]
        self.y1[rows] = R11 * y1 + R12 * y2 + C1
        self.y2[rows] = R21 * y1 + R22 * y2 + C2
        self.delivered_mas[rows] += n * self.drain[rows]

    def step_segment(self, rows: np.ndarray, s: int) -> None:
        """One closed-form constant-current step of segment ``s``.

        The exact vector transcription of ``KiBaM._step`` plus the
        death latch from ``KiBaM._advance``; callers must have ruled
        out mid-segment death first (via the lower bound and, when it
        triggers, the exact scalar root solve — see the stepper).
        """
        if rows.size == 0:
            return
        kp = self.kp[rows]
        c = self.c[rows]
        y1 = self.y1[rows]
        y2 = self.y2[rows]
        current = self.cur[rows, s]
        ex = self.ex[rows, s]
        om = self.om[rows, s]
        r = self.r[rows, s]
        y0 = y1 + y2
        ny1 = y1 * ex + (y0 * kp * c - current) * om / kp - current * c * r
        ny2 = y2 * ex + y0 * (1.0 - c) * om - current * (1.0 - c) * r
        if (ny1 < -1e-6).any():
            raise BatteryError(
                "available charge went negative; stepper failed to "
                "truncate at time_to_death()"
            )
        latch = ny1 <= KiBaM.DEATH_EPS_MAS
        self.y1[rows] = np.where(latch, np.maximum(ny1, 0.0), ny1)
        self.y2[rows] = ny2
        self.latched[rows] |= latch
        self.delivered_mas[rows] += current * self.dt[rows, s]

    # -- scalar escape hatch --------------------------------------------
    def scalar_cell(self, i: int) -> KiBaM:
        """A scalar :class:`KiBaM` clone of row ``i``'s exact state.

        Used for the near-death root solve: ``time_to_death`` runs the
        same bracket expansion and Brent iteration the scalar reference
        path runs, from bitwise-equal state, so the death instant is
        bitwise-equal too. (State injection reaches into KiBaM's
        private fields deliberately — the cohort is the model's batch
        twin, maintained alongside it.)
        """
        cell = KiBaM(self.cells[i].params)
        cell._y1 = float(self.y1[i])
        cell._y2 = float(self.y2[i])
        cell._dead = bool(self.latched[i])
        cell._delivered_mas = float(self.delivered_mas[i])
        return cell
