"""Command-line interface.

Exposes the reproduction as a set of subcommands::

    python -m repro run 1A 2C          # run experiments, print metrics
    python -m repro suite              # the full eight-experiment suite
    python -m repro figures fig8       # regenerate a paper figure
    python -m repro partition          # partitioning analysis (Fig. 8)
    python -m repro optimize           # rank the whole design space
    python -m repro explore            # 100k-config halving -> frontier
    python -m repro sweep --batch --grid 10   # 10k-config batched sweep
    python -m repro trace 2 --frames 6 # timing diagram (Figs. 2/3/9)
    python -m repro trace 2 --export chrome -o out.json  # Perfetto trace
    python -m repro metrics 1A 2A      # telemetry metrics per experiment
    python -m repro runs list          # the persistent run registry
    python -m repro runs diff A B      # per-metric deltas between runs
    python -m repro runs gc --keep-last 100   # trim the registry
    python -m repro cache info         # result-cache size per salt
    python -m repro check 2B           # invariant monitors over a run
    python -m repro check --paper      # assert the Fig. 10 ordering
    python -m repro check --fleet      # fleet health from the exec journal
    python -m repro top                # attach to a running sweep (live)
    python -m repro bench diff         # perf gate over BENCH_substrate.json
    python -m repro report -o out.md   # everything into one document
    python -m repro calibrate          # re-run the model calibration
    python -m repro profile --frames 8 # time the real ATR blocks (Fig. 6)

All output is plain text; ``--csv``/``--json`` export structured rows.
``--fast`` swaps in quarter-capacity cells for quick demos (ratios
compress a little at reduced scale — see the battery-model ablation).

``run``, ``suite`` and ``check`` fast-forward steady-state epochs by
default (frame counts match event-exact simulation; lifetimes agree to
float noise); pass ``--exact`` to simulate every event. The library
default is the opposite: ``run_experiment`` simulates exactly unless
``mode="fast"`` is requested.

Experiment-running commands register their outcomes in the run
registry (``.repro-runs.sqlite``; override with ``--db`` or the
``REPRO_RUNS_DB`` environment variable, disable with
``--no-registry``); ``repro runs`` queries it and ``repro runs reset``
clears it.

``run``, ``suite``, ``sweep --batch`` and ``explore`` take
``--progress`` (live in-place fleet dashboard) and ``--journal PATH``
(canonical item-level execution journal, byte-identical across serial,
``--jobs N`` and cache replay); ``repro top`` attaches to the progress
plane of a sweep started elsewhere.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import typing as t

from repro.analysis.export import write_rows
from repro.analysis.figures import (
    figure6_performance_profile,
    figure7_power_profile,
    figure8_partitioning,
    figure10_results,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.tables import format_table
from repro.core.experiments import (
    PAPER_EXPERIMENTS,
    run_paper_suite,
    summarize_runs,
)
from repro.errors import ReproError
from repro.hw.battery import KiBaM
from repro.hw.battery.kibam import PAPER_BATTERY, PAPER_KIBAM_PARAMETERS

__all__ = ["main", "build_parser"]


def _fast_battery() -> KiBaM:
    params = dataclasses.replace(
        PAPER_KIBAM_PARAMETERS,
        capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah / 4,
    )
    return KiBaM(params)


def _battery_factory(fast: bool) -> t.Callable[[], KiBaM]:
    return _fast_battery if fast else PAPER_BATTERY


def _registry(args: argparse.Namespace) -> t.Any:
    """The run registry selected by CLI flags (None when disabled)."""
    if getattr(args, "no_registry", False):
        return None
    from repro.obs.store import DEFAULT_DB, RunRegistry

    path = getattr(args, "db", None) or os.environ.get("REPRO_RUNS_DB") or DEFAULT_DB
    return RunRegistry(path)


def _mode(args: argparse.Namespace) -> str:
    """Simulation mode from CLI flags: fast-forward unless --exact."""
    return "exact" if getattr(args, "exact", False) else "fast"


def _sweep_kwargs(args: argparse.Namespace) -> dict[str, t.Any]:
    """jobs/cache/registry settings for run_paper_suite from CLI flags."""
    cache: t.Any = None
    if not getattr(args, "no_cache", False):
        from repro.exec import ResultCache

        cache = ResultCache()
    return {
        "jobs": getattr(args, "jobs", 1),
        "cache": cache,
        "registry": _registry(args),
    }


def _flight(args: argparse.Namespace, label: str) -> tuple[t.Any, t.Any]:
    """Build the flight recorder + live renderer requested by CLI flags.

    Returns ``(None, None)`` unless ``--progress`` or ``--journal`` was
    given, keeping the default execution path recorder-free (and inside
    the null-sink overhead budget). The recorder persists its journal
    and progress snapshots into the run registry (unless
    ``--no-registry``), which is the plane ``repro top`` attaches to.
    """
    if not getattr(args, "progress", False) and not getattr(args, "journal", None):
        return None, None
    from repro.obs.flight import FlightRecorder
    from repro.obs.progress import ProgressRenderer

    renderer = ProgressRenderer() if getattr(args, "progress", False) else None
    flight = FlightRecorder(
        label=label, registry=_registry(args), progress=renderer
    )
    return flight, renderer


def _finish_flight(
    flight: t.Any, renderer: t.Any, args: argparse.Namespace
) -> None:
    """Flush the recorder, close the live view, export the journal."""
    if flight is None:
        return
    flight.finish()
    if renderer is not None:
        renderer.close()
    journal_path = getattr(args, "journal", None)
    if journal_path:
        path = flight.export_journal(journal_path)
        print(f"wrote journal {path} ({len(flight.records)} record(s), "
              "canonical content rows)")
    flight.close()


def _print_pipeline_diagnostics(runs: dict[str, t.Any]) -> None:
    """Substrate counters for the pipeline runs (suite output)."""
    rows = []
    for label in runs:
        p = runs[label].pipeline
        if p is None:
            continue
        rows.append(
            {
                "label": label,
                "events": p.events_processed,
                "link_tx": p.total_link_transactions,
                "link_MB": p.total_link_bytes / 1e6,
                "stalls": sum(p.stage_stalls.values()),
                "level_switches": sum(p.level_switches.values()),
            }
        )
    if rows:
        print()
        print(format_table(rows, float_fmt=".1f", title="pipeline diagnostics"))


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    labels = args.labels or ["1", "1A", "2", "2C"]
    unknown = [lb for lb in labels if lb not in PAPER_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment labels: {unknown}", file=sys.stderr)
        print(f"available: {', '.join(PAPER_EXPERIMENTS)}", file=sys.stderr)
        return 2
    sweep = _sweep_kwargs(args)
    flight, renderer = _flight(args, "suite")
    runs = run_paper_suite(
        labels,
        battery_factory=_battery_factory(args.fast),
        mode=_mode(args),
        flight=flight,
        **sweep,
    )
    _finish_flight(flight, renderer, args)
    rows = []
    for m in summarize_runs(runs):
        paper = runs[m.label].spec.paper
        rows.append(
            {
                **m.as_row(),
                "paper_T_hours": paper.t_hours if paper else None,
            }
        )
    print(format_table(rows, title="experiment results"))
    _print_pipeline_diagnostics(runs)
    cache = sweep["cache"]
    if cache is not None and (cache.hits or cache.misses):
        print(f"\ncache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"under {cache.root} (disable with --no-cache)")
    if args.fast:
        print("\n(quarter-capacity cells: lifetimes scale down and "
              "normalized ratios compress)")
    if args.export:
        path = write_rows(rows, args.export)
        print(f"\nwrote {path}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    args.labels = list(PAPER_EXPERIMENTS)
    return _cmd_run(args)


def _cmd_figures(args: argparse.Namespace) -> int:
    generators = {
        "fig6": lambda: figure6_performance_profile(),
        "fig7": lambda: figure7_power_profile(),
        "fig8": lambda: figure8_partitioning(),
    }
    which = args.figure
    if which in generators:
        fig = generators[which]()
        print(fig.text)
        if args.export:
            print(f"\nwrote {write_rows(list(fig.rows), args.export)}")
        return 0
    if which == "fig10":
        runs = run_paper_suite(
            battery_factory=_battery_factory(args.fast), **_sweep_kwargs(args)
        )
        fig = figure10_results(runs)
        print(fig.text)
        if args.export:
            print(f"\nwrote {write_rows(list(fig.rows), args.export)}")
        return 0
    print(f"unknown figure {which!r}; use fig6, fig7, fig8 or fig10", file=sys.stderr)
    return 2


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.apps.atr.profile import PAPER_PROFILE
    from repro.core.partitioning import analyze_partitions, select_best
    from repro.errors import InfeasiblePartitionError
    from repro.hw.dvs import SA1100_TABLE
    from repro.hw.link import TransactionTiming

    timing = TransactionTiming(
        bandwidth_bps=args.bandwidth_kbps * 1000.0, startup_s=0.09
    )
    analyses = analyze_partitions(
        PAPER_PROFILE, args.stages, timing, args.deadline, SA1100_TABLE
    )
    rows = [a.as_row() for a in analyses]
    print(
        format_table(
            rows,
            float_fmt=".1f",
            title=(
                f"{args.stages}-way partitions, D = {args.deadline} s, "
                f"{args.bandwidth_kbps:g} Kbps"
            ),
        )
    )
    try:
        best = select_best(analyses)
        print(f"\nselected (energy criterion): {best.partition.describe()}")
    except InfeasiblePartitionError:
        print("\nno feasible scheme at these parameters")
    if args.export:
        print(f"\nwrote {write_rows(rows, args.export)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.experiments import run_experiment

    label = args.label
    if label not in PAPER_EXPERIMENTS:
        print(f"unknown experiment {label!r}", file=sys.stderr)
        return 2
    spec = PAPER_EXPERIMENTS[label]
    if not spec.io_enabled:
        print(f"experiment {label} has no pipeline to trace", file=sys.stderr)
        return 2
    if label == "2C":
        # A paper-period rotation would need >100 frames to show; use a
        # short period so the transition is visible in a small trace.
        spec = dataclasses.replace(spec, rotation_period=max(2, args.frames // 3))
    run = run_experiment(
        spec,
        trace=True,
        telemetry=True,
        max_frames=args.frames,
        monitor_interval_s=spec.deadline_s if args.export else None,
    )
    trace = run.trace
    assert trace is not None and run.obs is not None
    if not args.export:
        print(
            render_gantt(
                trace,
                end_s=args.frames * spec.deadline_s,
                width=args.width,
                deadline_s=spec.deadline_s,
            )
        )
        return 0

    from repro.obs import export as obs_export

    monitors = run.pipeline.monitors if run.pipeline is not None else {}
    out = args.output or f"trace_{label}.{_EXPORT_SUFFIX[args.export]}"
    if args.export == "chrome":
        path = obs_export.write_chrome_trace(
            out,
            trace=trace,
            events=run.obs.events,
            spans=run.obs.spans,
            monitors=monitors,
            label=f"repro {label}",
        )
    elif args.export == "jsonl":
        path = obs_export.write_jsonl(
            out,
            trace=trace,
            monitors=monitors,
            events=run.obs.events,
            spans=run.obs.spans,
            metrics=run.obs.metrics,
            energy=run.obs.energy,
        )
    else:  # csv — explicit columns so a zero-segment run still gets a header
        path = write_rows(
            obs_export.segments_to_rows(trace),
            out,
            columns=obs_export.SEGMENT_COLUMNS,
        )
    n_events = len(run.obs.events.records)
    print(f"wrote {path} ({len(trace.all_segments())} segments, "
          f"{n_events} events)")
    if run.obs.events.dropped:
        print(f"warning: event log truncated — {run.obs.events.dropped} "
              "events dropped past the storage cap (raise max_events "
              "or bound --frames)", file=sys.stderr)
    return 0


_EXPORT_SUFFIX = {"chrome": "json", "jsonl": "jsonl", "csv": "csv"}


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry
    from repro.obs import export as obs_export

    labels = args.labels or ["1", "1A", "2", "2A"]
    unknown = [lb for lb in labels if lb not in PAPER_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment labels: {unknown}", file=sys.stderr)
        print(f"available: {', '.join(PAPER_EXPERIMENTS)}", file=sys.stderr)
        return 2
    sweep = _sweep_kwargs(args)
    runs = run_paper_suite(
        labels,
        battery_factory=_battery_factory(args.fast),
        telemetry=True,
        max_frames=args.frames,
        **sweep,
    )
    for label in labels:
        obs = runs[label].obs
        assert obs is not None
        rows = [{"label": label, **row} for row in obs.metrics.as_rows()]
        print(format_table(rows, title=f"experiment {label} metrics"))
        if obs.events.dropped:
            print(f"(event log truncated: {obs.events.dropped} events "
                  "dropped past the storage cap — event-derived numbers "
                  "below the cap are complete, counts are not)")
        print()
    if len(labels) > 1:
        # Merge the per-run registries in label order: counter and
        # histogram merges are commutative sums over fixed buckets, so
        # the merged registry is deterministic regardless of --jobs or
        # cache hits.
        merged = MetricsRegistry()
        for label in labels:
            merged.merge(runs[label].obs.metrics)  # type: ignore[union-attr]
        print(format_table(merged.as_rows(), title="all experiments (merged)"))
        print()
    if args.export:
        all_rows = []
        for label in labels:
            obs = runs[label].obs
            assert obs is not None
            all_rows.extend(
                {"label": label, **row}
                for row in obs_export.metrics_to_rows(obs.metrics)
            )
        # Explicit columns: an all-empty registry still exports a header.
        path = write_rows(
            all_rows, args.export, columns=["label", *obs_export.METRIC_COLUMNS]
        )
        print(f"wrote {path}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.explore import default_space, explore
    from repro.explore.halving import explore_fingerprint

    space = default_space(
        bandwidth_points=args.bandwidth_points,
        capacity_points=args.capacity_points,
        io_points=args.io_points,
        chemistries=tuple(args.chemistries),
        deadlines=tuple(args.deadlines),
    )
    cache: t.Any = None
    if not args.no_cache:
        from repro.exec import ResultCache

        cache = ResultCache()
    registry = None if args.no_registry else _registry(args)
    resume_cursor = None
    if args.resume is not None:
        if registry is None:
            print("--resume needs the registry (drop --no-registry)")
            return 2
        if args.resume == "latest":
            record = registry.latest_explore_cursor(
                fingerprint=explore_fingerprint(
                    space, tuple(args.keep), args.limit, guided=args.guided
                )
            )
        else:
            record = registry.latest_explore_cursor(
                session_id_prefix=args.resume
            )
        if record is None or record.cursor is None:
            print(f"no resumable explore session matches {args.resume!r}")
            return 2
        resume_cursor = record.cursor
        print(f"resuming {record.session_id[:12]} "
              f"(snapshot after rung {record.rung!r})")
    n = space.size() if args.limit is None else min(space.size(), args.limit)
    mode = "guided" if args.guided else "exhaustive"
    print(f"exploring {n:,} of {space.size():,} configs, {mode} "
          f"(keep {args.keep[0]}/{args.keep[1]}/{args.keep[2]}, "
          f"jobs {args.jobs})")

    def progress(report: t.Any) -> None:
        print(f"  rung {report.name:<8} {report.entered:>7,} in "
              f"-> {report.promoted:>5,} promoted "
              f"({report.disqualified:,} disqualified, "
              f"{report.executed:,} executed, "
              f"{report.cache_hits:,} cached) "
              f"[{report.wall_s:.2f} s]")

    flight, renderer = _flight(args, "explore")
    started = time.perf_counter()
    result = explore(
        space,
        keep=tuple(args.keep),
        jobs=args.jobs,
        cache=cache,
        registry=registry,
        chunk_size=args.chunk,
        limit=args.limit,
        progress=progress,
        flight=flight,
        guided=args.guided,
        probe=args.probe,
        resume=resume_cursor,
    )
    wall = time.perf_counter() - started
    _finish_flight(flight, renderer, args)
    if result.disqualified:
        print()
        print(format_table(
            [{"constraint": k, "configs": v}
             for k, v in sorted(result.disqualified.items())],
            title="disqualified by constraint",
        ))
    print()
    if result.frontier:
        rows = [
            {
                "config": m.config.describe(),
                "T_h": m.lifetime_hours,
                "Tnorm_h": m.tnorm_hours,
                "frames": m.frames,
                "misses": m.deadline_misses,
                "run": m.run_id[:12],
            }
            for m in result.frontier
        ]
        print(format_table(rows, float_fmt=".3f",
                           title=f"Pareto frontier ({len(rows)} point(s), "
                                 "exact-confirmed)"))
    else:
        print("empty frontier: every config was disqualified")
    print(f"\n{result.n_configs:,} configs in {wall:.2f} s "
          f"({result.configs_per_sec:,.0f} configs/s); "
          f"{result.pruned_before_sim_fraction:.2%} pruned before any "
          "full simulation")
    if result.sampler is not None:
        s = result.sampler
        print(f"guided sampler: probed {s['probed']:,} of "
              f"{s['universe']:,} configs in {s['rounds']} round(s), "
              f"{s['proposals']:,} proposals, stopped: {s['stop_reason']}")
    if args.export:
        payload = result.frontier_payload()
        with open(args.export, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"wrote {args.export}")
    return 0 if result.frontier else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache

    cache = ResultCache(args.root)
    if args.cache_command == "info":
        info = cache.info()
        print(f"cache    {info['root']}")
        print(f"salt     {info['current_salt']}")
        print(f"entries  {info['entries']:,} ({info['bytes'] / 1e6:.2f} MB)")
        if info["stale_entries"]:
            print(f"stale    {info['stale_entries']:,} "
                  "(written under another salt; prune with --stale)")
        if info["salts"]:
            print()
            rows = [
                {
                    "salt": salt,
                    "entries": bucket["entries"],
                    "MB": bucket["bytes"] / 1e6,
                    "status": "current" if salt == cache.salt else "stale",
                }
                for salt, bucket in info["salts"].items()
            ]
            print(format_table(rows, float_fmt=".2f", title="per-salt"))
        return 0

    if args.cache_command == "prune":
        if args.all:
            removed = cache.clear()
        elif (args.max_age_days is None and args.max_bytes is None
              and not args.stale):
            print("nothing to do: pass --max-age-days, --max-bytes, "
                  "--stale, or --all", file=sys.stderr)
            return 2
        else:
            removed = cache.prune(
                max_age_days=args.max_age_days,
                max_bytes=args.max_bytes,
                stale_only=args.stale,
            )
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0

    print(f"unknown cache subcommand {args.cache_command!r}", file=sys.stderr)
    return 2


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.store import diff_records

    registry = _registry(args)
    if registry is None:
        print("registry disabled (--no-registry)", file=sys.stderr)
        return 2

    if args.runs_command == "list":
        import datetime as dt
        import json

        records = registry.list_runs(
            label=args.label, limit=args.limit, offset=args.offset
        )

        def _created(record: t.Any) -> str:
            if record.created_at is None:
                return "--"
            stamp = dt.datetime.fromtimestamp(
                record.created_at, tz=dt.timezone.utc
            )
            return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")

        if getattr(args, "json", False):
            rows = [
                {**r.as_row(), "run_id": r.run_id, "created": _created(r)}
                for r in records
            ]
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        if not records:
            print(f"no registered runs in {registry.path}")
            return 0
        title = f"run registry ({registry.path})"
        if args.offset:
            title += f" — runs {args.offset + 1}..{args.offset + len(records)}"
        print(format_table(
            [{**r.as_row(), "created": _created(r)} for r in records],
            title=title,
        ))
        return 0

    if args.runs_command == "show":
        record = registry.get(args.run_id)
        print(f"run      {record.run_id}")
        print(f"label    {record.label}")
        print(f"config   {record.fingerprint}")
        print(f"version  {record.version}"
              + (f"  git {record.git_sha[:12]}" if record.git_sha else ""))
        print(f"events   {record.n_events}"
              + (f"  digest {record.event_digest[:12]}"
                 if record.event_digest else ""))
        print()
        rows = [
            {"field": name, "value": value}
            for name, value in sorted(record.summary.items())
            if not isinstance(value, dict)
        ]
        print(format_table(rows, title="summary"))
        counters = record.metrics.get("counters", [])
        if counters:
            print()
            print(format_table(
                [{"counter": c["name"], "value": c["value"]} for c in counters],
                title="metrics (counters)",
            ))
        return 0

    if args.runs_command == "diff":
        a = registry.get(args.run_a)
        b = registry.get(args.run_b)
        rows = diff_records(a, b, threshold_pct=args.threshold)
        if not args.all:
            rows = [r for r in rows if r["delta"]]
        title = (f"{a.label} {a.run_id[:12]} -> {b.label} {b.run_id[:12]} "
                 f"(threshold {args.threshold:g}%)")
        if not rows:
            print(f"no metric deltas: {title}")
            return 0
        for row in rows:
            row["flag"] = "REGRESSION" if row.pop("regression") else ""
        print(format_table(rows, title=title))
        regressions = sum(1 for r in rows if r["flag"])
        if regressions:
            print(f"\n{regressions} metric(s) moved more than "
                  f"{args.threshold:g}%")
            return 1
        return 0

    if args.runs_command == "gc":
        removed = registry.gc(
            keep_last=args.keep_last,
            older_than_days=args.older_than_days,
            label=args.label,
        )
        print(f"removed {removed} row(s) from {registry.path}")
        return 0

    if args.runs_command == "reset":
        removed = registry.reset()
        print(f"removed {removed} run(s) from {registry.path}")
        return 0

    print(f"unknown runs subcommand {args.runs_command!r}", file=sys.stderr)
    return 2


def _print_verdicts(verdicts: t.Sequence[t.Any], title: str) -> int:
    rows = []
    for v in verdicts:
        where = ""
        if v.violating_event is not None:
            e = v.violating_event
            where = f"{e.kind}@{e.ts:.1f}s"
        if v.ok:
            verdict = "ok"
        elif getattr(v, "inconclusive", False):
            verdict = "inconclusive"
        else:
            verdict = "FAIL"
        rows.append(
            {
                "check": v.monitor,
                "verdict": verdict,
                "detail": v.detail,
                "evidence": where,
            }
        )
    print(format_table(rows, title=title))
    return sum(1 for v in verdicts if not v.ok)


def _explain_deadline_misses(run: t.Any, limit: int = 3) -> None:
    """Print critical-path postmortems for a run's late frames."""
    from repro.obs.causal import build_frame_trace, late_frame_ids, render_frame_tree

    late = late_frame_ids(run.obs.events)
    if not late:
        return
    shown = late[:limit]
    print(f"late frames: {len(late)} "
          f"(showing {len(shown)}: {', '.join(map(str, shown))})")
    for frame_id in shown:
        try:
            print(render_frame_tree(build_frame_trace(run.obs.events, frame_id)))
        except ReproError as exc:
            print(f"frame {frame_id}: {exc}")
        print()


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core.experiments import experiment_fingerprint, run_experiment
    from repro.obs.checks import (
        check_paper_ordering,
        paper_monitors,
        replay,
        tnorms_from_records,
    )
    from repro.obs.store import diff_records

    registry = _registry(args)

    if getattr(args, "fleet", False):
        # Fleet health from the persisted execution journal: failures,
        # retry pressure, and straggler spread become check verdicts.
        from repro.obs.flight import journal_verdicts

        if registry is None:
            print("--fleet needs the registry (drop --no-registry)",
                  file=sys.stderr)
            return 2
        rows = registry.list_journal()
        if not rows:
            print(f"no execution journal in {registry.path} "
                  "(run a sweep with --progress or --journal first)")
            return 2
        verdicts = journal_verdicts(rows)
        failures = _print_verdicts(verdicts, "fleet health (exec journal)")
        if failures:
            print(f"\n{failures} fleet check(s) FAILED")
            return 1
        print(f"\nfleet healthy over {len(rows)} journaled item(s)")
        return 0

    factory = _battery_factory(args.fast)
    run_kwargs: dict[str, t.Any] = dict(
        battery_factory=factory,
        telemetry=True,
        monitor_interval_s=60.0,
        mode=_mode(args),
    )

    if args.paper:
        # Assert the Fig. 10 ordering over registered lifetimes for
        # *this* configuration (fast and full-capacity runs register
        # under different fingerprints and never mix). Missing labels
        # are run and registered on the fly.
        from repro.obs.checks import PAPER_ORDERING

        sweep = _sweep_kwargs(args)
        labels = list(PAPER_ORDERING)
        records = {}
        missing = []
        for label in labels:
            fp = experiment_fingerprint(PAPER_EXPERIMENTS[label], run_kwargs)
            record = (registry.latest(label, fingerprint=fp)
                      if registry is not None else None)
            if record is None:
                missing.append(label)
            else:
                records[label] = record
        if missing:
            print(f"running unregistered experiments: {', '.join(missing)}")
            runs = run_paper_suite(missing, **sweep, **run_kwargs)
            from repro.obs.store import build_run_record

            for label in missing:
                fp = experiment_fingerprint(PAPER_EXPERIMENTS[label], run_kwargs)
                records[label] = build_run_record(runs[label], fp)
        verdicts = check_paper_ordering(tnorms_from_records(records.values()))
        failures = _print_verdicts(verdicts, "Fig. 10 normalized-lifetime ordering")
        if failures:
            print(f"\n{failures} ordering check(s) FAILED")
            return 1
        print("\nFig. 10 ordering verified: "
              + " > ".join(PAPER_ORDERING))
        return 0

    if args.baseline:
        if registry is None:
            print("--baseline needs the registry (drop --no-registry)",
                  file=sys.stderr)
            return 2
        baseline = registry.get(args.baseline)
        spec = PAPER_EXPERIMENTS[baseline.label]
        run = run_experiment(spec, registry=registry, **run_kwargs)
        from repro.obs.store import build_run_record

        fp = experiment_fingerprint(spec, run_kwargs)
        fresh = build_run_record(run, fp)
        rows = [r for r in diff_records(baseline, fresh,
                                        threshold_pct=args.threshold)
                if r["delta"]]
        for row in rows:
            row["flag"] = "REGRESSION" if row.pop("regression") else ""
        title = (f"{baseline.label}: baseline {baseline.run_id[:12]} vs fresh "
                 f"run (threshold {args.threshold:g}%)")
        if rows:
            print(format_table(rows, title=title))
        regressions = sum(1 for r in rows if r["flag"])
        if regressions:
            print(f"\n{regressions} metric(s) moved more than "
                  f"{args.threshold:g}% against the baseline")
            return 1
        print(f"\nno regressions against baseline {baseline.run_id[:12]}")
        return 0

    labels = args.labels or ["2", "2A", "2B", "2C"]
    unknown = [lb for lb in labels if lb not in PAPER_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment labels: {unknown}", file=sys.stderr)
        return 2
    failures = 0
    for label in labels:
        spec = PAPER_EXPERIMENTS[label]
        run = run_experiment(spec, registry=registry, **run_kwargs)
        assert run.obs is not None
        verdicts = replay(run.obs.events, paper_monitors(spec))
        failures += _print_verdicts(
            verdicts, f"experiment {label} invariants"
        )
        if any(
            v.monitor == "frame-deadline" and not v.ok and not v.inconclusive
            for v in verdicts
        ):
            # Every deadline miss gets a machine-derived explanation:
            # the frame's critical path, category by category.
            _explain_deadline_misses(run)
        print()
    if failures:
        print(f"{failures} invariant check(s) FAILED")
        return 1
    print("all invariants held")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import sensitivity_sweep
    from repro.batch.sweep import BatchSweepSpec, batch_sweep, verify_sample

    if not args.batch:
        # Classic scalar path: one-at-a-time around the calibrated point.
        outcomes = sensitivity_sweep(jobs=args.jobs)
        rows = [
            {
                "label": o.label,
                "T1_h": o.baseline_h,
                "Tnorm_part_h": o.partitioned_norm_h,
                "Tnorm_rot_h": o.rotating_norm_h,
                "Rnorm_part": o.partitioning_rnorm,
                "Rnorm_rot": o.rotation_rnorm,
                "ordering": "ok" if o.ordering_holds else "VIOLATED",
            }
            for o in outcomes
        ]
        print(format_table(rows, float_fmt=".3f",
                           title="sensitivity sweep (scalar, one-at-a-time)"))
        if args.export:
            print(f"\nwrote {write_rows(rows, args.export)}")
        return 0

    spec = BatchSweepSpec(grid=args.grid, rel_span=args.span, mode=args.mode)
    cache: t.Any = None
    if not args.no_cache:
        from repro.exec import ResultCache

        cache = ResultCache()
    flight, renderer = _flight(args, "sweep")
    result = batch_sweep(
        spec, jobs=args.jobs, cache=cache, chunk_size=args.chunk,
        flight=flight,
    )
    _finish_flight(flight, renderer, args)
    stats = result.stats
    summary = result.summary()
    print(f"batched sweep: {stats.configs} configs ({stats.cells} cells) "
          f"in {stats.wall_s:.2f} s — {stats.configs_per_sec:,.0f} configs/s")
    print(f"  chunks {stats.chunks} (executed {stats.executed}, "
          f"cache hits {stats.cache_hits}), epochs {stats.epochs}, "
          f"root solves {stats.root_solves}")
    print(f"  ordering holds for {summary['ordering_holds']}/{stats.configs} "
          f"configs; Rnorm(partition) in "
          f"[{summary['partitioning_rnorm_min']:.3f}, "
          f"{summary['partitioning_rnorm_max']:.3f}], Rnorm(rotation) in "
          f"[{summary['rotation_rnorm_min']:.3f}, "
          f"{summary['rotation_rnorm_max']:.3f}]")
    if len(result.outcomes) <= 32:
        rows = [
            {
                "label": o.label,
                "T1_h": o.baseline_h,
                "Tnorm_part_h": o.partitioned_norm_h,
                "Tnorm_rot_h": o.rotating_norm_h,
                "Rnorm_rot": o.rotation_rnorm,
            }
            for o in result.outcomes
        ]
        print()
        print(format_table(rows, float_fmt=".3f", title="outcomes"))
    if args.export:
        rows = [
            {
                "label": o.label,
                "T1_h": o.baseline_h,
                "Tnorm_part_h": o.partitioned_norm_h,
                "Tnorm_rot_h": o.rotating_norm_h,
                "Rnorm_part": o.partitioning_rnorm,
                "Rnorm_rot": o.rotation_rnorm,
                "frames": sum(result.cycles[i]),
            }
            for i, o in enumerate(result.outcomes)
        ]
        print(f"\nwrote {write_rows(rows, args.export)}")
    if args.verify:
        report = verify_sample(result, sample=args.verify)
        status = "ok" if report.ok else "MISMATCH"
        print(f"\nverify: {report.checked} config(s) re-run on the scalar "
              f"path — frames identical: {report.frames_identical}, max "
              f"lifetime rel err: {report.max_rel_err:.3g} [{status}]")
        if not report.ok:
            for line in report.mismatches:
                print(f"  {line}")
            return 1
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.apps.atr.profile import PAPER_PROFILE
    from repro.core.optimizer import optimize_configuration
    from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS

    battery = PAPER_KIBAM_PARAMETERS
    if args.fast:
        battery = dataclasses.replace(
            battery, capacity_mah=battery.capacity_mah / 4
        )
    ranked = optimize_configuration(
        PAPER_PROFILE,
        max_stages=args.stages,
        deadline_s=args.deadline,
        battery=battery,
        objective=args.objective,
    )
    rows = [
        {
            "rank": i + 1,
            "configuration": c.description,
            "N": c.n_stages,
            "T_hours": c.lifetime_hours,
            "Tnorm_hours": c.normalized_hours,
        }
        for i, c in enumerate(ranked[: args.top])
    ]
    print(
        format_table(
            rows,
            title=(
                f"design space <= {args.stages} stages, D = {args.deadline} s, "
                f"objective = {args.objective}"
            ),
        )
    )
    if args.export:
        print(f"\nwrote {write_rows(rows, args.export)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.experiments import run_paper_suite

    factory = _battery_factory(args.fast)
    labels = args.labels or None
    if str(args.output).endswith((".html", ".htm")):
        from repro.obs.report import write_html_report

        journal = None
        if getattr(args, "fleet", False):
            registry = _registry(args)
            if registry is None:
                print("--fleet needs the registry (drop --no-registry)",
                      file=sys.stderr)
                return 2
            journal = registry.list_journal()
        runs = run_paper_suite(
            labels,
            battery_factory=factory,
            telemetry=True,
            monitor_interval_s=300.0,
            **_sweep_kwargs(args),
        )
        path = write_html_report(args.output, runs, journal=journal)
        extra = (f", fleet timeline over {len(journal)} item(s)"
                 if journal else "")
        print(f"wrote {path} (self-contained HTML, {len(runs)} "
              f"experiments{extra})")
        return 0
    if labels:
        print("experiment labels are only honored for .html reports",
              file=sys.stderr)
        return 2
    from repro.analysis.report import write_report

    runs = run_paper_suite(
        battery_factory=factory, monitor_interval_s=300.0
    )
    path = write_report(args.output, runs=runs, battery_factory=factory)
    print(f"wrote {path}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.core.experiments import run_experiment
    from repro.obs import causal
    from repro.obs import export as obs_export
    from repro.obs.energy import verify_conservation

    label = args.label
    if label not in PAPER_EXPERIMENTS:
        print(f"unknown experiment {label!r}", file=sys.stderr)
        print(f"available: {', '.join(PAPER_EXPERIMENTS)}", file=sys.stderr)
        return 2
    spec = PAPER_EXPERIMENTS[label]

    if args.explain_command == "frame":
        if not spec.io_enabled:
            print(f"experiment {label} has no pipeline (no frames to trace)",
                  file=sys.stderr)
            return 2
        # Bound the run just past the requested frame so the exact
        # event stream stays small; coalesced frames are untraceable.
        frames = args.frames or max(args.frame_id + 2, 8)
        run = run_experiment(
            spec,
            battery_factory=_battery_factory(args.fast),
            telemetry=True,
            max_frames=frames,
            mode="exact",
        )
        assert run.obs is not None
        trace = causal.build_frame_trace(run.obs.events, args.frame_id)
        if args.json:
            print(json.dumps(trace.as_dict(), sort_keys=True, indent=2))
        else:
            print(causal.render_frame_tree(trace))
        if args.flamegraph:
            traces = [
                causal.build_frame_trace(run.obs.events, frame_id)
                for frame_id in causal.frame_ids(run.obs.events)
            ]
            path = obs_export.write_collapsed_stacks(
                args.flamegraph, causal.collapsed_stacks(traces)
            )
            print(f"wrote {path} ({len(traces)} frame stacks, "
                  "flamegraph.pl/speedscope collapsed format)")
        return 0

    if args.explain_command == "energy":
        run = run_experiment(
            spec,
            battery_factory=_battery_factory(args.fast),
            telemetry=True,
            monitor_interval_s=300.0,
            mode=_mode(args),
        )
        assert run.obs is not None
        ledger = run.obs.energy
        rows = [
            row for row in obs_export.ledger_to_rows(ledger)
            if args.node is None or row["node"] == args.node
        ]
        if not rows:
            where = f" for node {args.node!r}" if args.node else ""
            print(f"no attributed energy{where}", file=sys.stderr)
            return 1
        print(format_table(
            rows, float_fmt=".4f",
            title=f"experiment {label} energy attribution",
        ))
        delivered = (
            run.pipeline.delivered_mah if run.pipeline is not None else {}
        )
        if delivered:
            checks = verify_conservation(ledger, delivered)
            print()
            print(format_table(
                [
                    {
                        "node": c.node,
                        "ledger_mAh": c.ledger_mah,
                        "delivered_mAh": c.delivered_mah,
                        "rel_error": f"{c.rel_error:.2e}",
                        "conserved": "ok" if c.ok else "FAIL",
                    }
                    for c in checks
                    if args.node is None or c.node == args.node
                ],
                float_fmt=".6f",
                title="conservation (ledger vs battery delivered)",
            ))
            if any(not c.ok for c in checks):
                return 1
        if args.export:
            path = write_rows(rows, args.export,
                              columns=obs_export.LEDGER_COLUMNS)
            print(f"\nwrote {path}")
        return 0

    print(f"unknown explain subcommand {args.explain_command!r}",
          file=sys.stderr)
    return 2


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.apps.atr.profile import PAPER_PROFILE, measure_profile

    profile = measure_profile(
        repeats=args.repeats, frames=args.frames, seed=args.seed
    )
    paper = {b.name: b for b in PAPER_PROFILE.blocks}
    rows = [
        {
            "block": b.name,
            "itsy_s": round(b.seconds_at_max, 4),
            "share_pct": round(
                100.0 * b.seconds_at_max / profile.total_seconds_at_max, 1
            ),
            "paper_s": round(paper[b.name].seconds_at_max, 4)
            if b.name in paper
            else None,
            "output_bytes": b.output_bytes,
        }
        for b in profile.blocks
    ]
    print(
        format_table(
            rows,
            title=(
                f"measured ATR profile, {args.frames} frame(s) x "
                f"{args.repeats} repeat(s), renormalized to "
                f"{profile.total_seconds_at_max:.2f} s Itsy total"
            ),
        )
    )
    print(f"\ninput frame: {profile.input_bytes} bytes")
    print(
        "(relative weights differ from Fig. 6: numpy's FFT is far better\n"
        " optimized relative to detection than the Itsy's code was)"
    )
    if args.export:
        print(f"\nwrote {write_rows(rows, args.export)}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import calibrate_battery

    x0 = None
    if args.from_scratch:
        x0 = (1000.0, 0.3, 1.0, 0.1, 45.0)
    kwargs: dict[str, t.Any] = {}
    if x0 is not None:
        kwargs["x0"] = x0
    result = calibrate_battery(**kwargs)
    b = result.battery
    print("fitted parameters:")
    print(f"  capacity     = {b.capacity_mah:.2f} mAh")
    print(f"  c            = {b.c:.5f}")
    print(f"  k'           = {b.k_prime_per_hour:.5f} /h")
    print(f"  io_activity  = {result.power_model.io_activity:.5f}")
    print("\nanchor residuals (hours):")
    for anchor, residual in zip(result.anchors, result.residuals_hours):
        print(f"  {anchor.label:3s} target {anchor.target_hours:6.2f}  "
              f"error {residual:+.3f}")
    print(f"\nworst |error| = {result.max_abs_residual_hours:.3f} h")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Attach to a running (or finished) sweep's progress plane."""
    import time

    from repro.obs.progress import render_snapshot

    registry = _registry(args)
    if registry is None:
        print("repro top needs the registry (drop --no-registry)",
              file=sys.stderr)
        return 2

    def fetch() -> tuple[dict[str, t.Any], float] | None:
        return registry.latest_progress(getattr(args, "label", None))

    def render(snapshot: dict[str, t.Any], updated_at: float) -> str:
        age = max(0.0, time.time() - updated_at)
        return (render_snapshot(snapshot)
                + f"\n(updated {age:.1f}s ago; plane {registry.path})")

    found = fetch()
    if found is None:
        target = (f"label {args.label!r}" if getattr(args, "label", None)
                  else "any sweep")
        print(f"no progress snapshots for {target} in {registry.path} "
              "(start a sweep with --progress or --journal)")
        return 1
    if args.once:
        print(render(*found))
        return 0

    # Follow mode: redraw in place while the sweep is live. A static
    # plain-text fallback keeps piped output readable.
    tty = sys.stdout.isatty()
    last_lines = 0
    try:
        while True:
            found = fetch() or found
            block = render(*found)
            if tty:
                if last_lines:
                    sys.stdout.write(f"\x1b[{last_lines}A")
                lines = block.split("\n")
                for line in lines:
                    sys.stdout.write(f"\x1b[2K{line}\n")
                last_lines = len(lines)
                sys.stdout.flush()
            else:
                print(block)
            if found[0].get("finished"):
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Perf-regression gate over the benchmark document."""
    import json

    from repro.obs.benchdiff import (
        baseline_from_history,
        bench_diff,
        load_bench,
        render_diff,
    )

    if args.bench_command != "diff":
        print(f"unknown bench subcommand {args.bench_command!r}",
              file=sys.stderr)
        return 2
    try:
        current = load_bench(args.bench)
        baseline = load_bench(args.baseline) if args.baseline else None
    except OSError as exc:
        print(f"cannot read bench document: {exc}", file=sys.stderr)
        return 2
    if args.baseline:
        origin = args.baseline
    else:
        baseline = baseline_from_history(current)
        origin = "embedded history[-1]"
        if baseline is None:
            print(f"{args.bench} has no embedded history to diff against "
                  "(pass --baseline)", file=sys.stderr)
            return 2
    rows = bench_diff(current, baseline, threshold_pct=args.threshold)
    regressions = sum(1 for r in rows if r["regression"])
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(f"bench diff: {args.bench} vs {origin} "
              f"(threshold {args.threshold:g}%)")
        print(render_diff(rows, only_directional=not args.all))
    return 1 if regressions else 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The CLI's argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Liu & Chou, 'Distributed Embedded Systems for "
            "Low Power: A Case Study' (IPPS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="quarter-capacity batteries (quick demo)")
        p.add_argument("--export", metavar="PATH",
                       help="write rows to a .csv or .json file")

    def add_registry(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", metavar="PATH",
                       help="run-registry database (default "
                            "$REPRO_RUNS_DB or .repro-runs.sqlite)")

    def add_mode(p: argparse.ArgumentParser) -> None:
        p.add_argument("--exact", action="store_true",
                       help="simulate every event (default: fast-forward "
                            "steady-state epochs analytically; frame "
                            "counts match exact runs, lifetimes agree "
                            "to float noise)")

    def add_sweep(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan experiments over N worker processes "
                            "(bit-identical to serial; default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute instead of reading .repro-cache")
        p.add_argument("--no-registry", action="store_true",
                       help="do not record runs in the run registry")
        add_registry(p)

    def add_flight(p: argparse.ArgumentParser) -> None:
        p.add_argument("--progress", action="store_true",
                       help="live in-place progress dashboard (per-rung "
                            "bars, worker lanes, cache hits, ETA; plain "
                            "lines when stderr is not a TTY)")
        p.add_argument("--journal", metavar="PATH",
                       help="export the item-level execution journal as "
                            "canonical JSONL (byte-identical across "
                            "serial / --jobs N / cache replay)")

    p_run = sub.add_parser("run", help="run paper experiments by label")
    p_run.add_argument("labels", nargs="*", metavar="LABEL",
                       help=f"any of: {', '.join(PAPER_EXPERIMENTS)}")
    add_common(p_run)
    add_sweep(p_run)
    add_mode(p_run)
    add_flight(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_suite = sub.add_parser("suite", help="run all eight experiments")
    add_common(p_suite)
    add_sweep(p_suite)
    add_mode(p_suite)
    add_flight(p_suite)
    p_suite.set_defaults(func=_cmd_suite)

    p_fig = sub.add_parser("figures", help="regenerate a paper figure")
    p_fig.add_argument("figure", choices=["fig6", "fig7", "fig8", "fig10"])
    add_common(p_fig)
    add_sweep(p_fig)
    p_fig.set_defaults(func=_cmd_figures)

    p_part = sub.add_parser("partition", help="partitioning analysis (Fig. 8)")
    p_part.add_argument("--deadline", type=float, default=2.3,
                        help="frame delay D in seconds (default 2.3)")
    p_part.add_argument("--stages", type=int, default=2,
                        help="pipeline depth (default 2)")
    p_part.add_argument("--bandwidth-kbps", type=float, default=80.0,
                        help="link goodput in Kbps (default 80)")
    add_common(p_part)
    p_part.set_defaults(func=_cmd_partition)

    p_trace = sub.add_parser(
        "trace", help="render a timing diagram or export a run's telemetry"
    )
    p_trace.add_argument("label", help="experiment label (e.g. 1, 2, 2C)")
    p_trace.add_argument("--frames", type=int, default=6)
    p_trace.add_argument("--width", type=int, default=100)
    p_trace.add_argument("--export", choices=["chrome", "jsonl", "csv"],
                         help="instead of the ASCII gantt, export the "
                              "run: 'chrome' writes a chrome://tracing/"
                              "Perfetto-loadable trace-event JSON, "
                              "'jsonl' the full telemetry bundle, 'csv' "
                              "the trace segments")
    p_trace.add_argument("-o", "--output", metavar="PATH",
                         help="output file (default trace_<label>.<ext>)")
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="run experiments with telemetry and print metrics"
    )
    p_metrics.add_argument("labels", nargs="*", metavar="LABEL",
                           help=f"any of: {', '.join(PAPER_EXPERIMENTS)} "
                                "(default: 1 1A 2 2A)")
    p_metrics.add_argument("--frames", type=int, default=None, metavar="N",
                           help="truncate each run after N frames "
                                "(default: run to battery death)")
    add_common(p_metrics)
    add_sweep(p_metrics)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_runs = sub.add_parser(
        "runs", help="query the persistent run registry"
    )
    add_registry(p_runs)
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    pr_list = runs_sub.add_parser("list", help="list registered runs")
    pr_list.add_argument("--label", metavar="LABEL",
                         help="only runs of one experiment label")
    pr_list.add_argument("--limit", type=int, default=20, metavar="N",
                         help="show at most N runs (default 20)")
    pr_list.add_argument("--offset", type=int, default=0, metavar="K",
                         help="skip the K most recent runs first "
                              "(page through with --limit)")
    pr_list.add_argument("--json", action="store_true",
                         help="emit rows as JSON (full run ids, ISO-8601 "
                              "UTC created stamps)")
    pr_show = runs_sub.add_parser("show", help="one run in full")
    pr_show.add_argument("run_id", metavar="RUN",
                         help="run id (any unambiguous prefix)")
    pr_diff = runs_sub.add_parser(
        "diff", help="per-metric deltas between two registered runs"
    )
    pr_diff.add_argument("run_a", metavar="A", help="baseline run id prefix")
    pr_diff.add_argument("run_b", metavar="B", help="candidate run id prefix")
    pr_diff.add_argument("--threshold", type=float, default=0.0,
                         metavar="PCT",
                         help="flag metrics moving more than PCT%% "
                              "(default 0: report only, never fail)")
    pr_diff.add_argument("--all", action="store_true",
                         help="include metrics with zero delta")
    pr_gc = runs_sub.add_parser(
        "gc", help="trim old rows from the registry"
    )
    pr_gc.add_argument("--keep-last", type=int, metavar="N",
                       help="keep only the N most recent runs (per label "
                            "with --label, globally otherwise)")
    pr_gc.add_argument("--older-than-days", type=float, metavar="D",
                       help="remove rows recorded more than D days ago "
                            "(rows from before age tracking count as old)")
    pr_gc.add_argument("--label", metavar="LABEL",
                       help="restrict gc to one experiment label")
    runs_sub.add_parser("reset", help="delete every registered run")
    p_runs.set_defaults(func=_cmd_runs)

    p_check = sub.add_parser(
        "check",
        help="evaluate invariant monitors, or assert the Fig. 10 ordering",
    )
    p_check.add_argument("labels", nargs="*", metavar="LABEL",
                         help="experiments to check (default: 2 2A 2B 2C)")
    p_check.add_argument("--paper", action="store_true",
                         help="assert the Fig. 10 normalized-lifetime "
                              "ordering (2C > 2B > 2A > 2) over registered "
                              "runs; exits nonzero on violation")
    p_check.add_argument("--baseline", metavar="RUN",
                         help="diff a fresh run against a registered "
                              "baseline; exits nonzero past --threshold")
    p_check.add_argument("--fleet", action="store_true",
                         help="assert fleet health over the persisted "
                              "execution journal (failures, retries, "
                              "stragglers); exits nonzero on failures")
    p_check.add_argument("--threshold", type=float, default=5.0,
                         metavar="PCT",
                         help="regression threshold for --baseline "
                              "(default 5%%)")
    p_check.add_argument("--fast", action="store_true",
                         help="quarter-capacity batteries (quick demo)")
    p_check.add_argument("--no-registry", action="store_true",
                         help="do not record or read registered runs")
    p_check.add_argument("--jobs", type=int, default=1, metavar="N")
    p_check.add_argument("--no-cache", action="store_true")
    add_mode(p_check)
    add_registry(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_sweep = sub.add_parser(
        "sweep",
        help="parameter-sensitivity sweeps (--batch: vectorized cohorts)",
    )
    p_sweep.add_argument("--batch", action="store_true",
                         help="advance all configs at once through the "
                              "structure-of-arrays cohort stepper "
                              "(bit-identical to the scalar path)")
    p_sweep.add_argument("--grid", type=int, default=3, metavar="N",
                         help="points per axis for --batch (default 3; "
                              "grid mode evaluates N^4 configs)")
    p_sweep.add_argument("--span", type=float, default=0.10, metavar="REL",
                         help="relative half-width of each axis "
                              "(default 0.10 = +/-10%%)")
    p_sweep.add_argument("--mode", choices=["grid", "one_at_a_time"],
                         default="grid",
                         help="--batch sweep shape (default grid)")
    p_sweep.add_argument("--verify", type=int, default=0, metavar="K",
                         help="re-run K sampled configs on the scalar path "
                              "and assert frame-count identity (exit 1 on "
                              "mismatch)")
    p_sweep.add_argument("--chunk", type=int, default=2048, metavar="N",
                         help="configs per cohort chunk / cache entry "
                              "(default 2048)")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fan cohort chunks over N worker processes "
                              "(bit-identical to serial; default 1)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="recompute instead of reading .repro-cache")
    p_sweep.add_argument("--export", metavar="PATH",
                         help="write per-config rows to a .csv or .json file")
    add_registry(p_sweep)
    p_sweep.add_argument("--no-registry", action="store_true",
                         help="do not persist journal/progress snapshots")
    add_flight(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_explore = sub.add_parser(
        "explore",
        help="multi-fidelity design-space exploration (successive "
             "halving to a Pareto frontier)",
    )
    p_explore.add_argument("--bandwidth-points", type=int, default=10,
                           metavar="N",
                           help="log-spaced link bandwidths, 40-160 kbps "
                                "(default 10)")
    p_explore.add_argument("--capacity-points", type=int, default=12,
                           metavar="N",
                           help="battery capacities, quarter to full scale "
                                "(default 12)")
    p_explore.add_argument("--io-points", type=int, default=12, metavar="N",
                           help="I/O activity levels, 0.05-0.60 "
                                "(default 12)")
    p_explore.add_argument("--chemistries", nargs="+", default=["kibam"],
                           choices=["kibam", "linear", "peukert"],
                           metavar="CHEM",
                           help="battery models to cross in "
                                "(default: kibam only)")
    p_explore.add_argument("--deadlines", nargs="+", type=float,
                           default=[2.3], metavar="D",
                           help="frame deadlines in seconds (default 2.3; "
                                "several values surface the "
                                "throughput/lifetime tradeoff)")
    p_explore.add_argument("--keep", nargs=3, type=int, default=[512, 16, 6],
                           metavar=("K0", "K1", "K2"),
                           help="promotion budgets after the predict, "
                                "cohort, and fast rungs "
                                "(default 512 16 6)")
    p_explore.add_argument("--limit", type=int, default=None, metavar="N",
                           help="deterministically subsample the space to "
                                "at most N configs")
    p_explore.add_argument("--chunk", type=int, default=256, metavar="N",
                           help="configs per cohort chunk / cache entry "
                                "(default 256)")
    p_explore.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="fan rung work over N worker processes "
                                "(bit-identical to serial; default 1)")
    p_explore.add_argument("--guided", action="store_true",
                           help="model-guided rung-0 sampling instead of "
                                "exhaustive enumeration (deterministic; "
                                "reaches the same frontier on spaces the "
                                "sampler can exhaust)")
    p_explore.add_argument("--probe", type=int, default=2048, metavar="N",
                           help="initial stratified probe batch for "
                                "--guided (default 2048)")
    p_explore.add_argument("--resume", metavar="RUN", default=None,
                           help="resume a killed exploration from its "
                                "latest registry cursor: a session-id "
                                "prefix, or 'latest' to match the current "
                                "arguments")
    p_explore.add_argument("--no-cache", action="store_true",
                           help="recompute instead of reading .repro-cache")
    p_explore.add_argument("--no-registry", action="store_true",
                           help="do not record runs or rung snapshots")
    p_explore.add_argument("--export", metavar="PATH",
                           help="write the frontier (canonical JSON) "
                                "to PATH")
    add_registry(p_explore)
    add_flight(p_explore)
    p_explore.set_defaults(func=_cmd_explore)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the result cache"
    )
    p_cache.add_argument("--root", default=".repro-cache", metavar="PATH",
                         help="cache directory (default .repro-cache)")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("info", help="entry counts and sizes per salt")
    pc_prune = cache_sub.add_parser("prune", help="evict cache entries")
    pc_prune.add_argument("--max-age-days", type=float, metavar="D",
                          help="remove entries older than D days")
    pc_prune.add_argument("--max-bytes", type=int, metavar="N",
                          help="evict oldest-first until the cache fits "
                               "in N bytes")
    pc_prune.add_argument("--stale", action="store_true",
                          help="remove entries written under a different "
                               "code version / salt (they can never hit)")
    pc_prune.add_argument("--all", action="store_true",
                          help="remove every entry")
    p_cache.set_defaults(func=_cmd_cache)

    p_opt = sub.add_parser(
        "optimize", help="rank every configuration in the design space"
    )
    p_opt.add_argument("--stages", type=int, default=2,
                       help="maximum pipeline depth (default 2)")
    p_opt.add_argument("--deadline", type=float, default=2.3)
    p_opt.add_argument("--objective", choices=["normalized", "absolute"],
                       default="normalized")
    p_opt.add_argument("--top", type=int, default=10,
                       help="how many candidates to print")
    add_common(p_opt)
    p_opt.set_defaults(func=_cmd_optimize)

    p_report = sub.add_parser(
        "report",
        help="write the full reproduction report (markdown, or "
             "self-contained HTML with -o report.html)",
    )
    p_report.add_argument("labels", nargs="*", metavar="LABEL",
                          help="experiments to include (default: full "
                               "suite; .html reports only)")
    p_report.add_argument("-o", "--output", default="reproduction_report.md",
                          help="output path; a .html suffix renders the "
                               "single-file HTML report with inline SVG "
                               "charts (default reproduction_report.md)")
    p_report.add_argument("--fast", action="store_true",
                          help="quarter-capacity batteries (quick demo)")
    p_report.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="fan experiments over N worker processes "
                               "(.html reports only; bit-identical)")
    p_report.add_argument("--no-cache", action="store_true",
                          help="recompute instead of reading .repro-cache")
    p_report.add_argument("--no-registry", action="store_true",
                          help="do not record runs in the run registry")
    p_report.add_argument("--fleet", action="store_true",
                          help="append the fleet timeline track (per-"
                               "worker execution gantt from the persisted "
                               "journal; .html reports only)")
    add_registry(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_explain = sub.add_parser(
        "explain",
        help="causal explanations: a frame's critical path, or a run's "
             "energy attribution",
    )
    explain_sub = p_explain.add_subparsers(dest="explain_command",
                                           required=True)
    pe_frame = explain_sub.add_parser(
        "frame", help="reconstruct one frame's span tree and critical path"
    )
    pe_frame.add_argument("frame_id", type=int, metavar="ID",
                          help="frame id to explain")
    pe_frame.add_argument("--label", default="2", metavar="LABEL",
                          help="experiment to run (default 2)")
    pe_frame.add_argument("--frames", type=int, default=None, metavar="N",
                          help="simulate N frames (default: just past ID)")
    pe_frame.add_argument("--fast", action="store_true",
                          help="quarter-capacity batteries (quick demo)")
    pe_frame.add_argument("--json", action="store_true",
                          help="machine-readable explanation instead of "
                               "the ASCII tree")
    pe_frame.add_argument("--flamegraph", metavar="PATH",
                          help="also write every traceable frame's "
                               "critical path as collapsed stacks")
    pe_frame.set_defaults(func=_cmd_explain)
    pe_energy = explain_sub.add_parser(
        "energy", help="per-(node, mode, block) energy attribution ledger"
    )
    pe_energy.add_argument("--label", default="2", metavar="LABEL",
                           help="experiment to run (default 2)")
    pe_energy.add_argument("--node", metavar="NAME",
                           help="restrict to one node")
    pe_energy.add_argument("--fast", action="store_true",
                           help="quarter-capacity batteries (quick demo)")
    pe_energy.add_argument("--export", metavar="PATH",
                           help="write ledger rows to a .csv or .json file")
    add_mode(pe_energy)
    pe_energy.set_defaults(func=_cmd_explain)

    p_prof = sub.add_parser(
        "profile",
        help="time the real ATR blocks and derive a Fig. 6-style profile",
    )
    p_prof.add_argument("--frames", type=int, default=1, metavar="N",
                        help="scenes per timing batch (default 1; more "
                             "frames measure steady-state batched kernels)")
    p_prof.add_argument("--repeats", type=int, default=5, metavar="R",
                        help="timing repeats per stage, median taken "
                             "(default 5)")
    p_prof.add_argument("--seed", type=int, default=0,
                        help="scene-generation seed (default 0)")
    p_prof.add_argument("--export", metavar="PATH",
                        help="write rows to a .csv or .json file")
    p_prof.set_defaults(func=_cmd_profile)

    p_cal = sub.add_parser("calibrate", help="re-run the battery calibration")
    p_cal.add_argument("--from-scratch", action="store_true",
                       help="start far from the stored solution (slow)")
    p_cal.set_defaults(func=_cmd_calibrate)

    p_top = sub.add_parser(
        "top",
        help="live fleet dashboard: attach to a running sweep's "
             "progress plane",
    )
    p_top.add_argument("--label", metavar="LABEL",
                       help="attach to one recorder label (suite, "
                            "explore, sweep; default: most recent)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (exit 1 when "
                            "no snapshot exists)")
    p_top.add_argument("--interval", type=float, default=0.5, metavar="S",
                       help="refresh period in seconds (default 0.5)")
    add_registry(p_top)
    p_top.set_defaults(func=_cmd_top, no_registry=False)

    p_bench = sub.add_parser(
        "bench", help="perf-regression gates over BENCH_substrate.json"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    pb_diff = bench_sub.add_parser(
        "diff",
        help="diff the bench document against a baseline; exit nonzero "
             "on any per-section regression past the threshold",
    )
    pb_diff.add_argument("--bench", default="BENCH_substrate.json",
                         metavar="PATH",
                         help="bench document (default BENCH_substrate.json)")
    pb_diff.add_argument("--baseline", metavar="PATH",
                         help="baseline bench JSON (default: the "
                              "document's own most recent history entry)")
    pb_diff.add_argument("--threshold", type=float, default=50.0,
                         metavar="PCT",
                         help="regression threshold in percent "
                              "(default 50; bench numbers are noisy "
                              "across machines)")
    pb_diff.add_argument("--json", action="store_true",
                         help="emit diff rows as JSON")
    pb_diff.add_argument("--all", action="store_true",
                         help="include directionless (info-only) metrics "
                              "in the table")
    p_bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (``repro top --once | head``): the
        # Unix convention is to die quietly, not with a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
