"""Static per-node frame schedules and required-frequency arithmetic.

Each node must serialize RECV -> PROC -> SEND inside the frame delay D
(§3). Given a stage's payloads, the link timing, and any fixed protocol
overhead (acknowledgment transactions for failure recovery), the PROC
budget is what remains of D — which determines the minimum continuous
frequency and, after rounding up to a real operating point, the DVS
level the node runs at. This is exactly the arithmetic behind the
paper's Fig. 8.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeadlineMissError, InfeasiblePartitionError
from repro.hw.dvs import DVSTable, FrequencyLevel
from repro.hw.link import TransactionTiming
from repro.pipeline.tasks import NodeAssignment

__all__ = ["FrameSchedule", "NodePlan", "plan_node", "required_frequency_mhz"]


@dataclasses.dataclass(frozen=True)
class FrameSchedule:
    """The time budget of one node's frame, all in seconds.

    Attributes
    ----------
    recv_s, send_s:
        Data-transaction durations (startup + wire time).
    overhead_s:
        Fixed extra per-frame communication (e.g. ack transactions).
    proc_s:
        PROC time at the *chosen* level.
    deadline_s:
        The frame delay D.
    """

    recv_s: float
    send_s: float
    overhead_s: float
    proc_s: float
    deadline_s: float

    @property
    def comm_s(self) -> float:
        """Total per-frame communication time."""
        return self.recv_s + self.send_s + self.overhead_s

    @property
    def busy_s(self) -> float:
        """Total occupied time per frame."""
        return self.comm_s + self.proc_s

    @property
    def slack_s(self) -> float:
        """Idle time left in the frame."""
        return self.deadline_s - self.busy_s

    @property
    def feasible(self) -> bool:
        """Whether the frame fits inside D (with float tolerance)."""
        return self.slack_s >= -1e-9


@dataclasses.dataclass(frozen=True)
class NodePlan:
    """A stage's chosen operating point plus its schedule.

    Attributes
    ----------
    assignment:
        The work this plan covers.
    level:
        Chosen DVS level for PROC.
    required_mhz:
        The continuous minimum frequency before rounding up.
    schedule:
        The resulting frame budget at ``level``.
    """

    assignment: NodeAssignment
    level: FrequencyLevel
    required_mhz: float
    schedule: FrameSchedule


def required_frequency_mhz(
    assignment: NodeAssignment,
    timing: TransactionTiming,
    deadline_s: float,
    table: DVSTable,
    overhead_s: float = 0.0,
) -> float:
    """Continuous frequency needed for a stage to fit its frame in D.

    Communication time is frequency-independent (§6.3), so the PROC
    budget is ``D - recv - send - overhead`` and the requirement scales
    the profiled time accordingly. Returns ``inf`` when the budget is
    non-positive (pure-communication overload).
    """
    recv_s = timing.nominal_duration(assignment.recv_bytes)
    send_s = timing.nominal_duration(assignment.send_bytes)
    budget = deadline_s - recv_s - send_s - overhead_s
    return table.required_mhz(assignment.proc_seconds_at_max, budget)


def plan_node(
    assignment: NodeAssignment,
    timing: TransactionTiming,
    deadline_s: float,
    table: DVSTable,
    overhead_s: float = 0.0,
    level: FrequencyLevel | None = None,
) -> NodePlan:
    """Choose (or validate) a DVS level and build the frame schedule.

    With ``level=None`` the slowest feasible operating point is chosen
    (round the continuous requirement up). With an explicit ``level``
    — e.g. the paper's pinned 73.7/118 MHz recovery configuration — the
    schedule is built at that level and validated against D.

    Raises
    ------
    InfeasiblePartitionError
        If no level (or the given level's schedule) can meet D because
        the required frequency exceeds the table maximum.
    DeadlineMissError
        If an explicitly pinned level yields an infeasible schedule.
    """
    required = required_frequency_mhz(assignment, timing, deadline_s, table, overhead_s)
    if level is None:
        if required == float("inf"):
            raise InfeasiblePartitionError(
                f"stage {assignment.index}: communication alone "
                f"({timing.nominal_duration(assignment.recv_bytes) + timing.nominal_duration(assignment.send_bytes) + overhead_s:.3f}s) "
                f"exceeds the frame delay {deadline_s:.3f}s",
                required_mhz=required,
            )
        level = table.ceil(required)  # raises InfeasiblePartitionError if > max

    recv_s = timing.nominal_duration(assignment.recv_bytes)
    send_s = timing.nominal_duration(assignment.send_bytes)
    proc_s = table.scale_time(assignment.proc_seconds_at_max, level)
    schedule = FrameSchedule(
        recv_s=recv_s,
        send_s=send_s,
        overhead_s=overhead_s,
        proc_s=proc_s,
        deadline_s=deadline_s,
    )
    if not schedule.feasible:
        raise DeadlineMissError(
            f"stage{assignment.index}", schedule.busy_s, deadline_s
        )
    return NodePlan(
        assignment=assignment,
        level=level,
        required_mhz=required,
        schedule=schedule,
    )
