"""The distributed pipeline: partitioned execution of a task chain.

This package turns a :class:`~repro.apps.atr.profile.TaskProfile` plus
a :class:`~repro.pipeline.tasks.Partition` into running simulation
processes:

- :mod:`repro.pipeline.tasks` — partitions of the block chain onto
  nodes and the per-node payload/work accounting.
- :mod:`repro.pipeline.schedule` — the static per-node frame schedule
  (RECV -> PROC -> SEND inside the frame delay D) and required-
  frequency arithmetic.
- :mod:`repro.pipeline.engine` — the discrete-event execution engine:
  host source/sink, node frame loops, stall detection, results.
- :mod:`repro.pipeline.rotation` — the §5.5 node-rotation controller.
- :mod:`repro.pipeline.recovery` — the §5.4 ack/timeout power-failure
  recovery protocol with workload migration.
"""

from repro.pipeline.tasks import NodeAssignment, Partition, enumerate_partitions
from repro.pipeline.schedule import FrameSchedule, NodePlan, plan_node
from repro.pipeline.engine import (
    Frame,
    PipelineConfig,
    PipelineEngine,
    PipelineResult,
    RoleConfig,
)
from repro.pipeline.rotation import RotationController
from repro.pipeline.workload import (
    BurstyWorkload,
    ConstantWorkload,
    TraceWorkload,
    UniformWorkload,
    WorkloadModel,
)
from repro.pipeline.recovery import RecoveryConfig

__all__ = [
    "Partition",
    "NodeAssignment",
    "enumerate_partitions",
    "FrameSchedule",
    "NodePlan",
    "plan_node",
    "Frame",
    "RoleConfig",
    "PipelineConfig",
    "PipelineEngine",
    "PipelineResult",
    "RotationController",
    "RecoveryConfig",
    "WorkloadModel",
    "ConstantWorkload",
    "UniformWorkload",
    "BurstyWorkload",
    "TraceWorkload",
]
