"""Node rotation (§5.5): the paper's load-balancing contribution.

Every ``period`` frames the pipeline roles rotate: each node holding
role ``r < N-1`` finishes PROC_r on its current frame, does *not* send
the intermediate result, reconfigures itself into role ``r+1`` and
continues with PROC_{r+1} on the data already in hand; the node holding
the last role finishes normally and becomes role 0. One SEND/RECV pair
is eliminated per rotating node, which is what pays for the
reconfiguration; throughput is unaffected.

The controller here answers the purely arithmetical questions — *is
this frame a rotation frame for this role?* and *who holds role 0 when
frame f is emitted?* — so that every node (and the host source) can act
on local knowledge, exactly as the paper's protocol requires.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError

__all__ = ["RotationController"]


@dataclasses.dataclass(frozen=True)
class RotationController:
    """Deterministic rotation schedule.

    Attributes
    ----------
    period:
        Frames between rotations (the paper uses 100).
    n_stages:
        Pipeline depth N.
    reconfig_seconds:
        Time spent reloading code during a transition, charged at
        computation power. The paper argues this fits in the idle slot
        freed by the eliminated SEND/RECV pair and is "minimal, if not
        zero"; the default is 0 and an ablation bench sweeps it.
    """

    period: int
    n_stages: int
    reconfig_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.n_stages < 2:
            raise ConfigurationError(
                f"rotation needs at least 2 stages, got {self.n_stages}"
            )
        if self.period < self.n_stages:
            # Rotation event k makes the holder of role r transition on
            # frame k*period - 1 - r; with period < N the deepest role's
            # transition frame for the first event would be negative —
            # the pipeline cannot rotate faster than it fills.
            raise ConfigurationError(
                f"rotation period must be >= pipeline depth "
                f"({self.n_stages}), got {self.period}"
            )
        if self.reconfig_seconds < 0:
            raise ConfigurationError("reconfig time must be non-negative")

    # -- schedule arithmetic ---------------------------------------------
    def is_rotation_frame(self, frame_id: int, role: int) -> bool:
        """Does the holder of ``role`` transition on ``frame_id``?

        Rotation event k is anchored at frame ``f_k = k*period - 1`` as
        seen by role 0; the holder of role r transitions while handling
        frame ``f_k - r`` (the frame that sits r stages behind).
        """
        if frame_id < 0:
            raise ConfigurationError(f"negative frame id {frame_id}")
        return (frame_id + role + 1) % self.period == 0

    def epoch_of_frame(self, frame_id: int) -> int:
        """How many rotations have happened when frame ``frame_id`` enters.

        Frames 0..period-1 are epoch 0, period..2*period-1 are epoch 1,
        and so on: the boundary frame ``k*period`` is the *first* frame
        of epoch k (role 0's transition is anchored on the preceding
        frame ``k*period - 1``). ``__post_init__`` guarantees
        ``period >= n_stages >= 2``, so plain floor division is safe.
        """
        return frame_id // self.period

    def role0_holder_index(self, frame_id: int) -> int:
        """Index into the node list of the role-0 holder for ``frame_id``.

        "The last node is rotated to the front": after e rotations the
        original node ``(-e) mod N`` holds role 0.
        """
        e = frame_id // self.period
        return (-e) % self.n_stages

    def role_of_node(self, node_index: int, frame_id: int) -> int:
        """Role held by physical node ``node_index`` in the epoch of ``frame_id``."""
        e = frame_id // self.period
        return (node_index + e) % self.n_stages

    # -- telemetry --------------------------------------------------------
    def reconfig_event(
        self, frame_id: int, from_role: int, to_role: int
    ) -> dict[str, t.Any]:
        """Payload of a ``rotation.reconfig`` telemetry event."""
        return {
            "frame": frame_id,
            "from_role": from_role,
            "to_role": to_role,
            "epoch": self.epoch_of_frame(frame_id),
            "reconfig_s": self.reconfig_seconds,
        }
