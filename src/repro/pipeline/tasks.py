"""Partitions: contiguous assignments of the block chain to nodes.

The ATR dataflow is a chain, so a partition onto an N-node pipeline is
a list of N contiguous, non-empty block ranges covering the chain in
order (the paper's Fig. 8 enumerates the three 2-node partitions of the
4-block chain). :class:`NodeAssignment` carries the per-node accounting
— work at f_max, bytes in, bytes out — that both the partitioning
optimizer and the execution engine consume.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from repro.apps.atr.profile import TaskProfile
from repro.errors import ConfigurationError

__all__ = ["NodeAssignment", "Partition", "enumerate_partitions"]


@dataclasses.dataclass(frozen=True)
class NodeAssignment:
    """The work one pipeline stage performs per frame.

    Attributes
    ----------
    index:
        Stage index, 0-based (stage 0 receives from the host).
    block_start, block_stop:
        Half-open block range this stage executes.
    block_names:
        Names of those blocks (for reports).
    proc_seconds_at_max:
        PROC time at the fastest DVS level.
    recv_bytes, send_bytes:
        Payload received from the predecessor (host for stage 0) and
        sent to the successor (host for the last stage).
    """

    index: int
    block_start: int
    block_stop: int
    block_names: tuple[str, ...]
    proc_seconds_at_max: float
    recv_bytes: int
    send_bytes: int

    @property
    def comm_payload_bytes(self) -> int:
        """Total per-frame communication payload (the Fig. 8 column)."""
        return self.recv_bytes + self.send_bytes


class Partition:
    """A contiguous partition of a task profile onto N pipeline stages.

    Parameters
    ----------
    profile:
        The block chain being partitioned.
    cuts:
        Stage boundaries: ``cuts[i]`` is the first block of stage i+1.
        Must be strictly increasing within ``(0, n_blocks)``. An empty
        sequence is the single-node "partition".

    Examples
    --------
    The paper's scheme 1 — (Target Detection) / (rest) — is ``cuts=[1]``:

    >>> from repro.apps.atr.profile import PAPER_PROFILE
    >>> p = Partition(PAPER_PROFILE, [1])
    >>> [a.block_names for a in p.assignments]
    [('target_detection',), ('fft', 'ifft', 'compute_distance')]
    """

    def __init__(self, profile: TaskProfile, cuts: t.Sequence[int] = ()):
        n = len(profile.blocks)
        cuts = tuple(cuts)
        if any(not 0 < c < n for c in cuts):
            raise ConfigurationError(f"cuts must lie in (0, {n}), got {list(cuts)}")
        if any(b <= a for a, b in zip(cuts, cuts[1:])):
            raise ConfigurationError(f"cuts must be strictly increasing: {list(cuts)}")
        self.profile = profile
        self.cuts = cuts
        bounds = [0, *cuts, n]
        self.assignments: tuple[NodeAssignment, ...] = tuple(
            NodeAssignment(
                index=i,
                block_start=start,
                block_stop=stop,
                block_names=profile.names[start:stop],
                proc_seconds_at_max=profile.segment_seconds(start, stop),
                recv_bytes=profile.segment_input_bytes(start),
                send_bytes=profile.segment_output_bytes(stop),
            )
            for i, (start, stop) in enumerate(zip(bounds, bounds[1:]))
        )

    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.assignments)

    def stage(self, index: int) -> NodeAssignment:
        """The assignment of stage ``index``."""
        if not 0 <= index < self.n_stages:
            raise ConfigurationError(
                f"stage {index} out of range for {self.n_stages}-stage partition"
            )
        return self.assignments[index]

    def merged(self, start_stage: int, stop_stage: int) -> NodeAssignment:
        """The assignment covering stages ``[start_stage, stop_stage)`` fused.

        Used by failure recovery: when a node migrates a dead
        neighbour's share onto itself, it executes the merged range.
        """
        if not 0 <= start_stage < stop_stage <= self.n_stages:
            raise ConfigurationError(
                f"invalid stage range [{start_stage}, {stop_stage})"
            )
        first = self.assignments[start_stage]
        last = self.assignments[stop_stage - 1]
        return NodeAssignment(
            index=first.index,
            block_start=first.block_start,
            block_stop=last.block_stop,
            block_names=self.profile.names[first.block_start : last.block_stop],
            proc_seconds_at_max=self.profile.segment_seconds(
                first.block_start, last.block_stop
            ),
            recv_bytes=first.recv_bytes,
            send_bytes=last.send_bytes,
        )

    def describe(self) -> str:
        """Human-readable scheme label like ``(A) (B+C+D)``."""
        parts = []
        for a in self.assignments:
            parts.append("(" + " + ".join(a.block_names) + ")")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Partition cuts={list(self.cuts)} {self.describe()}>"


def enumerate_partitions(profile: TaskProfile, n_stages: int) -> list[Partition]:
    """All contiguous partitions of ``profile`` into ``n_stages`` stages.

    For the paper's 4-block chain and 2 stages this yields exactly the
    three schemes of Fig. 8, in cut order.
    """
    n = len(profile.blocks)
    if not 1 <= n_stages <= n:
        raise ConfigurationError(
            f"need 1 <= n_stages <= {n} blocks, got {n_stages}"
        )
    return [
        Partition(profile, cuts)
        for cuts in itertools.combinations(range(1, n), n_stages - 1)
    ]
