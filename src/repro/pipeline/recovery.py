"""Power-failure recovery (§5.4): ack/timeout detection plus migration.

The protocol the paper implements as a proof of concept:

- every data transaction is acknowledged by the receiver with a
  *separate* serial transaction (50-100 ms startup, negligible payload);
- a timeout on the expected transaction (data or ack) marks the
  neighbour as failed;
- the failed node's computation share migrates to the surviving
  neighbour, which reconfigures and carries on;
- because the extra transactions eat into the frame budget, the nodes
  must run *faster* than the plain partitioned configuration — the
  paper measures 73.7 and 118 MHz against 59 and 103.2 without
  recovery.

:class:`RecoveryConfig` packages the protocol's knobs. The engine uses
it both to stretch the per-frame schedule (ack transactions) and to
drive the detection/migration state machine.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.hw.dvs import FrequencyLevel
from repro.hw.link import TransactionTiming

__all__ = ["RecoveryConfig"]


@dataclasses.dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the ack/timeout/migrate protocol.

    Attributes
    ----------
    ack_payload_bytes:
        Payload of an acknowledgment transaction (the cost is dominated
        by the startup time either way).
    detect_timeout_s:
        How long a node waits for an expected transaction before
        declaring its peer dead. Must comfortably exceed one frame
        delay or healthy jitter triggers false positives.
    migrated_comp_level:
        DVS level the surviving node computes at after absorbing the
        whole chain (the paper's survivor behaves like experiment (1A):
        206.4 MHz compute).
    migrated_io_level:
        DVS level during I/O after migration (59 MHz with DVS-during-I/O).
    acks_between_nodes_only:
        If True (paper behaviour), only inter-node transactions carry
        acks — the mains-powered host does not participate in battery
        failure detection. If False, host transactions are acked too.
    """

    ack_payload_bytes: int = 0
    detect_timeout_s: float = 6.9  # 3 * D for the paper's D = 2.3 s
    migrated_comp_level: FrequencyLevel | None = None
    migrated_io_level: FrequencyLevel | None = None
    acks_between_nodes_only: bool = True

    def __post_init__(self) -> None:
        if self.ack_payload_bytes < 0:
            raise ConfigurationError("ack payload must be non-negative")
        if self.detect_timeout_s <= 0:
            raise ConfigurationError("detection timeout must be positive")

    def ack_duration_s(self, timing: TransactionTiming) -> float:
        """Duration of one ack transaction under the given link timing."""
        return timing.nominal_duration(self.ack_payload_bytes)

    def per_frame_overhead_s(self, timing: TransactionTiming, n_acked_transactions: int) -> float:
        """Schedule overhead of acking ``n_acked_transactions`` per frame."""
        if n_acked_transactions < 0:
            raise ConfigurationError("transaction count must be non-negative")
        return n_acked_transactions * self.ack_duration_s(timing)

    # -- telemetry --------------------------------------------------------
    def migration_event(self, survivor: str) -> dict:
        """Payload of a ``recovery.migrate`` telemetry event."""
        return {
            "survivor": survivor,
            "detect_timeout_s": self.detect_timeout_s,
            "comp_mhz": self.migrated_comp_level.mhz
            if self.migrated_comp_level
            else None,
            "io_mhz": self.migrated_io_level.mhz
            if self.migrated_io_level
            else None,
        }
