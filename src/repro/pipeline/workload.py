"""Variable per-frame workload models.

The paper fixes the ATR workload ("we assume the workload of the
algorithm is fixed", §3) and notes that techniques for *variable*
workload "can be readily brought into the context of this study". This
module brings them in: a :class:`WorkloadModel` scales each frame's
PROC requirement (e.g. more targets, harder clutter), the engine
carries the scale with the frame, and an adaptive per-frame DVS mode
(:attr:`~repro.pipeline.engine.PipelineConfig.adaptive_workload_dvs`)
re-picks the compute level frame by frame — the intra-task slack
reclamation of the Shin/Im related work, at frame granularity.
"""

from __future__ import annotations

import abc
import typing as t

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "WorkloadModel",
    "ConstantWorkload",
    "UniformWorkload",
    "BurstyWorkload",
    "TraceWorkload",
]


class WorkloadModel(abc.ABC):
    """Maps a frame id to a PROC scale factor (1.0 = the profiled cost)."""

    @abc.abstractmethod
    def scale_for(self, frame_id: int, rng: np.random.Generator) -> float:
        """Scale factor for ``frame_id``; must be positive.

        Implementations must be deterministic given the RNG stream
        state — the engine draws frames in id order from a dedicated
        seeded stream, so runs replay exactly.
        """

    def describe(self) -> str:
        """Label for reports."""
        return type(self).__name__


class ConstantWorkload(WorkloadModel):
    """Every frame costs ``scale`` times the profile (default: exactly it)."""

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def scale_for(self, frame_id: int, rng: np.random.Generator) -> float:
        return self.scale

    def describe(self) -> str:
        return f"Constant({self.scale:g})"


class UniformWorkload(WorkloadModel):
    """Independent per-frame scales, uniform in [low, high]."""

    def __init__(self, low: float = 0.7, high: float = 1.3):
        if not 0 < low <= high:
            raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def scale_for(self, frame_id: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def describe(self) -> str:
        return f"Uniform[{self.low:g}, {self.high:g}]"


class BurstyWorkload(WorkloadModel):
    """Two-state Markov workload: calm frames with occasional hot bursts.

    Models scene activity: most frames carry the baseline cost, but
    with probability ``burst_prob`` a burst starts and the next
    ``burst_length`` frames cost ``burst_scale``. State is internal, so
    frames must be drawn in order (the engine does).
    """

    def __init__(
        self,
        calm_scale: float = 0.8,
        burst_scale: float = 1.4,
        burst_prob: float = 0.05,
        burst_length: int = 5,
    ):
        if calm_scale <= 0 or burst_scale <= 0:
            raise ConfigurationError("scales must be positive")
        if not 0 <= burst_prob <= 1:
            raise ConfigurationError(f"burst_prob must be in [0, 1]: {burst_prob}")
        if burst_length < 1:
            raise ConfigurationError(f"burst_length must be >= 1: {burst_length}")
        self.calm_scale = float(calm_scale)
        self.burst_scale = float(burst_scale)
        self.burst_prob = float(burst_prob)
        self.burst_length = int(burst_length)
        self._remaining_burst = 0

    def scale_for(self, frame_id: int, rng: np.random.Generator) -> float:
        if self._remaining_burst > 0:
            self._remaining_burst -= 1
            return self.burst_scale
        if float(rng.uniform()) < self.burst_prob:
            self._remaining_burst = self.burst_length - 1
            return self.burst_scale
        return self.calm_scale

    def describe(self) -> str:
        return (
            f"Bursty(calm={self.calm_scale:g}, burst={self.burst_scale:g} "
            f"x{self.burst_length}, p={self.burst_prob:g})"
        )


class TraceWorkload(WorkloadModel):
    """Replay a recorded sequence of per-frame scales.

    Bridges measurement and simulation: e.g. run the real multi-scale
    recognizer over a scene stream, record each frame's relative cost,
    and feed the trace to the simulated pipeline. Frames beyond the
    trace either wrap around (``wrap=True``, default — periodic replay)
    or hold the last value.
    """

    def __init__(self, scales: t.Sequence[float], wrap: bool = True):
        scales = tuple(float(s) for s in scales)
        if not scales:
            raise ConfigurationError("trace must contain at least one scale")
        if any(s <= 0 for s in scales):
            raise ConfigurationError("all trace scales must be positive")
        self.scales = scales
        self.wrap = wrap

    def scale_for(self, frame_id: int, rng: np.random.Generator) -> float:
        if frame_id < len(self.scales):
            return self.scales[frame_id]
        if self.wrap:
            return self.scales[frame_id % len(self.scales)]
        return self.scales[-1]

    def describe(self) -> str:
        mode = "wrap" if self.wrap else "hold"
        return f"Trace({len(self.scales)} frames, {mode})"
