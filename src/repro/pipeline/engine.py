"""The distributed-pipeline execution engine.

Builds the simulated testbed — host hub, nodes, links — from a
:class:`PipelineConfig` and runs the paper's frame protocol (§3) until
the batteries give out:

- the **host source** emits one frame every D seconds to whichever node
  currently holds pipeline role 0;
- each **node** loops RECV -> PROC -> SEND for its role, fully
  serialized, switching power modes (and DVS levels, per policy) as it
  goes;
- the **host sink** listens on every node's serial port and records
  final results;
- a **watchdog** ends the run when all nodes are dead, when the
  pipeline has stalled (a node died and nothing progresses — the
  paper's experiments (2)/(2A)), or at a safety horizon.

Node rotation (§5.5) and power-failure recovery (§5.4) plug into the
node loop; see :mod:`repro.pipeline.rotation` and
:mod:`repro.pipeline.recovery` for the protocol definitions.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError
from repro.hw.battery import Battery, BatteryMonitor
from repro.hw.dvs import SA1100_TABLE, DVSTable, FrequencyLevel
from repro.hw.host import HOST_NAME, HostHub
from repro.hw.link import PAPER_LINK_TIMING, SerialLink, TransactionTiming
from repro.hw.node import ItsyNode
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.pipeline.recovery import RecoveryConfig
from repro.pipeline.rotation import RotationController
from repro.pipeline.workload import WorkloadModel
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import NodeAssignment, Partition
from repro.sim import Event, Simulator, TraceRecorder

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Telemetry

__all__ = ["Frame", "RoleConfig", "PipelineConfig", "PipelineEngine", "PipelineResult"]


@dataclasses.dataclass
class Frame:
    """One image frame travelling down the pipeline.

    Attributes
    ----------
    id:
        Sequence number assigned by the host source.
    emitted_s:
        When the host offered it.
    stages_done:
        How many pipeline stages have processed it (for invariants).
    scale:
        Per-frame PROC scale factor from the workload model (1.0 = the
        profiled cost).
    """

    id: int
    emitted_s: float
    stages_done: int = 0
    scale: float = 1.0


class _Ack:
    """Marker message for recovery-protocol acknowledgments."""

    __slots__ = ("frame_id",)

    def __init__(self, frame_id: int):
        self.frame_id = frame_id


@dataclasses.dataclass(frozen=True)
class RoleConfig:
    """Operating configuration of one pipeline role.

    Attributes
    ----------
    assignment:
        The blocks, payloads, and work of this stage.
    comp_level:
        DVS level during PROC.
    io_level:
        DVS level during RECV/SEND — equal to ``comp_level`` without
        the DVS-during-I/O technique, the minimum level with it.
    """

    assignment: NodeAssignment
    comp_level: FrequencyLevel
    io_level: FrequencyLevel
    #: PROC time available inside the frame (D minus nominal comm and
    #: protocol overhead); used by adaptive per-frame DVS. None when
    #: the policy did not derive it from a plan.
    proc_budget_s: float | None = None


@dataclasses.dataclass
class PipelineConfig:
    """Everything needed to build and run one pipeline experiment.

    Attributes
    ----------
    partition:
        The block-chain partition (also used for recovery merging).
    roles:
        Per-stage operating configuration, one per partition stage.
    node_names:
        Physical node names; ``node_names[i]`` initially holds role i.
    battery_factory:
        Called once per node to build its private battery.
    deadline_s:
        The frame delay D.
    timing:
        Serial-link transaction timing.
    power_model, dvs_table:
        Shared hardware models.
    rotation:
        Optional §5.5 rotation controller.
    recovery:
        Optional §5.4 recovery protocol configuration.
    max_frames:
        Stop after this many delivered results (None = run to death).
    stall_timeout_s:
        Watchdog: no progress for this long after a node death ends the
        run (default 20 * D).
    horizon_s:
        Hard safety limit on simulated time.
    trace:
        Optional trace recorder for timing-diagram figures.
    monitor_interval_s:
        Battery-telemetry sampling period (None disables monitors).
    store_and_forward:
        Host-hub forwarding mode (see :class:`~repro.hw.host.HostHub`).
    validate_schedules:
        Check every role's static schedule fits D before running.
    seed:
        Root seed for stochastic components (link startup jitter).
        Irrelevant when the timing is deterministic.
    lateness_tolerance_s:
        A result delivered more than this much after its per-frame
        contract (emission time + N * D) counts as a deadline miss.
    workload:
        Optional per-frame workload scaling (see
        :mod:`repro.pipeline.workload`).
    adaptive_workload_dvs:
        Re-pick each frame's compute level from its actual workload and
        the stage's PROC budget (intra-frame DVS for variable workload).
    """

    partition: Partition
    roles: tuple[RoleConfig, ...]
    node_names: tuple[str, ...]
    battery_factory: t.Callable[[], Battery]
    deadline_s: float = 2.3
    timing: TransactionTiming = PAPER_LINK_TIMING
    power_model: PowerModel = PAPER_POWER_MODEL
    dvs_table: DVSTable = SA1100_TABLE
    rotation: RotationController | None = None
    recovery: RecoveryConfig | None = None
    max_frames: int | None = None
    stall_timeout_s: float | None = None
    horizon_s: float = 100 * 24 * 3600.0
    trace: TraceRecorder | None = None
    monitor_interval_s: float | None = 300.0
    #: Optional telemetry sink (see :mod:`repro.obs`). When set, the
    #: engine publishes structured events (link.xfer, dvs.switch,
    #: frame.emit/result, rotation.reconfig, recovery.migrate, ...)
    #: into ``obs.events`` and fills ``obs.metrics`` at the end of the
    #: run. Disabled telemetry costs one branch per emit site.
    obs: "Telemetry | None" = None
    store_and_forward: bool = False
    validate_schedules: bool = True
    seed: int = 0
    lateness_tolerance_s: float = 0.05
    #: Optional per-frame workload scaling (see repro.pipeline.workload).
    workload: "WorkloadModel | None" = None
    #: Re-pick each frame's compute level from its actual workload and
    #: the stage's PROC budget (intra-frame DVS for variable workload).
    adaptive_workload_dvs: bool = False
    #: Deep-sleep through each frame's trailing slack instead of idling
    #: (the Itsy supports sleep; the paper idles — this extension
    #: measures the difference). Requires deterministic workload and no
    #: rotation, because the sleep window is sized from the static
    #: schedule.
    sleep_in_slack: bool = False
    #: Wake-up latency paid (at computation current) after each sleep.
    sleep_wake_latency_s: float = 0.05
    #: Minimum slack worth sleeping through (shorter windows idle).
    sleep_min_slack_s: float = 0.1
    #: Skip steady-state epochs analytically (see
    #: :mod:`repro.sim.fastforward`). Frame counts stay identical to
    #: exact simulation and lifetimes agree to well under 0.1%; runs
    #: with stochastic timing or a workload model silently stay exact.
    #: Incompatible with a trace recorder (skipped epochs have no
    #: segments to record).
    fast_forward: bool = False

    def __post_init__(self) -> None:
        if self.adaptive_workload_dvs and any(
            rc.proc_budget_s is None for rc in self.roles
        ):
            raise ConfigurationError(
                "adaptive_workload_dvs needs RoleConfig.proc_budget_s on "
                "every role (policies derive it from the node plans)"
            )
        if self.sleep_in_slack:
            if self.rotation is not None or self.workload is not None:
                raise ConfigurationError(
                    "sleep_in_slack sizes its window from the static "
                    "schedule; it cannot combine with rotation or a "
                    "variable workload"
                )
            if any(rc.proc_budget_s is None for rc in self.roles):
                raise ConfigurationError(
                    "sleep_in_slack needs RoleConfig.proc_budget_s on "
                    "every role (policies derive it from the node plans)"
                )
            if self.sleep_wake_latency_s < 0 or self.sleep_min_slack_s < 0:
                raise ConfigurationError("sleep latencies must be >= 0")
        if len(self.roles) != self.partition.n_stages:
            raise ConfigurationError(
                f"{len(self.roles)} role configs for "
                f"{self.partition.n_stages} partition stages"
            )
        if len(self.node_names) != len(self.roles):
            raise ConfigurationError(
                f"{len(self.node_names)} nodes for {len(self.roles)} roles"
            )
        if self.deadline_s <= 0:
            raise ConfigurationError("frame delay D must be positive")
        if self.rotation is not None and self.recovery is not None:
            raise ConfigurationError(
                "rotation and recovery are separate techniques in the paper; "
                "configure one at a time"
            )
        if self.rotation is not None and self.rotation.n_stages != len(self.roles):
            raise ConfigurationError("rotation controller depth != pipeline depth")
        if self.recovery is not None and len(self.roles) != 2:
            raise ConfigurationError(
                "failure recovery is implemented for 2-node pipelines "
                "(the configuration the paper evaluates)"
            )
        if self.fast_forward and self.trace is not None:
            raise ConfigurationError(
                "fast-forward coalesces whole epochs into analytic jumps; "
                "timing traces need exact simulation"
            )
        if self.stall_timeout_s is None:
            self.stall_timeout_s = 20.0 * self.deadline_s


@dataclasses.dataclass
class PipelineResult:
    """Outcome of one pipeline run.

    Attributes
    ----------
    frames_completed:
        Results delivered to the host (the paper's F).
    result_times_s:
        Delivery timestamp of each result (capped at ``keep_result_times``).
    end_time_s:
        Simulated time the watchdog ended the run.
    end_reason:
        ``"all-dead"``, ``"stall"``, ``"max-frames"`` or ``"horizon"``.
    death_times_s:
        node name -> battery-death time (missing if still alive).
    delivered_mah:
        node name -> charge actually delivered by its battery.
    migrations:
        (time, surviving node) pairs recorded by the recovery protocol.
    monitors:
        node name -> battery telemetry (if enabled).
    trace:
        The trace recorder (if provided).
    """

    frames_completed: int
    result_times_s: list[float]
    end_time_s: float
    end_reason: str
    death_times_s: dict[str, float]
    delivered_mah: dict[str, float]
    migrations: list[tuple[float, str]]
    monitors: dict[str, BatteryMonitor]
    trace: TraceRecorder | None
    #: Telemetry bundle (events + metrics + spans) if the run was
    #: configured with one.
    obs: "Telemetry | None" = None
    #: Delivery time of the final result. Stored separately because
    #: ``result_times_s`` keeps only a bounded sample of timestamps.
    last_result_s: float | None = None
    #: Results that arrived later than their nominal slot by more than
    #: the configured tolerance (non-zero only under stochastic timing
    #: or reconfiguration hiccups).
    late_results: int = 0
    #: Worst observed lateness against the nominal delivery grid.
    max_lateness_s: float = 0.0
    #: Frames each node fully processed (a rotating node counts every
    #: frame it touched; sums to more than frames_completed for N > 1).
    frames_processed: dict[str, int] = dataclasses.field(default_factory=dict)
    #: DVS level switches each node performed.
    level_switches: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Completed serial transactions per link direction ("a->b").
    link_transactions: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Payload bytes moved per link direction ("a->b").
    link_bytes: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Rendezvous each node had to wait for (see ItsyNode.io_stalls).
    stage_stalls: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Kernel events dispatched over the whole run (simulation cost).
    #: In fast-forward mode this is the *actual* dispatch count — the
    #: honest measure of what the run cost — not what exact simulation
    #: would have dispatched.
    events_processed: int = 0
    #: Fast-forward jumps applied (0 in exact mode or when no steady
    #: state was ever detected).
    ff_jumps: int = 0
    #: Frames advanced analytically inside those jumps.
    ff_frames_skipped: int = 0

    @property
    def total_link_transactions(self) -> int:
        """Completed transactions summed over every link direction."""
        return sum(self.link_transactions.values())

    @property
    def total_link_bytes(self) -> int:
        """Payload bytes summed over every link direction."""
        return sum(self.link_bytes.values())

    @property
    def first_death_s(self) -> float | None:
        """Earliest battery death, if any."""
        return min(self.death_times_s.values(), default=None)

    def mean_result_period_s(self) -> float | None:
        """Average spacing of deliveries (should approximate D)."""
        if len(self.result_times_s) < 2:
            return None
        first, last = self.result_times_s[0], self.result_times_s[-1]
        return (last - first) / (len(self.result_times_s) - 1)


class PipelineEngine:
    """Builds and runs one pipeline experiment. Single use: build, run."""

    #: Cap on stored per-result timestamps (inter-arrival statistics only
    #: need a sample; lifetimes come from counters).
    keep_result_times = 4096

    def __init__(self, config: PipelineConfig, sim: Simulator | None = None):
        self.config = config
        # The event bus every emitter publishes into; None when the run
        # is untraced OR the log is a null sink, so emit sites stay a
        # single C-level None test (a disabled EventLog would cost a
        # Python-level __bool__ call per guard).
        log = config.obs.events if config.obs is not None else None
        self._log = log if log else None
        # Energy-attribution ledger: every node segment lands in the
        # telemetry bundle's ledger so Fig. 6/7-style breakdowns come
        # from the run itself. None when the run is untraced or the
        # event bus is a null sink — attribution does per-segment dict
        # work, which the events=False cheap mode must not pay.
        self._ledger = config.obs.energy if self._log is not None else None
        # Per-result latency histogram, resolved once: the registry
        # lookup is a dict get, but on the per-frame hot path even that
        # is measurable telemetry overhead.
        self._latency_hist = (
            config.obs.metrics.histogram("frame.latency_s")
            if config.obs is not None
            else None
        )
        self.sim = sim or Simulator(obs=self._log)
        self._validate()

        rng = None
        if config.timing.startup_jitter_s > 0 or config.timing.corruption_prob > 0:
            from repro.sim import RngStreams

            rng = RngStreams(config.seed).stream("link.startup")
        self.hub = HostHub(
            self.sim,
            config.node_names,
            timing=config.timing,
            store_and_forward=config.store_and_forward,
            rng=rng,
            obs=self._log,
        )
        self.monitors: dict[str, BatteryMonitor] = {}
        self.nodes: dict[str, ItsyNode] = {}
        for name in config.node_names:
            battery = config.battery_factory()
            monitor = None
            if config.monitor_interval_s is not None:
                monitor = BatteryMonitor(
                    battery, config.monitor_interval_s, name=name, obs=self._log
                )
                self.monitors[name] = monitor
            self.nodes[name] = ItsyNode(
                self.sim,
                name,
                battery,
                config.power_model,
                config.dvs_table,
                trace=config.trace,
                monitor=monitor,
                obs=self._log,
                ledger=self._ledger,
            )

        self.done: Event = self.sim.event()
        self._end_reason = "unknown"
        self.results_count = 0
        self.result_times: list[float] = []
        self._last_progress = 0.0
        self._first_result_s: float | None = None
        self._prev_result_s = 0.0
        self.late_results = 0
        self.max_lateness_s = 0.0
        self.migrations: list[tuple[float, str]] = []
        self._stage0_holder: str | None = config.node_names[0]
        self._stage0_changed: Event = self.sim.event()
        # Source state lives on the engine (not in _source's locals) so
        # a fast-forward jump can advance the emission grid and frame
        # numbering along with the clock.
        self._frame_seq = 0
        self._next_emit = 0.0
        # Frames currently in flight, by id: a jump must shift their
        # emission timestamps or every post-jump delivery would look
        # epochs late. Only maintained in fast mode.
        self._live_frames: dict[int, Frame] | None = (
            {} if config.fast_forward else None
        )
        self._ff = None

    # -- validation -------------------------------------------------------
    def _validate(self) -> None:
        if not self.config.validate_schedules:
            return
        n = len(self.config.roles)
        for i, role in enumerate(self.config.roles):
            overhead = self._ack_overhead_for_stage(i)
            if self.config.store_and_forward:
                # Inter-node edges cost two serial hops; validate each
                # edge against the timing it will actually see.
                from repro.hw.host import store_and_forward_timing

                inter = store_and_forward_timing(self.config.timing)
                host = self.config.timing
                recv_timing = inter if i > 0 else host
                send_timing = inter if i < n - 1 else host
                recv_s = recv_timing.nominal_duration(role.assignment.recv_bytes)
                send_s = send_timing.nominal_duration(role.assignment.send_bytes)
                proc_s = self.config.dvs_table.scale_time(
                    role.assignment.proc_seconds_at_max, role.comp_level
                )
                busy = recv_s + send_s + overhead + proc_s
                if busy > self.config.deadline_s + 1e-9:
                    from repro.errors import DeadlineMissError

                    raise DeadlineMissError(
                        f"stage{i} (store-and-forward)", busy, self.config.deadline_s
                    )
            else:
                plan_node(
                    role.assignment,
                    self.config.timing,
                    self.config.deadline_s,
                    self.config.dvs_table,
                    overhead_s=overhead,
                    level=role.comp_level,
                )

    def _ack_overhead_for_stage(self, stage: int) -> float:
        """Static per-frame ack time of a stage under the recovery protocol."""
        rec = self.config.recovery
        if rec is None:
            return 0.0
        n_stages = len(self.config.roles)
        acked = 0
        # Inter-node transactions always carry acks: the upstream edge
        # of stages > 0 and the downstream edge of stages < N-1.
        if stage > 0:
            acked += 1
        if stage < n_stages - 1:
            acked += 1
        if not rec.acks_between_nodes_only:
            # Host-facing edges acked too.
            if stage == 0:
                acked += 1
            if stage == n_stages - 1:
                acked += 1
        return rec.per_frame_overhead_s(self.config.timing, acked)

    # -- stage-0 bookkeeping (who receives from the host) ------------------
    def _set_stage0(self, node_name: str | None) -> None:
        self._stage0_holder = node_name
        old, self._stage0_changed = self._stage0_changed, self.sim.event()
        old.succeed(node_name)

    # -- run --------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Execute the experiment and collect the result."""
        cfg = self.config
        if cfg.fast_forward:
            from repro.sim.fastforward import FastForwardController

            ff = FastForwardController(self)
            if ff.install():
                self._ff = ff
        self.sim.process(self._source(), name="host-source")
        for name in cfg.node_names:
            self.sim.process(self._sink_loop(name), name=f"host-sink-{name}")
        for i, name in enumerate(cfg.node_names):
            node = self.nodes[name]
            node.spawn(self._node_loop(node, i), name=f"loop-{name}")
        self.sim.process(self._watchdog(), name="watchdog")
        self.sim.run(until=self.done)

        death_times = {
            name: node.death_time_s
            for name, node in self.nodes.items()
            if node.death_time_s is not None
        }
        delivered = {
            name: node.battery.delivered_mah for name, node in self.nodes.items()
        }
        link_transactions: dict[str, int] = {}
        link_bytes: dict[str, int] = {}
        for link in self.hub.all_links():
            for sender in (link.a, link.b):
                key = f"{sender}->{link.peer_of(sender)}"
                link_transactions[key] = link.transfer_count[sender]
                link_bytes[key] = link.bytes_moved[sender]
        if cfg.obs is not None:
            if self._log is not None:
                # A filled log silently stopped storing; make the
                # truncation visible as a terminal record so replayed
                # monitors and summaries know the stream is incomplete.
                self._log.seal(self.sim.now)
            self._fill_metrics(cfg, link_transactions, link_bytes)
        return PipelineResult(
            frames_completed=self.results_count,
            result_times_s=list(self.result_times),
            end_time_s=self.sim.now,
            end_reason=self._end_reason,
            death_times_s=death_times,
            delivered_mah=delivered,
            migrations=list(self.migrations),
            monitors=dict(self.monitors),
            trace=cfg.trace,
            obs=cfg.obs,
            last_result_s=self._last_progress if self.results_count else None,
            late_results=self.late_results,
            max_lateness_s=self.max_lateness_s,
            frames_processed={
                name: node.frames_processed for name, node in self.nodes.items()
            },
            level_switches={
                name: node.level_switches for name, node in self.nodes.items()
            },
            link_transactions=link_transactions,
            link_bytes=link_bytes,
            stage_stalls={
                name: node.io_stalls for name, node in self.nodes.items()
            },
            events_processed=self.sim.events_processed,
            ff_jumps=self._ff.jumps if self._ff is not None else 0,
            ff_frames_skipped=(
                self._ff.frames_skipped if self._ff is not None else 0
            ),
        )

    def _fill_metrics(
        self,
        cfg: PipelineConfig,
        link_transactions: dict[str, int],
        link_bytes: dict[str, int],
    ) -> None:
        """Absorb the run's loose counters into the metrics registry.

        Everything here is derived from simulated state, so the values
        are deterministic for a given (spec, seed) regardless of how
        many worker processes or cache hits produced them.
        """
        m = cfg.obs.metrics  # type: ignore[union-attr]
        m.counter("frames.completed").inc(self.results_count)
        m.counter("frames.late").inc(self.late_results)
        m.counter("recovery.migrations").inc(len(self.migrations))
        m.counter("kernel.events").inc(self.sim.events_processed)
        m.gauge("frames.max_lateness_s").set(self.max_lateness_s)
        m.gauge("sim.end_time_s").set(self.sim.now)
        for name, node in sorted(self.nodes.items()):
            m.counter(f"node.frames.{name}").inc(node.frames_processed)
            m.counter(f"node.stalls.{name}").inc(node.io_stalls)
            m.counter(f"node.level_switches.{name}").inc(node.level_switches)
            m.gauge(f"node.delivered_mah.{name}").set(node.battery.delivered_mah)
        for key in sorted(link_transactions):
            m.counter(f"link.transactions.{key}").inc(link_transactions[key])
            m.counter(f"link.bytes.{key}").inc(link_bytes[key])
        if cfg.obs.events:  # type: ignore[union-attr]
            for kind, n in cfg.obs.events.counts_by_kind().items():  # type: ignore[union-attr]
                m.counter(f"events.{kind}").inc(n)

    def _finish(self, reason: str) -> None:
        if not self.done.triggered:
            self._end_reason = reason
            self.done.succeed(reason)

    # -- host processes -----------------------------------------------------
    def _source(self) -> t.Generator:
        """Emit one frame every D to the current role-0 holder."""
        cfg = self.config
        input_bytes = cfg.partition.profile.input_bytes
        workload_rng = None
        if cfg.workload is not None:
            from repro.sim import RngStreams

            workload_rng = RngStreams(cfg.seed).stream("workload")
        while True:
            if self.sim.now < self._next_emit:
                yield self.sim.timeout(self._next_emit - self.sim.now)
            scale = 1.0
            if cfg.workload is not None:
                scale = cfg.workload.scale_for(self._frame_seq, workload_rng)
            frame = Frame(id=self._frame_seq, emitted_s=self.sim.now, scale=scale)
            if self._live_frames is not None:
                self._live_frames[frame.id] = frame
            while True:
                target = self._stage0_holder
                if target is None or self.nodes[target].is_dead:
                    # Nobody can take frames; wait for a takeover.
                    yield self._stage0_changed
                    continue
                link = self.hub.host_link(target)
                grant = link.offer_send(frame, input_bytes, frm=HOST_NAME)
                changed = self._stage0_changed
                yield self.sim.any_of([grant, changed])
                if grant.triggered:
                    transfer = grant.value
                    yield transfer.done
                    if cfg.trace is not None:
                        cfg.trace.add(
                            HOST_NAME,
                            transfer.start_s,
                            transfer.end_s,
                            "send",
                            detail=f"frame {frame.id} -> {target}",
                        )
                    if self._log:
                        self._log.emit(
                            "frame.emit",
                            self.sim.now,
                            HOST_NAME,
                            frame=frame.id,
                            to=target,
                            scale=frame.scale,
                        )
                    break
                # Stage 0 moved while we were offering: withdraw, retry.
                link.cancel(grant)
            self._frame_seq += 1
            self._next_emit += cfg.deadline_s

    def _sink_loop(self, node_name: str) -> t.Generator:
        """Accept final results arriving on one node's serial port."""
        link = self.hub.host_link(node_name)
        while True:
            grant = link.offer_recv(to=HOST_NAME)
            transfer = yield grant
            yield transfer.done
            if self.config.trace is not None:
                self.config.trace.add(
                    HOST_NAME,
                    transfer.start_s,
                    transfer.end_s,
                    "recv",
                    detail=f"result {transfer.message.id} <- {node_name}",
                )
            self._record_result(transfer.message)

    def _record_result(self, frame: Frame) -> None:
        self.results_count += 1
        self._last_progress = self.sim.now
        if self._live_frames is not None:
            self._live_frames.pop(frame.id, None)
        if self._first_result_s is None:
            self._first_result_s = self.sim.now
        # The per-frame latency contract implied by §3/§4.5: a frame
        # entering an N-stage pipeline must leave within N * D of its
        # emission. Measuring against each frame's own emission time is
        # robust both to early deliveries (light-workload frames finish
        # ahead of schedule) and to hiccups (a failure migration delays
        # only the frames actually in flight, not every later one).
        contract = len(self.config.roles) * self.config.deadline_s
        latency = self.sim.now - frame.emitted_s
        lateness = latency - contract
        if lateness > self.max_lateness_s:
            self.max_lateness_s = lateness
        if lateness > self.config.lateness_tolerance_s:
            self.late_results += 1
        if self._latency_hist is not None:
            if self._log is not None:
                self._log.emit(
                    "frame.result",
                    self.sim.now,
                    HOST_NAME,
                    frame=frame.id,
                    latency_s=latency,
                    late=lateness > self.config.lateness_tolerance_s,
                )
            self._latency_hist.observe(latency)
        self._prev_result_s = self.sim.now
        if len(self.result_times) < self.keep_result_times:
            self.result_times.append(self.sim.now)
        if (
            self.config.max_frames is not None
            and self.results_count >= self.config.max_frames
        ):
            self._finish("max-frames")
        elif self._ff is not None and not self.done.triggered:
            # Fast-forward hook: a delivery is the cleanest phase point
            # to anchor periodicity detection (and, when two windows
            # match, to warp from — the draw logs and battery states
            # are exactly aligned here by construction).
            self._ff.on_result()

    def _watchdog(self) -> t.Generator:
        """End the run on death-of-all, stall, or horizon."""
        cfg = self.config
        self._last_progress = self.sim.now
        check = max(cfg.deadline_s, 1.0)
        while not self.done.triggered:
            yield self.sim.timeout(check)
            if all(node.is_dead for node in self.nodes.values()):
                self._finish("all-dead")
                return
            stalled_for = self.sim.now - self._last_progress
            any_dead = any(node.is_dead for node in self.nodes.values())
            if any_dead and stalled_for > cfg.stall_timeout_s:
                self._finish("stall")
                return
            if self.sim.now >= cfg.horizon_s:
                self._finish("horizon")
                return

    # -- node behaviour ------------------------------------------------------
    def _upstream(self, node_name: str, role: int) -> tuple[SerialLink, str]:
        """Link and peer a role receives its input on (physical ring)."""
        if role == 0:
            return self.hub.host_link(node_name), HOST_NAME
        names = self.config.node_names
        i = names.index(node_name)
        peer = names[(i - 1) % len(names)]
        return self.hub.link(peer, node_name), peer

    def _downstream(self, node_name: str, role: int) -> tuple[SerialLink, str]:
        """Link and peer a role sends its output on (physical ring)."""
        if role == len(self.config.roles) - 1:
            return self.hub.host_link(node_name), HOST_NAME
        names = self.config.node_names
        i = names.index(node_name)
        peer = names[(i + 1) % len(names)]
        return self.hub.link(node_name, peer), peer

    def _proc_blocks(
        self,
        node: ItsyNode,
        assignment: NodeAssignment,
        rolecfg: RoleConfig,
        frame: Frame,
    ) -> t.Generator:
        """Execute a stage's blocks back to back (per-block trace segments).

        Block times scale with the frame's workload factor. With
        adaptive_workload_dvs the compute level is re-chosen for this
        frame's actual work against the stage's PROC budget (clamped at
        the table maximum — an overload then simply runs late, which
        the sink's lateness accounting records).
        """
        level = rolecfg.comp_level
        if self.config.adaptive_workload_dvs and frame.scale != 1.0:
            required = self.config.dvs_table.required_mhz(
                assignment.proc_seconds_at_max * frame.scale,
                rolecfg.proc_budget_s or 0.0,
            )
            level = (
                self.config.dvs_table.max
                if required > self.config.dvs_table.max.mhz
                else self.config.dvs_table.ceil(required)
            )
        profile = self.config.partition.profile
        log = self._log
        for bi in range(assignment.block_start, assignment.block_stop):
            block = profile.blocks[bi]
            t0 = self.sim.now
            yield from node.compute(
                block.seconds_at_max * frame.scale,
                level,
                "proc",
                detail=f"{block.name} f{frame.id}",
            )
            if log is not None:
                # Per-block compute record: the causal tracer rebuilds
                # Fig. 6's per-block breakdown from these.
                log.emit(
                    "proc.block",
                    self.sim.now,
                    node.name,
                    frame=frame.id,
                    block=block.name,
                    duration_s=self.sim.now - t0,
                    mhz=level.mhz,
                )
        frame.stages_done += 1

    def _node_loop(self, node: ItsyNode, node_index: int) -> t.Generator:
        """The per-node frame loop, with rotation or recovery if configured."""
        cfg = self.config
        n_stages = len(cfg.roles)
        role = node_index
        migrated = False

        if role == 0:
            self._set_stage0(node.name)

        while True:
            rolecfg = self._merged_role() if migrated else cfg.roles[role]
            assignment = rolecfg.assignment

            # ---- RECV -------------------------------------------------
            up_link, up_peer = (
                (self.hub.host_link(node.name), HOST_NAME)
                if migrated
                else self._upstream(node.name, role)
            )
            grant = up_link.offer_recv(to=node.name)
            detail = f"from {up_peer}"
            if cfg.recovery is not None and up_peer != HOST_NAME:
                transfer = yield from node.transfer_or_timeout(
                    up_link, grant, rolecfg.io_level, "recv",
                    cfg.recovery.detect_timeout_s, detail,
                )
                if transfer is None:
                    migrated = yield from self._migrate(node)
                    continue
                # Acknowledge the data with a reverse transaction.
                yield from self._send_ack(node, up_link, rolecfg.io_level, transfer.message)
            else:
                transfer = yield from node.transfer(
                    up_link, grant, rolecfg.io_level, "recv", detail
                )
                if cfg.recovery is not None and not cfg.recovery.acks_between_nodes_only and not migrated:
                    # Host-facing ack, modelled as pure node-side comm time.
                    yield from node.comm_delay(
                        cfg.recovery.ack_duration_s(cfg.timing),
                        rolecfg.io_level, "ack", "to host",
                    )
            frame: Frame = transfer.message

            # ---- PROC -------------------------------------------------
            yield from self._proc_blocks(node, assignment, rolecfg, frame)

            # ---- rotation transition (roles 0..N-2): continue as role+1
            if (
                cfg.rotation is not None
                and not migrated
                and role < n_stages - 1
                and cfg.rotation.is_rotation_frame(frame.id, role)
            ):
                role += 1
                rolecfg = cfg.roles[role]
                assignment = rolecfg.assignment
                if self._log:
                    self._log.emit(
                        "rotation.reconfig",
                        self.sim.now,
                        node.name,
                        **cfg.rotation.reconfig_event(frame.id, role - 1, role),
                    )
                if cfg.rotation.reconfig_seconds > 0:
                    yield from node.reconfigure(
                        cfg.rotation.reconfig_seconds, f"-> role {role}"
                    )
                yield from self._proc_blocks(node, assignment, rolecfg, frame)

            # ---- SEND -------------------------------------------------
            down_link, down_peer = (
                (self.hub.host_link(node.name), HOST_NAME)
                if migrated
                else self._downstream(node.name, role)
            )
            grant = down_link.offer_send(
                frame, assignment.send_bytes, frm=node.name
            )
            detail = f"to {down_peer}"
            if cfg.recovery is not None and down_peer != HOST_NAME:
                transfer = yield from node.transfer_or_timeout(
                    down_link, grant, rolecfg.io_level, "send",
                    cfg.recovery.detect_timeout_s, detail, frame=frame.id,
                )
                if transfer is None:
                    migrated = yield from self._migrate(node)
                    continue
                ack = yield from self._await_ack(node, down_link, rolecfg.io_level)
                if ack is None:
                    migrated = yield from self._migrate(node)
                    continue
            else:
                yield from node.transfer(
                    down_link, grant, rolecfg.io_level, "send", detail,
                    frame=frame.id,
                )
                if (
                    cfg.recovery is not None
                    and not cfg.recovery.acks_between_nodes_only
                ):
                    yield from node.comm_delay(
                        cfg.recovery.ack_duration_s(cfg.timing),
                        rolecfg.io_level, "ack", "from host",
                    )
            node.frames_processed += 1

            # ---- sleep through the trailing slack (extension) -----------
            if cfg.sleep_in_slack and not migrated:
                proc_s = (
                    assignment.proc_seconds_at_max
                    * self.config.dvs_table.max.mhz
                    / rolecfg.comp_level.mhz
                )
                slack = (rolecfg.proc_budget_s or 0.0) - proc_s
                window = slack - cfg.sleep_wake_latency_s
                if window >= cfg.sleep_min_slack_s:
                    yield from node.sleep_for(window, cfg.sleep_wake_latency_s)

            # ---- rotation transition (last role): become role 0 --------
            if (
                cfg.rotation is not None
                and not migrated
                and role == n_stages - 1
                and cfg.rotation.is_rotation_frame(frame.id, role)
            ):
                role = 0
                if self._log:
                    self._log.emit(
                        "rotation.reconfig",
                        self.sim.now,
                        node.name,
                        **cfg.rotation.reconfig_event(frame.id, n_stages - 1, 0),
                    )
                if cfg.rotation.reconfig_seconds > 0:
                    yield from node.reconfigure(
                        cfg.rotation.reconfig_seconds, "-> role 0"
                    )
                self._set_stage0(node.name)

    # -- recovery protocol helpers -------------------------------------
    def _send_ack(self, node: ItsyNode, link: SerialLink, io_level: FrequencyLevel, frame: Frame) -> t.Generator:
        """Receiver side: acknowledge a data transaction (reverse direction)."""
        rec = self.config.recovery
        assert rec is not None
        grant = link.offer_send(_Ack(frame.id), rec.ack_payload_bytes, frm=node.name)
        transfer = yield from node.transfer_or_timeout(
            link, grant, io_level, "ack", rec.detect_timeout_s, f"ack f{frame.id}",
            frame=frame.id,
        )
        return transfer

    def _await_ack(self, node: ItsyNode, link: SerialLink, io_level: FrequencyLevel) -> t.Generator:
        """Sender side: wait for the receiver's acknowledgment."""
        rec = self.config.recovery
        assert rec is not None
        grant = link.offer_recv(to=node.name)
        transfer = yield from node.transfer_or_timeout(
            link, grant, io_level, "ack", rec.detect_timeout_s, "await ack"
        )
        return transfer

    def _merged_role(self) -> RoleConfig:
        """The whole-chain role a recovery survivor runs."""
        rec = self.config.recovery
        assert rec is not None
        merged = self.config.partition.merged(0, self.config.partition.n_stages)
        comp = rec.migrated_comp_level or self.config.dvs_table.max
        io = rec.migrated_io_level or comp
        return RoleConfig(assignment=merged, comp_level=comp, io_level=io)

    def _migrate(self, node: ItsyNode) -> t.Generator:
        """Absorb the dead neighbour's share and take over the pipeline."""
        self.migrations.append((self.sim.now, node.name))
        rec = self.config.recovery
        if self._log and rec is not None:
            self._log.emit(
                "recovery.migrate",
                self.sim.now,
                node.name,
                **rec.migration_event(node.name),
            )
        self._set_stage0(node.name)
        # Reconfiguration: load the full-chain code. Charged like a
        # rotation reconfiguration; one frame delay is a conservative
        # figure for reloading both blocks' code from flash.
        yield from node.reconfigure(0.0, "migrate")
        return True
