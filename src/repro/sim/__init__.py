"""Deterministic discrete-event simulation kernel.

This is the substrate every experiment runs on. It is a small,
self-contained, SimPy-flavoured kernel:

- :class:`~repro.sim.kernel.Simulator` owns the clock and the event heap.
- :class:`~repro.sim.events.Event` is the unit of synchronization.
- :class:`~repro.sim.process.Process` wraps a generator coroutine; the
  generator ``yield``\\ s events and is resumed with their values.
- :class:`~repro.sim.resources.Channel` / :class:`~repro.sim.resources.Resource`
  provide message passing and mutual exclusion between processes.
- :class:`~repro.sim.trace.TraceRecorder` records piecewise-constant
  activity segments (who, what mode, what current) for figures and
  energy accounting.
- :class:`~repro.sim.rng.RngStreams` hands out named, independently
  seeded random streams so experiments are reproducible.

The kernel is deterministic: ties in time are broken by insertion
order, and no wall-clock or global randomness is consulted anywhere.
"""

from repro.sim.events import Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Channel, Resource
from repro.sim.rng import RngStreams
from repro.sim.trace import Segment, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Channel",
    "Resource",
    "RngStreams",
    "TraceRecorder",
    "Segment",
]
