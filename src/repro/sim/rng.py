"""Named, independently seeded random streams.

Experiments must be reproducible: the same configuration and seed must
produce bit-identical results. :class:`RngStreams` derives one
:class:`numpy.random.Generator` per *named* stream from a root seed via
``numpy``'s ``SeedSequence.spawn`` convention keyed by the stream name,
so adding a new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory for deterministic per-purpose random generators.

    Parameters
    ----------
    seed:
        Root seed. Two :class:`RngStreams` with the same seed hand out
        identical streams for identical names.

    Examples
    --------
    >>> a = RngStreams(7).stream("link.startup")
    >>> b = RngStreams(7).stream("link.startup")
    >>> float(a.uniform()) == float(b.uniform())
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the *same generator object* within
        one :class:`RngStreams` instance, so consumption is stateful per
        stream but isolated across streams.
        """
        if name not in self._cache:
            # Key the child seed on a stable hash of the stream name so
            # stream identity does not depend on creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_key,))
            self._cache[name] = np.random.Generator(np.random.PCG64(seq))
        return self._cache[name]

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (e.g. per replication)."""
        return RngStreams(self.seed * 1_000_003 + int(salt))
