"""Inter-process coordination primitives: channels and resources.

- :class:`Channel` is an unbounded (or bounded) FIFO message queue with
  blocking ``get``. It models a mailbox: the serial-link and pipeline
  code use channels to hand frames between node processes.
- :class:`Resource` is a counting semaphore with FIFO discipline. The
  host hub uses one to serialize transactions that share a port.
"""

from __future__ import annotations

import collections
import typing as t

from repro.errors import SimulationError
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Channel", "Resource"]


class Channel:
    """FIFO message queue with blocking ``get`` and optional capacity.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum queued items; ``None`` (default) means unbounded.
        ``put`` on a full bounded channel blocks until space frees up.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> ch = Channel(sim)
    >>> out = []
    >>> def consumer(sim, ch):
    ...     item = yield ch.get()
    ...     out.append(item)
    >>> def producer(sim, ch):
    ...     yield sim.timeout(1.0)
    ...     yield ch.put("frame-0")
    >>> _ = sim.process(consumer(sim, ch)); _ = sim.process(producer(sim, ch))
    >>> sim.run(); out
    ['frame-0']
    """

    def __init__(self, sim: "Simulator", capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"channel capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: collections.deque[t.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, t.Any]] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of processes currently blocked in ``get``."""
        return len(self._getters)

    def put(self, item: t.Any) -> Event:
        """Enqueue ``item``; returns an event that fires once stored."""
        done = Event(self.sim)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((done, item))
            return done
        self._deliver(item)
        done.succeed(None)
        return done

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        got = Event(self.sim)
        if self._items:
            got.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> tuple[bool, t.Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _deliver(self, item: t.Any) -> None:
        """Hand ``item`` to a blocked getter, or queue it."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _admit_putter(self) -> None:
        """After a dequeue, unblock the oldest blocked putter (if any)."""
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            done, item = self._putters.popleft()
            self._deliver(item)
            done.succeed(None)


class Resource:
    """Counting semaphore with FIFO queueing.

    ``request()`` yields an event that fires once a slot is held; the
    holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._queue)

    def request(self) -> Event:
        """Return an event that fires once a slot is acquired."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        """Release a held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._queue:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._queue.popleft().succeed(None)
        else:
            self._in_use -= 1
