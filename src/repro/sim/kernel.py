"""The simulation kernel: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Owns simulated time and dispatches events in timestamp order.

    Determinism: events scheduled for the same timestamp are processed
    in scheduling order (a monotonically increasing sequence number
    breaks ties), so repeated runs of the same model produce identical
    traces.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc(sim):
    ...     yield sim.timeout(1.5)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc(sim))
    >>> sim.run()
    >>> log
    [1.5]
    """

    def __init__(self, obs: t.Any = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0
        #: Optional telemetry event bus (anything with ``emit``; falsy
        #: when disabled). The kernel publishes coarse scheduling
        #: records — process starts and run-loop exits — never
        #: per-event records, so instrumentation cannot dominate
        #: dispatch. A falsy bus (a disabled EventLog) is normalized to
        #: None here so the emit-site guard is a C-level None test
        #: rather than a Python-level ``__bool__`` call per check.
        self.obs = obs if obs else None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far (diagnostics)."""
        return self._event_count

    # -- event construction --------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`~repro.sim.events.Event`."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: t.Sequence[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: t.Sequence[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def process(self, generator: t.Generator, name: str | None = None) -> "Process":
        """Start a new process running ``generator``; returns the Process.

        The process is itself an event that fires with the generator's
        return value, so processes can wait on each other.
        """
        from repro.sim.process import Process

        process = Process(self, generator, name=name)
        if self.obs is not None:
            self.obs.emit(
                "kernel.process", self._now, process.name or "", queued=len(self._heap)
            )
        return process

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, *, delay: float = 0.0) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def warp(self, delta: float) -> None:
        """Advance the clock by ``delta``, dragging every pending event along.

        The fast-forward engine (:mod:`repro.sim.fastforward`) uses this
        to skip whole steady-state epochs: after batteries and counters
        have been advanced analytically, the pending schedule is shifted
        rigidly into the future. A uniform shift preserves both the heap
        invariant and same-timestamp tie order (sequence numbers are
        untouched), so the simulation resumes exactly as if the skipped
        interval had been played out — provided the caller really did
        account for everything that would have happened in it.
        """
        if delta < 0:
            raise SimulationError(f"cannot warp backwards (delta={delta})")
        self._now += delta
        heap = self._heap
        for i, (when, seq, event) in enumerate(heap):
            heap[i] = (when + delta, seq, event)

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Timestamp of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError(f"time went backwards: {when} < {self._now}")
        self._now = when
        self._event_count += 1
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> None:
        """Run until the queue drains, ``until`` seconds, or an event fires.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            ``float``
                run until simulated time reaches the given timestamp;
                the clock is advanced to exactly that value. Events
                scheduled *at* the horizon are processed, including
                when the horizon equals the current time.
            :class:`Event`
                run until the given event has been *processed*. Raises
                :class:`SimulationError` if the queue drains first.

        Notes
        -----
        The dispatch loops below are intentionally inlined (no
        :meth:`step` call, callback lists drained in place): the kernel
        dispatches hundreds of thousands of events per experiment and
        the per-event call overhead is the dominant cost of a run.
        Semantics are identical to repeated :meth:`step` calls.
        """
        heap = self._heap
        pop = heapq.heappop
        count = 0
        try:
            if until is None:
                while heap:
                    when, _, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                return

            if isinstance(until, Event):
                stop = until
                while not stop.processed:
                    if not heap:
                        raise SimulationError(
                            "event queue drained before the 'until' event fired"
                        )
                    when, _, event = pop(heap)
                    self._now = when
                    count += 1
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                return

            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}: clock already at {self._now}"
                )
            while heap and heap[0][0] <= horizon:
                when, _, event = pop(heap)
                self._now = when
                count += 1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            self._now = horizon
        finally:
            self._event_count += count
            if self.obs is not None:
                self.obs.emit(
                    "kernel.run",
                    self._now,
                    "",
                    events=count,
                    total_events=self._event_count,
                    queued=len(heap),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6g} queued={len(self._heap)}>"
