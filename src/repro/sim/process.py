"""Generator-coroutine processes.

A process wraps a Python generator. The generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects to suspend; when the event
fires, the generator is resumed with the event's value (or the event's
exception is thrown into it). The process object is itself an event
that fires with the generator's return value, so processes compose:
``result = yield sim.process(child(sim))``.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process's generator by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary payload describing why the interrupt happened (e.g. a
        battery-death notification or a failure-detection timeout).
    """

    def __init__(self, cause: t.Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator coroutine inside the simulation.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The coroutine body. Must be a generator (the result of calling a
        generator function).
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: t.Generator, name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Bootstrap: resume the generator for the first time "immediately".
        bootstrap = Event(sim)
        bootstrap.succeed(None)
        bootstrap.add_callback(self._resume)

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    # -- interruption ------------------------------------------------------
    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process twice before it resumes queues both interrupts in order.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        event = Event(self.sim)
        event.fail(Interrupt(cause))
        # Detach from whatever the process was waiting on: the original
        # event's callback must become a no-op for this process.
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        event.add_callback(self._resume)

    # -- kernel plumbing ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process "normally
            # with cause": model code treats e.g. battery death this way.
            self.succeed(exc.cause)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event objects"
            )
            self.generator.close()
            self.fail(error)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
