"""Activity traces: piecewise-constant segments of node state.

The paper's Figs. 2, 3 and 9 are timing-vs-power diagrams. The
:class:`TraceRecorder` captures exactly that: for each actor (node) a
sequence of :class:`Segment`\\ s — time interval, activity label (e.g.
``"recv"``, ``"proc"``, ``"send"``, ``"idle"``), operating frequency and
battery current. The analysis layer renders these as Gantt charts and
the tests use them to assert schedule invariants.
"""

from __future__ import annotations

import dataclasses
import typing as t

__all__ = ["Segment", "TraceRecorder"]


@dataclasses.dataclass(frozen=True)
class Segment:
    """One piecewise-constant activity interval of one actor.

    Attributes
    ----------
    actor:
        Name of the node (or other actor) the segment belongs to.
    start, end:
        Interval bounds in simulated seconds; ``end >= start``.
    activity:
        Label such as ``"recv"``, ``"proc"``, ``"send"``, ``"idle"``,
        ``"reconfig"``, ``"dead"``.
    frequency_mhz:
        CPU frequency in effect during the segment.
    current_ma:
        Battery current draw during the segment.
    detail:
        Free-form annotation (frame id, peer, payload size...).
    """

    actor: str
    start: float
    end: float
    activity: str
    frequency_mhz: float = 0.0
    current_ma: float = 0.0
    detail: str = ""

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start

    @property
    def charge_mas(self) -> float:
        """Charge drawn over the segment, in mA*s."""
        return self.current_ma * self.duration

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable dict form; :meth:`from_dict` reloads it
        bit-identically (floats round-trip through ``repr``)."""
        return {
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
            "activity": self.activity,
            "frequency_mhz": self.frequency_mhz,
            "current_ma": self.current_ma,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "Segment":
        """Rebuild a segment from :meth:`as_dict` output."""
        return cls(
            actor=payload["actor"],
            start=payload["start"],
            end=payload["end"],
            activity=payload["activity"],
            frequency_mhz=payload.get("frequency_mhz", 0.0),
            current_ma=payload.get("current_ma", 0.0),
            detail=payload.get("detail", ""),
        )


class TraceRecorder:
    """Collects :class:`Segment` objects per actor.

    A recorder can be disabled (``enabled=False``) to make long
    discharge runs allocation-free; recording calls become no-ops.
    """

    def __init__(self, enabled: bool = True, horizon: float | None = None):
        self.enabled = enabled
        #: Only segments starting before ``horizon`` are kept (None = all).
        self.horizon = horizon
        self._segments: dict[str, list[Segment]] = {}

    def record(self, segment: Segment) -> None:
        """Store one segment (no-op when disabled or past the horizon)."""
        if not self.enabled:
            return
        if self.horizon is not None and segment.start >= self.horizon:
            return
        self._segments.setdefault(segment.actor, []).append(segment)

    def add(
        self,
        actor: str,
        start: float,
        end: float,
        activity: str,
        *,
        frequency_mhz: float = 0.0,
        current_ma: float = 0.0,
        detail: str = "",
    ) -> None:
        """Convenience wrapper building and recording a :class:`Segment`."""
        if not self.enabled:
            return
        self.record(
            Segment(
                actor=actor,
                start=start,
                end=end,
                activity=activity,
                frequency_mhz=frequency_mhz,
                current_ma=current_ma,
                detail=detail,
            )
        )

    # -- queries -----------------------------------------------------------
    @property
    def actors(self) -> list[str]:
        """Actors that have at least one recorded segment, in first-seen order."""
        return list(self._segments)

    def segments(self, actor: str) -> list[Segment]:
        """All segments recorded for ``actor`` (empty list if none)."""
        return list(self._segments.get(actor, []))

    def all_segments(self) -> list[Segment]:
        """Every recorded segment, ordered by (actor-first-seen, time)."""
        out: list[Segment] = []
        for actor in self._segments:
            out.extend(self._segments[actor])
        return out

    def total_charge_mas(self, actor: str) -> float:
        """Total charge drawn by ``actor`` across its recorded segments."""
        return sum(s.charge_mas for s in self._segments.get(actor, []))

    def busy_time(self, actor: str, activities: t.Collection[str]) -> float:
        """Total time ``actor`` spent in any of the given activities."""
        wanted = set(activities)
        return sum(
            s.duration for s in self._segments.get(actor, []) if s.activity in wanted
        )

    def clear(self) -> None:
        """Drop all recorded segments."""
        self._segments.clear()

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload (config + segments) for caches and workers."""
        return {
            "enabled": self.enabled,
            "horizon": self.horizon,
            "segments": [s.as_dict() for s in self.all_segments()],
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "TraceRecorder":
        """Rebuild a recorder, segments included, from :meth:`as_dict`.

        The reload is bit-identical: segment order (actor-first-seen,
        then time) and every float survive the JSON round trip.
        """
        recorder = cls(
            enabled=payload.get("enabled", True), horizon=payload.get("horizon")
        )
        for segment_payload in payload.get("segments", []):
            segment = Segment.from_dict(segment_payload)
            recorder._segments.setdefault(segment.actor, []).append(segment)
        return recorder
