"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` starts *pending*, is *triggered* with a value (or an
exception) exactly once, and then runs its callbacks when the simulator
pops it off the heap. Processes (see :mod:`repro.sim.process`) yield
events to suspend until they fire.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

__all__ = ["Event", "Timeout", "AnyOf", "AllOf"]

# Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.

    Notes
    -----
    The life cycle is ``pending -> triggered -> processed``. Values and
    exceptions are mutually exclusive: :meth:`succeed` sets a value,
    :meth:`fail` sets an exception that will be raised inside every
    waiting process.

    Events are the unit currency of the kernel — a paper-scale run
    allocates hundreds of thousands — so the hierarchy uses
    ``__slots__`` throughout to keep instances small and attribute
    access cheap.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: t.Any = _PENDING
        self._exception: BaseException | None = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the heap)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (has a value, not an exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> t.Any:
        """The value the event was triggered with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The exception the event failed with, if any."""
        return self._exception

    # -- triggering ------------------------------------------------------
    def succeed(self, value: t.Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event with ``value`` after ``delay`` sim-seconds."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self._value = None
        self.sim.schedule(self, delay=delay)
        return self

    # -- kernel interface -------------------------------------------------
    def _run_callbacks(self) -> None:
        """Invoked by the simulator when the event is popped off the heap."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: t.Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately —
        this lets a process safely wait on an event that fired earlier.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    ``yield sim.timeout(2.3)`` suspends the yielding process for 2.3
    simulated seconds.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: t.Any = None):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim.schedule(self, delay=delay)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("all events must belong to the same simulator")
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                self._pending += 1
                event.add_callback(self._observe)
        self._check_empty()

    def _check_empty(self) -> None:
        if not self.events and not self.triggered:
            self.succeed(self._result())

    def _observe(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _result(self) -> t.Any:
        # Only *processed* events count: a Timeout is "triggered" (its
        # value is known) from construction, but it has not happened
        # until the kernel dispatches it.
        return {
            e: e._value
            for e in self.events
            if e.processed and e._exception is None
        }


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires.

    The value is a dict mapping the already-fired events to their values.
    A failed constituent fails the condition.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
        else:
            self.succeed(self._result())


class AllOf(_Condition):
    """Fires once every constituent event has fired.

    The value is a dict mapping all events to their values. A failed
    constituent fails the condition immediately.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed(self._result())
