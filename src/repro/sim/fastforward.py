"""Steady-state epoch fast-forward for battery-exhaustion runs.

The paper's workload is strictly periodic — one ATR frame every D
seconds until the batteries give out — so after the pipeline fills, the
simulation replays the *same* per-frame event schedule tens of
thousands of times, changing nothing but the battery state. This module
detects that steady state and skips whole epochs of it analytically:

1. **Detection.** Frame deliveries at the host sink anchor the period.
   Every P results (P = 1, or ``n_stages * rotation.period`` under
   §5.5 rotation, whose *system* state only recurs once every node has
   held every role) the controller snapshots every counter and the
   per-node battery-draw logs. Two consecutive windows that match —
   identical ``(current, dt, mode, bucket)`` draw sequences per node,
   identical counter deltas, equal anchor spacing — mean the system
   state is periodic: the next period will replay the last one exactly.
2. **The jump.** ``n`` periods are advanced at once: each battery
   through :meth:`KiBaM.advance_cycles
   <repro.hw.battery.kibam.KiBaM.advance_cycles>` (an O(log n) affine
   map power over the recorded cycle), every counter arithmetically,
   and the pending event schedule rigidly via :meth:`Simulator.warp
   <repro.sim.kernel.Simulator.warp>`. Because the recorded window ends
   exactly at the current draw-log position, the cycle is phase-aligned
   with the lazily-integrated battery state — no cyclic-shift error.
3. **Re-synchronization.** ``n`` is capped so the jump can never
   overshoot a boundary that breaks periodicity: battery death (a
   margin of whole cycles below ``available_mas / drain``, which also
   satisfies the ``advance_cycles`` safety precondition), ``max_frames``
   and the horizon. Everything else that breaks periodicity — DVS
   policy switches, rotation epochs (folded into P), recovery
   migrations and timeouts — simply makes consecutive windows differ,
   so the run stays event-exact through the transition and the detector
   re-arms afterwards (e.g. for a recovery survivor's new steady state).

Runs whose timing or workload is stochastic never detect a period (the
windows never match), so ``mode="fast"`` degrades gracefully to exact
simulation; the controller additionally refuses to install when a
random stream *could* advance per frame (link jitter, workload models),
because skipping frames would desynchronize the stream even if the
drawn values happened to repeat.

Each jump is reported as one coalesced ``ff.epoch`` telemetry event
(frames, periods, span, per-node drain, per-direction link busy time)
so event-log digests and the invariant monitors in
:mod:`repro.obs.checks` stay well-defined in fast mode.
"""

from __future__ import annotations

import typing as t
from collections import deque

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.engine import PipelineEngine

__all__ = ["FastForwardController"]


def _timing_is_deterministic(timing: t.Any) -> bool:
    """True when link transactions consume no randomness."""
    return (
        getattr(timing, "startup_jitter_s", 0.0) == 0.0
        and getattr(timing, "corruption_prob", 0.0) == 0.0
    )


def _battery_supports_cycles(battery: t.Any) -> bool:
    """True when the battery exposes the analytic multi-cycle interface."""
    return hasattr(battery, "advance_cycles") and hasattr(battery, "available_mas")


class FastForwardController:
    """Detects pipeline steady state and applies epoch jumps.

    Installed by :class:`~repro.pipeline.engine.PipelineEngine` when the
    config requests fast-forward; driven entirely by the engine's
    result-delivery hook (no process of its own), so a run that never
    reaches steady state costs only the per-segment draw logging.
    """

    #: Smallest worthwhile jump: below this the detection bookkeeping
    #: costs more than the skipped events, and near death it prevents an
    #: asymptotic trickle of ever-smaller jumps.
    MIN_EPOCHS = 4
    #: Whole cycles of charge left un-jumped above the death boundary.
    #: Two cycles satisfies advance_cycles' documented sufficiency
    #: margin (``available > (n+1) * drain``) with one cycle to spare,
    #: so the endgame — death mid-cycle — is always simulated exactly.
    DEATH_MARGIN_CYCLES = 2

    def __init__(self, engine: "PipelineEngine"):
        self.engine = engine
        self.sim = engine.sim
        cfg = engine.config
        rot = cfg.rotation
        #: Frames per candidate period: the system state recurs every
        #: frame normally, but only every full rotation cycle under
        #: §5.5 (each node must return to its original role).
        self.period_frames = rot.period * rot.n_stages if rot is not None else 1
        self.enabled = (
            cfg.workload is None
            and _timing_is_deterministic(cfg.timing)
            and all(
                _battery_supports_cycles(n.battery) for n in engine.nodes.values()
            )
        )
        #: Jumps applied / frames and simulated seconds skipped.
        self.jumps = 0
        self.frames_skipped = 0
        self.time_skipped_s = 0.0

        self._node_list = list(engine.nodes.items())
        self._n_nodes = len(self._node_list)
        # Links are created lazily by the hub as traffic first flows, so
        # the set is re-resolved at every anchor (it only ever grows and
        # stabilizes within the first frame; anchors with different link
        # sets are never compared).
        self._link_senders: list[tuple[t.Any, str]] = []
        self._refresh_links()
        # Draw logs are shared list objects installed into the nodes;
        # anchors store *absolute* indices (base + len) so logs can be
        # trimmed as anchors age out of the 3-deep window.
        self._logs: dict[str, list] = {}
        self._base: dict[str, int] = {}
        self._anchors: deque = deque(maxlen=3)
        self._next_anchor = 0

    # -- installation ------------------------------------------------------
    def install(self) -> bool:
        """Attach draw logs to the nodes; returns False when gated off."""
        if not self.enabled:
            return False
        for name, node in self._node_list:
            log: list = []
            self._logs[name] = log
            self._base[name] = 0
            node._draw_log = log
        self._next_anchor = self.engine.results_count + self.period_frames
        return True

    # -- detection ---------------------------------------------------------
    def on_result(self) -> None:
        """Engine hook: called after every delivered result."""
        if self.engine.results_count < self._next_anchor:
            return
        self._take_anchor()
        self._next_anchor = self.engine.results_count + self.period_frames
        if len(self._anchors) == 3:
            self._maybe_jump()

    def _refresh_links(self) -> None:
        links = self.engine.hub.all_links()
        if 2 * len(links) != len(self._link_senders):
            self._link_senders = [
                (link, sender) for link in links for sender in (link.a, link.b)
            ]

    def _take_anchor(self) -> None:
        eng = self.engine
        self._refresh_links()
        self._anchors.append(
            (
                eng.results_count,
                self.sim.now,
                {
                    name: self._base[name] + len(log)
                    for name, log in self._logs.items()
                },
                self._counter_snapshot(),
            )
        )
        if len(self._anchors) == 3:
            # Entries before the oldest retained anchor can never be
            # compared again; drop them so memory stays ~3 periods.
            oldest = self._anchors[0][2]
            for name, log in self._logs.items():
                cut = oldest[name] - self._base[name]
                if cut > 0:
                    del log[:cut]
                    self._base[name] += cut

    def _counter_snapshot(self) -> tuple:
        """Every counter a jump must advance, as one flat tuple.

        Layout: frame_seq, late_results, migrations, then per-node
        frames_processed / level_switches / io_stalls blocks, then
        per-direction link transfer counts, then link byte counts.
        """
        eng = self.engine
        nodes = self._node_list
        parts: list[int] = [eng._frame_seq, eng.late_results, len(eng.migrations)]
        parts.extend(n.frames_processed for _, n in nodes)
        parts.extend(n.level_switches for _, n in nodes)
        parts.extend(n.io_stalls for _, n in nodes)
        parts.extend(link.transfer_count[s] for link, s in self._link_senders)
        parts.extend(link.bytes_moved[s] for link, s in self._link_senders)
        return tuple(parts)

    def _maybe_jump(self) -> None:
        (c0, t0, i0, s0), (c1, t1, i1, s1), (c2, t2, i2, s2) = self._anchors
        if c1 - c0 != c2 - c1:
            return
        if len(s0) != len(s1) or len(s1) != len(s2):
            return  # a link appeared mid-window; wait for fresh anchors
        period = t2 - t1
        if period <= 0 or abs((t1 - t0) - period) > 1e-9 * max(period, 1.0):
            return
        d1 = tuple(b - a for a, b in zip(s0, s1))
        d2 = tuple(b - a for a, b in zip(s1, s2))
        # Identical counter deltas, and no migration inside the window
        # (a migration means the schedule is still reshaping).
        if d1 != d2 or d2[2] != 0:
            return
        cycles: dict[str, list[tuple[float, float, str, str]]] = {}
        for name, log in self._logs.items():
            base = self._base[name]
            a, b, c = i0[name] - base, i1[name] - base, i2[name] - base
            if b - a != c - b:
                return
            w1, w2 = log[a:b], log[b:c]
            for (cur1, dt1, m1, b1), (cur2, dt2, m2, b2) in zip(w1, w2):
                # Currents, modes and attribution buckets must repeat
                # exactly; durations get a relative tolerance because
                # the emission grid is a float accumulation (last-ulp
                # wobble is expected).
                if (
                    cur1 != cur2
                    or m1 != m2
                    or b1 != b2
                    or abs(dt1 - dt2) > 1e-9 * (dt1 + 1.0)
                ):
                    return
            cycles[name] = w2
        self._jump(period, c2 - c1, d2, cycles)

    # -- the jump ----------------------------------------------------------
    def _epoch_budget(
        self,
        period_s: float,
        frames_per_period: int,
        cycles: dict[str, list[tuple[float, float, str, str]]],
    ) -> int:
        """Largest number of periods the jump may safely skip."""
        eng = self.engine
        cfg = eng.config
        n: int | None = None
        for name, node in self._node_list:
            if node.is_dead:
                continue
            drain = sum(cur * dt for cur, dt, *_ in cycles[name])
            if drain <= 0.0:
                continue
            k = int(node.battery.available_mas / drain) - self.DEATH_MARGIN_CYCLES
            n = k if n is None else min(n, k)
        if n is None:
            # Nothing drains: the run would never end by exhaustion, so
            # there is no death boundary to race toward — don't jump
            # (max_frames/horizon runs end through exact simulation).
            return 0
        if cfg.max_frames is not None:
            n = min(n, (cfg.max_frames - eng.results_count - 1) // frames_per_period)
        n = min(n, int((cfg.horizon_s - self.sim.now) / period_s) - 1)
        return max(n, 0)

    def _jump(
        self,
        period_s: float,
        frames_per_period: int,
        delta: tuple,
        cycles: dict[str, list[tuple[float, float, str, str]]],
    ) -> None:
        n = self._epoch_budget(period_s, frames_per_period, cycles)
        if n < self.MIN_EPOCHS:
            return
        eng = self.engine
        sim = self.sim
        t_before = sim.now
        span = n * period_s

        # Batteries first (advance_cycles validates its own margin and
        # must see the pre-jump state), then the clock and schedule,
        # then per-node time state against the *new* clock.
        for name, node in self._node_list:
            if node.is_dead or not cycles[name]:
                continue
            node.battery.advance_cycles(
                [(cur, dt) for cur, dt, *_ in cycles[name]], n
            )
        sim.warp(span)
        for name, node in self._node_list:
            if node.is_dead:
                continue
            node.warp(span)
            monitor = node.monitor
            if monitor is not None:
                # Keep the per-mode accumulators exact across the gap
                # (samples themselves are coalesced: none are stored
                # for skipped epochs).
                monitor._last_sample_time += span
                charge = monitor.charge_by_mode_mas
                time_by = monitor.time_by_mode_s
                for cur, dt, mode, _bucket in cycles[name]:
                    charge[mode] = charge.get(mode, 0.0) + cur * dt * n
                    time_by[mode] = time_by.get(mode, 0.0) + dt * n
            ledger = node._ledger
            if ledger is not None:
                # Advance the energy ledger with the same per-segment
                # products advance_cycles integrated, keeping the
                # conservation invariant within float tolerance.
                for cur, dt, mode, bucket in cycles[name]:
                    ledger.add_charge(name, mode, bucket, cur * dt * n, dt * n)

        eng.results_count += n * frames_per_period
        eng._frame_seq += n * delta[0]
        eng.late_results += n * delta[1]
        eng._next_emit += span
        eng._last_progress += span
        eng._prev_result_s += span
        if eng._live_frames:
            for frame in eng._live_frames.values():
                frame.emitted_s += span

        nn = self._n_nodes
        for i, (name, node) in enumerate(self._node_list):
            node.frames_processed += n * delta[3 + i]
            node.level_switches += n * delta[3 + nn + i]
            node.io_stalls += n * delta[3 + 2 * nn + i]
        off = 3 + 3 * nn
        nl = len(self._link_senders)
        for j, (link, sender) in enumerate(self._link_senders):
            link.transfer_count[sender] += n * delta[off + j]
            link.bytes_moved[sender] += n * delta[off + nl + j]

        self.jumps += 1
        self.frames_skipped += n * frames_per_period
        self.time_skipped_s += span
        if eng._log:
            eng._log.emit(
                "ff.epoch",
                sim.now,
                "host",
                frames=n * frames_per_period,
                periods=n,
                period_s=period_s,
                t0=t_before,
                t1=sim.now,
                late=n * delta[1],
                drained_mah={
                    name: sum(cur * dt for cur, dt, *_ in cycles[name]) * n / 3600.0
                    for name, _ in self._node_list
                },
                link_busy_s=self._link_busy(delta, n),
            )

        # Re-arm detection: logs and anchors restart from the post-jump
        # state (a later, smaller jump closes the remaining distance
        # when the death margin was the binding cap).
        self._anchors.clear()
        for name, log in self._logs.items():
            log.clear()
            self._base[name] = 0
        self._next_anchor = eng.results_count + self.period_frames

    def _link_busy(self, delta: tuple, n: int) -> dict[str, float]:
        """Per-sender busy seconds in the skipped span (deterministic
        timing: startup per transaction plus the byte rate). Keyed by
        the sending endpoint's name — the same actor naming ``link.xfer``
        events use — so monitors can merge both sources directly."""
        timing = self.engine.config.timing
        base = timing.nominal_duration(0)
        per_byte = timing.nominal_duration(1) - base
        off = 3 + 3 * self._n_nodes
        nl = len(self._link_senders)
        busy: dict[str, float] = {}
        for j, (_link, sender) in enumerate(self._link_senders):
            tx = delta[off + j]
            if not tx:
                continue
            busy[sender] = busy.get(sender, 0.0) + n * (
                tx * base + delta[off + nl + j] * per_byte
            )
        return busy
