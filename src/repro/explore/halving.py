"""Successive halving over a four-rung fidelity ladder.

The whole design space enters rung 0 and almost nothing leaves rung 3:

=====  ==========  =====================================  ============
rung   name        evaluator                              cost/config
=====  ==========  =====================================  ============
0      predict     closed-form average-current prescreen  ~ microseconds
1      cohort      exact battery walk (KiBaM cohort or    ~ milliseconds
                   closed-form bucket for the ablation
                   chemistries)
2      fast        full simulation, ``mode="fast"``       ~ 0.1 s
3      exact       full simulation, ``mode="exact"``      ~ seconds
=====  ==========  =====================================  ============

After each rung, candidates are ranked by normalized lifetime (T/N,
the paper's efficiency metric at that rung's fidelity) and only the
top ``keep[rung]`` promote — so with the default budgets well over 99%
of a 100k-config space never reaches a simulation, yet every frontier
member is confirmed in exact mode.

Constraints ride the ladder too: each rung applies the cheapest check
that can already disqualify a config (static schedule feasibility and
link budget at rung 0, death-within-horizon at rung 1, the full
:func:`repro.obs.checks.paper_monitors` replay at rungs 2/3), all
speaking the same :class:`~repro.obs.checks.Verdict` vocabulary.

Two promotion refinements ride on the ladder. Promotion into rung 3 is
*adaptive* — the exact-simulation budget apportions across deadline
strata by how much rung 1 and rung 2 disagreed about each stratum's
ranking (:mod:`repro.explore.budget`) — and *frontier-aware*: within a
stratum, candidates promote by Pareto layer over (lifetime, frames,
deadline misses) before scalar score, so a config that trades lifetime
for throughput is confirmed in exact mode instead of being buried by a
scalar sort (:func:`repro.explore.pareto.pareto_layers`).

Rung 0 has two drivers. The exhaustive driver enumerates and scores the
whole space — right up to ~10^5 configs. Past that, ``guided=True``
switches to the model-guided sampler (:mod:`repro.explore.surrogate`),
which keeps the space implicit and proposes batches from a quantized
effect surrogate until the stratified top set is stable and closed
under single-axis moves; every score still comes from the same
analytic prescreen, so both drivers feed identical numbers forward.

Determinism contract
--------------------
The exported frontier is byte-identical across serial, ``--jobs N``,
and cache-replayed executions because every ingredient is: enumeration
order and indices are fixed by the space; promotion sorts on
``(-score, index)``; workers return JSON-round-trippable payloads the
parent folds in input order; and no wall-clock or scheduling value
enters scores, verdicts, records, or the export payload. The guided
sampler and the budget controller keep the contract — no RNG, ties on
enumeration index — and ``resume=`` extends it across process deaths:
each completed rung persists a cursor (promoted set, scores, verdicts)
through the registry's explore-session snapshots, and a resumed run
replays that cursor into exactly the state an uninterrupted run would
hold, so the resumed frontier is byte-identical too.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.optimizer import duty_cycle_currents, resolve_roles
from repro.core.prediction import role_duty_cycle
from repro.errors import (
    ConfigurationError,
    InfeasiblePartitionError,
    ScheduleError,
)
from repro.exec import SweepExecutor
from repro.exec.cache import ResultCache, stable_key
from repro.explore.budget import allocate_budgets, rank_disagreement
from repro.explore.pareto import OBJECTIVES, pareto_indices, pareto_layers
from repro.explore.space import (
    ExploreConfig,
    PEUKERT_EXPONENT,
    PEUKERT_REFERENCE_MA,
    SpaceSpec,
)
from repro.explore.surrogate import guided_sample
from repro.hw.power import PowerMode
from repro.obs.checks import (
    Verdict,
    paper_monitors,
    replay,
    static_link_budget_verdict,
    static_verdict,
)
from repro.units import SECONDS_PER_HOUR, mah_to_mas

__all__ = [
    "RUNGS",
    "RungReport",
    "FrontierMember",
    "ExploreResult",
    "explore",
    "explore_fingerprint",
]

#: Rung names, cheapest first.
RUNGS = ("predict", "cohort", "fast", "exact")


@dataclasses.dataclass
class RungReport:
    """Accounting for one rung of the ladder.

    ``entered``/``evaluated``/``disqualified``/``promoted`` are
    deterministic content (they enter registry records and the export);
    ``wall_s``/``executed``/``cache_hits`` describe *this* execution and
    stay out of anything compared across modes.
    """

    name: str
    entered: int = 0
    evaluated: int = 0
    disqualified: int = 0
    promoted: int = 0
    wall_s: float = 0.0
    executed: int = 0
    cache_hits: int = 0

    def content(self) -> dict[str, t.Any]:
        """The deterministic subset (registry / export form)."""
        return {
            "name": self.name,
            "entered": self.entered,
            "evaluated": self.evaluated,
            "disqualified": self.disqualified,
            "promoted": self.promoted,
        }

    @property
    def prune_fraction(self) -> float:
        """Share of entrants that did not promote past this rung."""
        if self.entered == 0:
            return 0.0
        return 1.0 - self.promoted / self.entered


@dataclasses.dataclass(frozen=True)
class FrontierMember:
    """One exact-confirmed survivor with its objective values."""

    config: ExploreConfig
    lifetime_hours: float
    frames: int
    deadline_misses: int
    run_id: str

    @property
    def tnorm_hours(self) -> float:
        """Normalized lifetime T/N, the paper's efficiency metric."""
        return self.lifetime_hours / self.config.n_stages

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable form for exports and registry records."""
        return {
            "label": self.config.label,
            "config": {
                "index": self.config.index,
                "policy": self.config.policy,
                "cut": list(self.config.cut),
                "rotation_period": self.config.rotation_period,
                "bandwidth_bps": self.config.bandwidth_bps,
                "chemistry": self.config.chemistry,
                "capacity_mah": self.config.capacity_mah,
                "io_activity": self.config.io_activity,
                "deadline_s": self.config.deadline_s,
            },
            "lifetime_hours": self.lifetime_hours,
            "tnorm_hours": self.tnorm_hours,
            "frames": self.frames,
            "deadline_misses": self.deadline_misses,
            "run_id": self.run_id,
        }


@dataclasses.dataclass
class ExploreResult:
    """Everything one exploration produced."""

    space: SpaceSpec
    keep: tuple[int, int, int]
    fingerprint: str
    n_configs: int
    rungs: list[RungReport]
    frontier: tuple[FrontierMember, ...]
    survivors: tuple[FrontierMember, ...]
    disqualified: dict[str, int]
    wall_s: float
    #: Guided-sampler accounting (:meth:`GuidedReport.content` form), or
    #: None for the exhaustive rung-0 driver.
    sampler: dict[str, t.Any] | None = None
    #: How many rungs were replayed from a resume cursor (telemetry).
    resumed_rungs: int = 0

    @property
    def configs_per_sec(self) -> float:
        """Whole-session throughput over the full population."""
        return self.n_configs / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def pruned_before_sim_fraction(self) -> float:
        """Share of configs that never reached a full simulation."""
        if self.n_configs == 0:
            return 0.0
        sim_entered = next(
            (r.entered for r in self.rungs if r.name == "fast"), 0
        )
        return 1.0 - sim_entered / self.n_configs

    def frontier_payload(self) -> dict[str, t.Any]:
        """The deterministic export: byte-identical across modes.

        ``sampler`` is deterministic guided-mode accounting (None for
        the exhaustive driver); the ``frontier`` array is the portion
        the two drivers are expected to agree on byte-for-byte.
        """
        return {
            "space": {"size": self.n_configs, "fingerprint": self.fingerprint},
            "keep": list(self.keep),
            "objectives": [[name, sense] for name, sense in OBJECTIVES],
            "sampler": self.sampler,
            "rungs": [r.content() for r in self.rungs],
            "disqualified": dict(sorted(self.disqualified.items())),
            "frontier": [m.as_dict() for m in self.frontier],
        }


@dataclasses.dataclass
class _Candidate:
    """Mutable per-config state threaded through the rungs."""

    config: ExploreConfig
    score: float = 0.0  # normalized lifetime (hours) at the last rung
    prev_score: float = 0.0  # score at the rung before (fidelity check)
    lifetime_hours: float = 0.0
    frames: int = 0
    deadline_misses: int = 0
    run_id: str = ""


# ---------------------------------------------------------------------------
# rung 0: analytic prescreen
# ---------------------------------------------------------------------------

def _peukert_rate(current_ma: float) -> float:
    """Effective Peukert drain rate (must mirror PeukertBattery)."""
    if current_ma == 0.0:
        return 0.0
    return current_ma * (current_ma / PEUKERT_REFERENCE_MA) ** (
        PEUKERT_EXPONENT - 1.0
    )


def _config_structure(
    config: ExploreConfig, profile: TaskProfile
) -> tuple[tuple, ...]:
    """Per-role duty cycles (DutySegments) for one config's structure.

    Raises the scheduling errors of its parts; callers translate those
    into disqualification verdicts.
    """
    roles = resolve_roles(
        profile,
        config.cut,
        config.policy_object(),
        config.timing(),
        config.deadline_s,
    )
    return tuple(
        role_duty_cycle(role, config.timing(), config.deadline_s)
        for role in roles
    )


def _prescreen(
    space: SpaceSpec,
    configs: t.Sequence[ExploreConfig],
    report: RungReport,
    disqualified: dict[str, int],
    structures: dict[tuple, tuple] | None = None,
    drains: dict[tuple, tuple[float, float, float, float]] | None = None,
) -> list[_Candidate]:
    """Rung 0: score every config analytically; drop infeasible ones.

    Structure (roles and segment durations) depends only on (policy,
    cut, bandwidth, deadline); currents additionally on io_activity —
    so a 100k-config space collapses to a few hundred structure
    resolutions and a few thousand current evaluations, with each
    config just an O(1) capacity/chemistry lookup on top.

    Report counts accumulate, and the memo dicts can be supplied by the
    caller — the guided sampler scores the space in many small batches
    and must not redo structure resolutions (or double-count) per batch.
    """
    # structure key -> ("ok", cycles, comm_s) | ("fail", Verdict)
    if structures is None:
        structures = {}
    # (structure key, io_activity) -> (k_norot_plain, k_rot_plain,
    #                                  k_norot_peukert, k_rot_peukert)
    if drains is None:
        drains = {}
    out: list[_Candidate] = []
    for config in configs:
        if config.rotation_period is not None and config.n_stages < 2:
            verdict = static_verdict(
                "rotation-feasibility", False,
                "rotation needs a pipeline of at least two nodes",
            )
            disqualified[verdict.monitor] = (
                disqualified.get(verdict.monitor, 0) + 1
            )
            report.disqualified += 1
            continue
        skey = (config.policy, config.cut, config.bandwidth_bps, config.deadline_s)
        entry = structures.get(skey)
        if entry is None:
            try:
                cycles = _config_structure(config, space.profile)
            except (InfeasiblePartitionError, ScheduleError, ConfigurationError) as exc:
                entry = (
                    "fail",
                    static_verdict("schedule-feasibility", False, str(exc)),
                )
            else:
                comm_s = max(
                    sum(
                        seg.duration_s
                        for seg in cycle
                        if seg.mode is PowerMode.COMMUNICATION
                    )
                    for cycle in cycles
                )
                link = static_link_budget_verdict(comm_s, config.deadline_s)
                entry = ("fail", link) if not link.ok else ("ok", cycles, comm_s)
            structures[skey] = entry
        if entry[0] == "fail":
            verdict: Verdict = entry[1]
            disqualified[verdict.monitor] = (
                disqualified.get(verdict.monitor, 0) + 1
            )
            report.disqualified += 1
            continue
        cycles = entry[1]
        dkey = (skey, config.io_activity)
        factors = drains.get(dkey)
        if factors is None:
            power = config.power_model()
            current_cycles = [
                duty_cycle_currents(cycle, power) for cycle in cycles
            ]
            plain = [sum(i * dt for i, dt in c) for c in current_cycles]
            peuk = [
                sum(_peukert_rate(i) * dt for i, dt in c)
                for c in current_cycles
            ]
            n = len(cycles)
            d = config.deadline_s
            factors = (
                d / (max(plain) * n),  # no rotation: critical stage decides
                d / sum(plain),  # rotation: every node sees the concat cycle
                d / (max(peuk) * n),
                d / sum(peuk),
            )
            drains[dkey] = factors
        rotating = config.rotation_period is not None
        if config.chemistry == "peukert":
            k = factors[3] if rotating else factors[2]
        else:
            # KiBaM delivers less than rated capacity at high rates, but
            # the plain average-current bound preserves ranking — which
            # is all a prescreen needs.
            k = factors[1] if rotating else factors[0]
        out.append(
            _Candidate(config=config, score=config.capacity_mah * k)
        )
    report.evaluated += len(configs)
    report.executed += len(configs)
    return out


def _promote(
    candidates: list[_Candidate], keep: int, report: RungReport
) -> list[_Candidate]:
    """Top ``keep`` by score, stratified across deadline values.

    The halving score is scalar (normalized lifetime), but the frame
    deadline moves *both* frontier objectives at once — shorter
    deadlines deliver more frames on less lifetime. Ranking the whole
    population on lifetime alone would promote only the longest
    deadline and erase that tradeoff before any simulation sees it, so
    promotion round-robins over per-deadline strata, each sorted by
    ``(-score, index)``. With a single deadline value this degenerates
    to plain top-k. Enumeration index breaks ties, keeping promotion
    independent of arrival order.
    """
    strata: dict[float, list[_Candidate]] = {}
    for cand in candidates:
        strata.setdefault(cand.config.deadline_s, []).append(cand)
    for group in strata.values():
        group.sort(key=lambda c: (-c.score, c.config.index))
    promoted: list[_Candidate] = []
    rank = 0
    while len(promoted) < keep:
        advanced = False
        for deadline in sorted(strata):
            group = strata[deadline]
            if rank < len(group) and len(promoted) < keep:
                promoted.append(group[rank])
                advanced = True
        if not advanced:
            break
        rank += 1
    # Rung order stays globally score-sorted regardless of strata.
    promoted.sort(key=lambda c: (-c.score, c.config.index))
    report.promoted = len(promoted)
    return promoted


def _promote_exact(
    candidates: list[_Candidate], keep: int, report: RungReport
) -> list[_Candidate]:
    """Promotion into the exact rung: adaptive budgets, frontier-aware.

    Two changes over the scalar :func:`_promote`, both only meaningful
    after rung 2 (the first rung that measures all three objectives and
    the first with two fidelities behind it):

    - the per-stratum share of ``keep`` comes from
      :func:`~repro.explore.budget.allocate_budgets` weighted by each
      stratum's rung-1-vs-rung-2 :func:`rank_disagreement` — strata
      whose cheap fidelity mis-ranked survivors get more exact
      confirmations;
    - within a stratum, candidates promote by Pareto layer over
      (lifetime, frames, deadline misses) before scalar score, so a
      config sitting on the running frontier promotes ahead of a
      dominated config with a fatter scalar score.

    With one stratum and mutually non-dominated survivors this is plain
    top-``keep`` by ``(-score, index)`` — the legacy behavior.
    """
    strata: dict[float, list[_Candidate]] = {}
    for cand in candidates:
        strata.setdefault(cand.config.deadline_s, []).append(cand)
    order = sorted(strata)
    budgets = allocate_budgets(
        keep,
        [len(strata[d]) for d in order],
        [
            rank_disagreement(
                [
                    (c.prev_score, c.score, c.config.index)
                    for c in strata[d]
                ]
            )
            for d in order
        ],
    )
    promoted: list[_Candidate] = []
    for deadline, budget in zip(order, budgets):
        group = strata[deadline]
        points = [
            (c.lifetime_hours, c.frames, c.deadline_misses) for c in group
        ]
        for layer in pareto_layers(points):
            if budget <= 0:
                break
            ranked = sorted(
                (group[i] for i in layer),
                key=lambda c: (-c.score, c.config.index),
            )
            take = ranked[:budget]
            promoted.extend(take)
            budget -= len(take)
    promoted.sort(key=lambda c: (-c.score, c.config.index))
    report.promoted = len(promoted)
    return promoted


# ---------------------------------------------------------------------------
# rung 1: cohort / closed-form battery walk
# ---------------------------------------------------------------------------

def _bucket_walk(
    capacity_mas: float,
    cycle: tuple[tuple[float, float], ...],
    rate_fn: t.Callable[[float], float],
    limit_s: float,
) -> tuple[float | None, int]:
    """Death time of a recovery-free charge bucket repeating ``cycle``.

    Closed form over whole cycles plus a segment walk through the last
    partial one — the linear/Peukert twin of the KiBaM cohort's exact
    stepping. Returns ``(death_s or None past the horizon, full cycles)``.
    """
    drain = sum(rate_fn(i) * dt for i, dt in cycle)
    cycle_s = sum(dt for _, dt in cycle)
    if drain <= 0.0:
        return None, 0
    full = int(capacity_mas // drain)
    t_now = full * cycle_s
    if t_now > limit_s:
        return None, full
    remaining = capacity_mas - full * drain
    for current, dt in cycle:
        rate = rate_fn(current)
        if rate * dt >= remaining:
            if rate <= 0.0:  # pragma: no cover - zero-rate can't drain
                break
            death = t_now + remaining / rate
            return (death, full) if death <= limit_s else (None, full)
        remaining -= rate * dt
        t_now += dt
    # Float slop: the remainder drained exactly at a cycle boundary.
    return (t_now, full + 1) if t_now <= limit_s else (None, full)


def _cohort_job(item: tuple) -> dict[str, t.Any]:
    """Worker entry point: rung-1 metrics for one chunk of configs.

    Returns per-config ``lifetime_s`` (None = alive past the horizon)
    and delivered ``frames``, plus cohort accounting. KiBaM configs
    batch through one structure-of-arrays cohort; the ablation
    chemistries take their closed-form walk.
    """
    from repro.batch.sweep import evaluate_cycles_batch

    configs, max_hours, profile = item
    profile = profile if profile is not None else PAPER_PROFILE
    limit_s = max_hours * SECONDS_PER_HOUR
    lifetimes: list[float | None] = [None] * len(configs)
    frames: list[int] = [0] * len(configs)
    struct_memo: dict[tuple, tuple] = {}
    kibam_cells: list[tuple] = []  # (params, cycle)
    kibam_groups: list[tuple[int, int, int, bool]] = []  # (cfg, start, n, rot)
    for pos, config in enumerate(configs):
        skey = (config.policy, config.cut, config.bandwidth_bps, config.deadline_s)
        cycles = struct_memo.get(skey)
        if cycles is None:
            cycles = _config_structure(config, profile)
            struct_memo[skey] = cycles
        power = config.power_model()
        current_cycles = [duty_cycle_currents(c, power) for c in cycles]
        rotating = config.rotation_period is not None
        if rotating:
            concat: list[tuple[float, float]] = []
            for c in current_cycles:
                concat.extend(c)
            current_cycles = [tuple(concat)]
        if config.chemistry == "kibam":
            params = config.battery_parameters()
            kibam_groups.append(
                (pos, len(kibam_cells), len(current_cycles), rotating)
            )
            kibam_cells.extend((params, cycle) for cycle in current_cycles)
        else:
            rate = _peukert_rate if config.chemistry == "peukert" else (
                lambda i: i
            )
            capacity_mas = mah_to_mas(config.capacity_mah)
            deaths = []
            counts = []
            for cycle in current_cycles:
                death, count = _bucket_walk(capacity_mas, cycle, rate, limit_s)
                deaths.append(death)
                counts.append(count)
            _fold_cell_metrics(
                pos, deaths, counts, rotating, config.n_stages,
                lifetimes, frames,
            )
    epochs = 0
    root_solves = 0
    if kibam_cells:
        death_s, counts, epochs, root_solves = evaluate_cycles_batch(
            kibam_cells, max_hours=max_hours
        )
        for pos, start, n, rotating in kibam_groups:
            deaths = [
                None if death_s[start + j] == float("inf") else death_s[start + j]
                for j in range(n)
            ]
            _fold_cell_metrics(
                pos, deaths, list(counts[start : start + n]), rotating,
                configs[pos].n_stages, lifetimes, frames,
            )
    return {
        "lifetime_s": lifetimes,
        "frames": frames,
        "epochs": epochs,
        "root_solves": root_solves,
    }


def _fold_cell_metrics(
    pos: int,
    deaths: list[float | None],
    counts: list[int],
    rotating: bool,
    n_stages: int,
    lifetimes: list[float | None],
    frames: list[int],
) -> None:
    """Per-config lifetime/frames from its cells' deaths and cycles."""
    if rotating:
        # One concatenated cycle per node; every node dies together.
        # Each completed concat cycle delivers n_stages frames.
        lifetimes[pos] = deaths[0]
        frames[pos] = counts[0] * n_stages
    else:
        if any(d is None for d in deaths):
            # Some stage outlives the horizon; the system's first death
            # is not established, so the config can't be ranked exactly.
            lifetimes[pos] = None
            frames[pos] = 0
            return
        critical = min(range(len(deaths)), key=lambda j: (deaths[j], j))
        lifetimes[pos] = deaths[critical]
        frames[pos] = counts[critical]


def _cohort_rung(
    survivors: list[_Candidate],
    space: SpaceSpec,
    executor: SweepExecutor,
    cache: ResultCache | None,
    chunk_size: int,
    report: RungReport,
    disqualified: dict[str, int],
) -> list[_Candidate]:
    """Rung 1: exact battery walks, chunked through the executor."""
    items = [
        (
            tuple(c.config for c in survivors[i : i + chunk_size]),
            space.max_hours,
            space.profile,
        )
        for i in range(0, len(survivors), chunk_size)
    ]
    keys = None
    if cache is not None:
        keys = [cache.key_for("explore_cohort", "v1", item) for item in items]
    payloads = executor.map(
        _cohort_job,
        items,
        keys=keys,
        encode=lambda payload: payload,
        decode=lambda item, payload: payload,
    )
    report.executed = executor.stats.executed
    report.cache_hits = executor.stats.cache_hits
    out: list[_Candidate] = []
    pos = 0
    for payload in payloads:
        for lifetime_s, n_frames in zip(payload["lifetime_s"], payload["frames"]):
            cand = survivors[pos]
            pos += 1
            if lifetime_s is None:
                verdict = static_verdict(
                    "death-within-horizon", False,
                    f"no battery death within {space.max_hours:g} h",
                )
                disqualified[verdict.monitor] = (
                    disqualified.get(verdict.monitor, 0) + 1
                )
                report.disqualified += 1
                continue
            cand.lifetime_hours = lifetime_s / SECONDS_PER_HOUR
            cand.frames = int(n_frames)
            cand.score = cand.lifetime_hours / cand.config.n_stages
            out.append(cand)
    report.evaluated = pos
    return out


# ---------------------------------------------------------------------------
# rungs 2/3: full simulation
# ---------------------------------------------------------------------------

def _sim_kwargs(config: ExploreConfig) -> dict[str, t.Any]:
    """run_experiment kwargs for one config (shared by fast/exact)."""
    return dict(
        battery_factory=config.battery_factory(),
        power_model=config.power_model(),
        timing=config.timing(),
        telemetry=True,
        monitor_interval_s=60.0,
        seed=0,
    )


def _sim_job(item: tuple):
    """Worker entry point: one full simulation (picklable)."""
    from repro.core.experiments import run_experiment

    config, mode, profile = item
    profile = profile if profile is not None else PAPER_PROFILE
    return run_experiment(
        config.experiment_spec(profile), mode=mode, **_sim_kwargs(config)
    )


def _sim_rung(
    name: str,
    mode: str,
    survivors: list[_Candidate],
    space: SpaceSpec,
    executor: SweepExecutor,
    cache: ResultCache | None,
    registry: t.Any,
    report: RungReport,
    disqualified: dict[str, int],
) -> list[_Candidate]:
    """Rungs 2/3: simulate every survivor, replay the paper monitors."""
    from repro.core.experiments import (
        _run_from_payload,
        _run_payload,
        experiment_fingerprint,
    )
    from repro.obs.store import build_run_record, git_revision

    items = [(c.config, mode, space.profile) for c in survivors]
    keys = None
    if cache is not None:
        keys = [cache.key_for("explore_sim", "v1", item) for item in items]
    runs = executor.map(
        _sim_job,
        items,
        keys=keys,
        encode=_run_payload,
        decode=lambda item, payload: _run_from_payload(
            item[0].experiment_spec(
                item[2] if item[2] is not None else PAPER_PROFILE
            ),
            payload,
        ),
    )
    report.executed = executor.stats.executed
    report.cache_hits = executor.stats.cache_hits
    report.evaluated = len(survivors)
    git_sha = git_revision() if registry is not None else None
    out: list[_Candidate] = []
    for cand, run in zip(survivors, runs):
        spec = cand.config.experiment_spec(space.profile)
        kwargs = dict(_sim_kwargs(cand.config), mode=mode)
        record = build_run_record(
            run, experiment_fingerprint(spec, kwargs), git_sha=git_sha
        )
        if registry is not None:
            registry.record(record)
        assert run.obs is not None
        verdicts = replay(run.obs.events, paper_monitors(spec))
        failed = [v for v in verdicts if not v.ok]
        if failed:
            for verdict in failed:
                disqualified[verdict.monitor] = (
                    disqualified.get(verdict.monitor, 0) + 1
                )
            report.disqualified += 1
            continue
        cand.lifetime_hours = run.t_hours
        cand.frames = run.frames
        cand.deadline_misses = (
            run.pipeline.late_results if run.pipeline is not None else 0
        )
        cand.score = run.t_hours / spec.n_nodes
        cand.run_id = record.run_id
        out.append(cand)
    return out


# ---------------------------------------------------------------------------
# resume cursors
# ---------------------------------------------------------------------------

def _cursor_payload(
    mode: str,
    keep: tuple[int, int, int],
    limit: int | None,
    n_configs: int,
    rungs: list[RungReport],
    disqualified: dict[str, int],
    sampler: dict[str, t.Any] | None,
    candidates: list[_Candidate],
) -> dict[str, t.Any]:
    """The resumable state after one completed rung — pure content.

    Everything needed to re-enter the ladder exactly where it stopped:
    the promoted survivor set (as enumeration indices plus the scores
    and metrics later rungs read), the cumulative rung reports and
    verdict tallies, and the identity fields a resume must match. No
    wall clock enters; JSON floats round-trip exactly, so a cursor
    written, stored, and restored reproduces bit-identical state.
    """
    return {
        "version": 1,
        "mode": mode,
        "keep": list(keep),
        "limit": limit,
        "n_configs": n_configs,
        "rung": rungs[-1].name,
        "rungs": [r.content() for r in rungs],
        "disqualified": dict(sorted(disqualified.items())),
        "sampler": sampler,
        "candidates": [
            [
                c.config.index,
                c.score,
                c.prev_score,
                c.lifetime_hours,
                c.frames,
                c.deadline_misses,
                c.run_id,
            ]
            for c in candidates
        ],
    }


def _restore_cursor(
    space: SpaceSpec,
    keep: tuple[int, int, int],
    limit: int | None,
    mode: str,
    n_configs: int,
    resume: dict[str, t.Any],
) -> tuple[
    list[RungReport],
    dict[str, int],
    list[_Candidate],
    dict[str, t.Any] | None,
    int,
]:
    """Validate and decode a resume cursor against this invocation.

    The cursor must describe the same exploration — same driver mode,
    budgets, limit, and universe size (the space itself is pinned by
    the caller matching fingerprints) — or resuming would silently mix
    two different ladders. Returns ``(rungs, disqualified, candidates,
    sampler, completed_rungs)``.
    """
    if not isinstance(resume, dict) or "rung" not in resume:
        raise ConfigurationError(
            "resume cursor must be a dict with rung state (got "
            f"{type(resume).__name__})"
        )
    for field, want in (
        ("mode", mode),
        ("keep", list(keep)),
        ("limit", limit),
        ("n_configs", n_configs),
    ):
        got = resume.get(field)
        if got != want:
            raise ConfigurationError(
                f"resume cursor disagrees on {field}: cursor has {got!r}, "
                f"this invocation has {want!r}"
            )
    rung = resume["rung"]
    if rung not in RUNGS:
        raise ConfigurationError(f"resume cursor names unknown rung {rung!r}")
    completed = RUNGS.index(rung) + 1
    contents = resume.get("rungs", [])
    if len(contents) != completed or [r["name"] for r in contents] != list(
        RUNGS[:completed]
    ):
        raise ConfigurationError(
            f"resume cursor rung reports inconsistent with rung {rung!r}"
        )
    rungs = [
        RungReport(
            name=r["name"],
            entered=int(r["entered"]),
            evaluated=int(r["evaluated"]),
            disqualified=int(r["disqualified"]),
            promoted=int(r["promoted"]),
        )
        for r in contents
    ]
    disqualified = {
        str(k): int(v) for k, v in resume.get("disqualified", {}).items()
    }
    candidates = [
        _Candidate(
            config=space.config_at(int(row[0])),
            score=float(row[1]),
            prev_score=float(row[2]),
            lifetime_hours=float(row[3]),
            frames=int(row[4]),
            deadline_misses=int(row[5]),
            run_id=str(row[6]),
        )
        for row in resume.get("candidates", [])
    ]
    return rungs, disqualified, candidates, resume.get("sampler"), completed


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------

def explore_fingerprint(
    space: SpaceSpec,
    keep: tuple[int, int, int],
    limit: int | None,
    *,
    guided: bool = False,
) -> str:
    """The session fingerprint :func:`explore` files registry rows under.

    Exposed so callers (the CLI's ``--resume latest``) can locate a
    prior session's cursor without re-running anything. Guided and
    exhaustive sessions fingerprint differently on purpose: their rung-0
    telemetry differs even though their frontiers agree.
    """
    if guided:
        return stable_key("explore", space, tuple(keep), limit, "guided")
    return stable_key("explore", space, tuple(keep), limit)


def explore(
    space: SpaceSpec,
    keep: tuple[int, int, int] = (512, 16, 6),
    jobs: int = 1,
    cache: ResultCache | None = None,
    registry: t.Any = None,
    chunk_size: int = 256,
    limit: int | None = None,
    progress: t.Callable[[RungReport], None] | None = None,
    flight: t.Any = None,
    guided: bool = False,
    probe: int = 2048,
    resume: dict[str, t.Any] | None = None,
) -> ExploreResult:
    """Resolve a design space to its Pareto frontier.

    Parameters
    ----------
    space:
        What to search.
    keep:
        Promotion budgets after rungs 0, 1, and 2 (rung 3 confirms
        whatever survives rung 2's constraints).
    jobs, cache:
        Fan rung work over processes / short-circuit repeated rungs;
        results are bit-identical either way.
    registry:
        Optional :class:`~repro.obs.store.RunRegistry`: every simulated
        survivor registers as a run record, and each completed rung
        appends an explore-session snapshot carrying a resume cursor.
    chunk_size:
        Configs per rung-1 cohort chunk (one cache entry each).
    limit:
        Deterministically subsample the space to at most this many
        configs before rung 0.
    progress:
        Called with each rung's :class:`RungReport` as it completes.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`; attaches to
        the rung executor (per-item journal, heartbeats) and opens one
        recorder phase per rung so live progress shows the halving
        ladder.
    guided:
        Drive rung 0 with the model-guided sampler instead of
        exhaustive enumeration — the space is never materialized, so
        10^6+ spaces reach the ladder in bounded memory. Scores still
        come from the same analytic prescreen.
    probe:
        Guided mode only: size of the initial stratified probe batch
        (and of each subsequent proposal round).
    resume:
        A cursor from a previous session's explore snapshot (see
        ``RunRegistry.latest_explore_cursor``). Completed rungs are
        restored instead of re-executed; the rung that was in flight
        when the session died re-runs against the result cache, so at
        most the killed chunk repeats, and the final frontier is
        byte-identical to an uninterrupted run.
    """
    if len(keep) != 3 or any(k < 1 for k in keep):
        raise ConfigurationError(
            f"keep must be three positive budgets, got {keep!r}"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    started = time.perf_counter()
    mode = "guided" if guided else "full"
    fingerprint = explore_fingerprint(space, keep, limit, guided=guided)
    if guided:
        configs: list[ExploreConfig] | None = None
        n_configs = (
            len(space.indices(limit)) if limit is not None else space.size()
        )
    else:
        configs = space.configs(limit=limit)
        n_configs = len(configs)
    executor = SweepExecutor(jobs=jobs, cache=cache, flight=flight)
    disqualified: dict[str, int] = {}
    rungs: list[RungReport] = []
    candidates: list[_Candidate] = []
    sampler_content: dict[str, t.Any] | None = None
    completed = 0
    if resume is not None:
        rungs, disqualified, candidates, sampler_content, completed = (
            _restore_cursor(space, keep, limit, mode, n_configs, resume)
        )

    def finish_rung(report: RungReport, t0: float) -> None:
        report.wall_s = time.perf_counter() - t0
        rungs.append(report)
        if flight is not None:
            flight.finish_phase(
                note=f"promoted {report.promoted}/{report.entered}"
            )
        if registry is not None:
            from repro.obs.store import build_explore_record, git_revision

            registry.record_explore(
                build_explore_record(
                    fingerprint,
                    n_configs,
                    report.name,
                    [r.content() for r in rungs],
                    git_sha=git_revision(),
                    cursor=_cursor_payload(
                        mode, tuple(keep), limit, n_configs, rungs,
                        disqualified, sampler_content, candidates,
                    ),
                )
            )
        if progress is not None:
            progress(report)

    # rung 0: analytic prescreen (exhaustive or model-guided)
    if completed < 1:
        t0 = time.perf_counter()
        predict_phase = None
        if flight is not None:
            predict_phase = flight.phase(
                "predict", total=None if guided else n_configs
            )
        report = RungReport("predict", entered=n_configs)
        if guided:
            structures: dict[tuple, tuple] = {}
            drains: dict[tuple, tuple[float, float, float, float]] = {}
            by_index: dict[int, _Candidate] = {}

            def evaluate(indices: list[int]) -> list[float | None]:
                batch = [space.config_at(i) for i in indices]
                found = _prescreen(
                    space, batch, report, disqualified, structures, drains
                )
                got = {c.config.index: c for c in found}
                by_index.update(got)
                return [
                    got[i].score if i in got else None for i in indices
                ]

            scores, guided_report = guided_sample(
                space, keep[0], evaluate, limit=limit, probe=probe,
            )
            sampler_content = guided_report.content()
            candidates = [by_index[i] for i in sorted(scores)]
        else:
            candidates = _prescreen(space, configs, report, disqualified)
        candidates = _promote(candidates, keep[0], report)
        if predict_phase is not None:
            # The prescreen is vectorized-analytic (no executor items),
            # so tick its bar wholesale when it completes.
            predict_phase.total = report.evaluated
            predict_phase.done = report.evaluated
        finish_rung(report, t0)

    # rung 1: cohort battery walk
    if completed < 2:
        t0 = time.perf_counter()
        if flight is not None:
            flight.phase("cohort")
        report = RungReport("cohort", entered=len(candidates))
        candidates = _cohort_rung(
            candidates, space, executor, cache, chunk_size, report,
            disqualified,
        )
        candidates = _promote(candidates, keep[1], report)
        finish_rung(report, t0)

    # rung 2: fast full simulation
    if completed < 3:
        for cand in candidates:
            cand.prev_score = cand.score
        t0 = time.perf_counter()
        if flight is not None:
            flight.phase("fast")
        report = RungReport("fast", entered=len(candidates))
        candidates = _sim_rung(
            "fast", "fast", candidates, space, executor, cache, registry,
            report, disqualified,
        )
        candidates = _promote_exact(candidates, keep[2], report)
        finish_rung(report, t0)

    # rung 3: exact confirmation
    if completed < 4:
        t0 = time.perf_counter()
        if flight is not None:
            flight.phase("exact")
        report = RungReport("exact", entered=len(candidates))
        candidates = _sim_rung(
            "exact", "exact", candidates, space, executor, cache, registry,
            report, disqualified,
        )
        report.promoted = len(candidates)
        finish_rung(report, t0)

    survivors = tuple(
        FrontierMember(
            config=c.config,
            lifetime_hours=c.lifetime_hours,
            frames=c.frames,
            deadline_misses=c.deadline_misses,
            run_id=c.run_id,
        )
        for c in candidates
    )
    points = [
        (m.lifetime_hours, m.frames, m.deadline_misses) for m in survivors
    ]
    frontier = tuple(survivors[i] for i in pareto_indices(points))
    result = ExploreResult(
        space=space,
        keep=tuple(keep),
        fingerprint=fingerprint,
        n_configs=n_configs,
        rungs=rungs,
        frontier=frontier,
        survivors=survivors,
        disqualified=disqualified,
        wall_s=time.perf_counter() - started,
        sampler=sampler_content,
        resumed_rungs=completed,
    )
    if registry is not None:
        from repro.obs.store import build_explore_record, git_revision

        registry.record_explore(
            build_explore_record(
                fingerprint,
                n_configs,
                "frontier",
                [r.content() for r in rungs],
                [m.as_dict() for m in frontier],
                git_sha=git_revision(),
                cursor=_cursor_payload(
                    mode, tuple(keep), limit, n_configs, rungs,
                    disqualified, sampler_content, candidates,
                ),
            )
        )
    return result
