"""Successive halving over a four-rung fidelity ladder.

The whole design space enters rung 0 and almost nothing leaves rung 3:

=====  ==========  =====================================  ============
rung   name        evaluator                              cost/config
=====  ==========  =====================================  ============
0      predict     closed-form average-current prescreen  ~ microseconds
1      cohort      exact battery walk (KiBaM cohort or    ~ milliseconds
                   closed-form bucket for the ablation
                   chemistries)
2      fast        full simulation, ``mode="fast"``       ~ 0.1 s
3      exact       full simulation, ``mode="exact"``      ~ seconds
=====  ==========  =====================================  ============

After each rung, candidates are ranked by normalized lifetime (T/N,
the paper's efficiency metric at that rung's fidelity) and only the
top ``keep[rung]`` promote — so with the default budgets well over 99%
of a 100k-config space never reaches a simulation, yet every frontier
member is confirmed in exact mode.

Constraints ride the ladder too: each rung applies the cheapest check
that can already disqualify a config (static schedule feasibility and
link budget at rung 0, death-within-horizon at rung 1, the full
:func:`repro.obs.checks.paper_monitors` replay at rungs 2/3), all
speaking the same :class:`~repro.obs.checks.Verdict` vocabulary.

Determinism contract
--------------------
The exported frontier is byte-identical across serial, ``--jobs N``,
and cache-replayed executions because every ingredient is: enumeration
order and indices are fixed by the space; promotion sorts on
``(-score, index)``; workers return JSON-round-trippable payloads the
parent folds in input order; and no wall-clock or scheduling value
enters scores, verdicts, records, or the export payload.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.optimizer import duty_cycle_currents, resolve_roles
from repro.core.prediction import role_duty_cycle
from repro.errors import (
    ConfigurationError,
    InfeasiblePartitionError,
    ScheduleError,
)
from repro.exec import SweepExecutor
from repro.exec.cache import ResultCache, stable_key
from repro.explore.pareto import OBJECTIVES, pareto_indices
from repro.explore.space import (
    ExploreConfig,
    PEUKERT_EXPONENT,
    PEUKERT_REFERENCE_MA,
    SpaceSpec,
)
from repro.hw.power import PowerMode
from repro.obs.checks import (
    Verdict,
    paper_monitors,
    replay,
    static_link_budget_verdict,
    static_verdict,
)
from repro.units import SECONDS_PER_HOUR, mah_to_mas

__all__ = [
    "RUNGS",
    "RungReport",
    "FrontierMember",
    "ExploreResult",
    "explore",
]

#: Rung names, cheapest first.
RUNGS = ("predict", "cohort", "fast", "exact")


@dataclasses.dataclass
class RungReport:
    """Accounting for one rung of the ladder.

    ``entered``/``evaluated``/``disqualified``/``promoted`` are
    deterministic content (they enter registry records and the export);
    ``wall_s``/``executed``/``cache_hits`` describe *this* execution and
    stay out of anything compared across modes.
    """

    name: str
    entered: int = 0
    evaluated: int = 0
    disqualified: int = 0
    promoted: int = 0
    wall_s: float = 0.0
    executed: int = 0
    cache_hits: int = 0

    def content(self) -> dict[str, t.Any]:
        """The deterministic subset (registry / export form)."""
        return {
            "name": self.name,
            "entered": self.entered,
            "evaluated": self.evaluated,
            "disqualified": self.disqualified,
            "promoted": self.promoted,
        }

    @property
    def prune_fraction(self) -> float:
        """Share of entrants that did not promote past this rung."""
        if self.entered == 0:
            return 0.0
        return 1.0 - self.promoted / self.entered


@dataclasses.dataclass(frozen=True)
class FrontierMember:
    """One exact-confirmed survivor with its objective values."""

    config: ExploreConfig
    lifetime_hours: float
    frames: int
    deadline_misses: int
    run_id: str

    @property
    def tnorm_hours(self) -> float:
        """Normalized lifetime T/N, the paper's efficiency metric."""
        return self.lifetime_hours / self.config.n_stages

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable form for exports and registry records."""
        return {
            "label": self.config.label,
            "config": {
                "index": self.config.index,
                "policy": self.config.policy,
                "cut": list(self.config.cut),
                "rotation_period": self.config.rotation_period,
                "bandwidth_bps": self.config.bandwidth_bps,
                "chemistry": self.config.chemistry,
                "capacity_mah": self.config.capacity_mah,
                "io_activity": self.config.io_activity,
                "deadline_s": self.config.deadline_s,
            },
            "lifetime_hours": self.lifetime_hours,
            "tnorm_hours": self.tnorm_hours,
            "frames": self.frames,
            "deadline_misses": self.deadline_misses,
            "run_id": self.run_id,
        }


@dataclasses.dataclass
class ExploreResult:
    """Everything one exploration produced."""

    space: SpaceSpec
    keep: tuple[int, int, int]
    fingerprint: str
    n_configs: int
    rungs: list[RungReport]
    frontier: tuple[FrontierMember, ...]
    survivors: tuple[FrontierMember, ...]
    disqualified: dict[str, int]
    wall_s: float

    @property
    def configs_per_sec(self) -> float:
        """Whole-session throughput over the full population."""
        return self.n_configs / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def pruned_before_sim_fraction(self) -> float:
        """Share of configs that never reached a full simulation."""
        if self.n_configs == 0:
            return 0.0
        sim_entered = next(
            (r.entered for r in self.rungs if r.name == "fast"), 0
        )
        return 1.0 - sim_entered / self.n_configs

    def frontier_payload(self) -> dict[str, t.Any]:
        """The deterministic export: byte-identical across modes."""
        return {
            "space": {"size": self.n_configs, "fingerprint": self.fingerprint},
            "keep": list(self.keep),
            "objectives": [[name, sense] for name, sense in OBJECTIVES],
            "rungs": [r.content() for r in self.rungs],
            "disqualified": dict(sorted(self.disqualified.items())),
            "frontier": [m.as_dict() for m in self.frontier],
        }


@dataclasses.dataclass
class _Candidate:
    """Mutable per-config state threaded through the rungs."""

    config: ExploreConfig
    score: float = 0.0  # normalized lifetime (hours) at the last rung
    lifetime_hours: float = 0.0
    frames: int = 0
    deadline_misses: int = 0
    run_id: str = ""


# ---------------------------------------------------------------------------
# rung 0: analytic prescreen
# ---------------------------------------------------------------------------

def _peukert_rate(current_ma: float) -> float:
    """Effective Peukert drain rate (must mirror PeukertBattery)."""
    if current_ma == 0.0:
        return 0.0
    return current_ma * (current_ma / PEUKERT_REFERENCE_MA) ** (
        PEUKERT_EXPONENT - 1.0
    )


def _config_structure(
    config: ExploreConfig, profile: TaskProfile
) -> tuple[tuple, ...]:
    """Per-role duty cycles (DutySegments) for one config's structure.

    Raises the scheduling errors of its parts; callers translate those
    into disqualification verdicts.
    """
    roles = resolve_roles(
        profile,
        config.cut,
        config.policy_object(),
        config.timing(),
        config.deadline_s,
    )
    return tuple(
        role_duty_cycle(role, config.timing(), config.deadline_s)
        for role in roles
    )


def _prescreen(
    space: SpaceSpec,
    configs: t.Sequence[ExploreConfig],
    report: RungReport,
    disqualified: dict[str, int],
) -> list[_Candidate]:
    """Rung 0: score every config analytically; drop infeasible ones.

    Structure (roles and segment durations) depends only on (policy,
    cut, bandwidth, deadline); currents additionally on io_activity —
    so a 100k-config space collapses to a few hundred structure
    resolutions and a few thousand current evaluations, with each
    config just an O(1) capacity/chemistry lookup on top.
    """
    # structure key -> ("ok", cycles, comm_s) | ("fail", Verdict)
    structures: dict[tuple, tuple] = {}
    # (structure key, io_activity) -> (k_norot_plain, k_rot_plain,
    #                                  k_norot_peukert, k_rot_peukert)
    drains: dict[tuple, tuple[float, float, float, float]] = {}
    out: list[_Candidate] = []
    for config in configs:
        if config.rotation_period is not None and config.n_stages < 2:
            verdict = static_verdict(
                "rotation-feasibility", False,
                "rotation needs a pipeline of at least two nodes",
            )
            disqualified[verdict.monitor] = (
                disqualified.get(verdict.monitor, 0) + 1
            )
            report.disqualified += 1
            continue
        skey = (config.policy, config.cut, config.bandwidth_bps, config.deadline_s)
        entry = structures.get(skey)
        if entry is None:
            try:
                cycles = _config_structure(config, space.profile)
            except (InfeasiblePartitionError, ScheduleError, ConfigurationError) as exc:
                entry = (
                    "fail",
                    static_verdict("schedule-feasibility", False, str(exc)),
                )
            else:
                comm_s = max(
                    sum(
                        seg.duration_s
                        for seg in cycle
                        if seg.mode is PowerMode.COMMUNICATION
                    )
                    for cycle in cycles
                )
                link = static_link_budget_verdict(comm_s, config.deadline_s)
                entry = ("fail", link) if not link.ok else ("ok", cycles, comm_s)
            structures[skey] = entry
        if entry[0] == "fail":
            verdict: Verdict = entry[1]
            disqualified[verdict.monitor] = (
                disqualified.get(verdict.monitor, 0) + 1
            )
            report.disqualified += 1
            continue
        cycles = entry[1]
        dkey = (skey, config.io_activity)
        factors = drains.get(dkey)
        if factors is None:
            power = config.power_model()
            current_cycles = [
                duty_cycle_currents(cycle, power) for cycle in cycles
            ]
            plain = [sum(i * dt for i, dt in c) for c in current_cycles]
            peuk = [
                sum(_peukert_rate(i) * dt for i, dt in c)
                for c in current_cycles
            ]
            n = len(cycles)
            d = config.deadline_s
            factors = (
                d / (max(plain) * n),  # no rotation: critical stage decides
                d / sum(plain),  # rotation: every node sees the concat cycle
                d / (max(peuk) * n),
                d / sum(peuk),
            )
            drains[dkey] = factors
        rotating = config.rotation_period is not None
        if config.chemistry == "peukert":
            k = factors[3] if rotating else factors[2]
        else:
            # KiBaM delivers less than rated capacity at high rates, but
            # the plain average-current bound preserves ranking — which
            # is all a prescreen needs.
            k = factors[1] if rotating else factors[0]
        out.append(
            _Candidate(config=config, score=config.capacity_mah * k)
        )
    report.evaluated = len(configs)
    report.executed = len(configs)
    return out


def _promote(
    candidates: list[_Candidate], keep: int, report: RungReport
) -> list[_Candidate]:
    """Top ``keep`` by score, stratified across deadline values.

    The halving score is scalar (normalized lifetime), but the frame
    deadline moves *both* frontier objectives at once — shorter
    deadlines deliver more frames on less lifetime. Ranking the whole
    population on lifetime alone would promote only the longest
    deadline and erase that tradeoff before any simulation sees it, so
    promotion round-robins over per-deadline strata, each sorted by
    ``(-score, index)``. With a single deadline value this degenerates
    to plain top-k. Enumeration index breaks ties, keeping promotion
    independent of arrival order.
    """
    strata: dict[float, list[_Candidate]] = {}
    for cand in candidates:
        strata.setdefault(cand.config.deadline_s, []).append(cand)
    for group in strata.values():
        group.sort(key=lambda c: (-c.score, c.config.index))
    promoted: list[_Candidate] = []
    rank = 0
    while len(promoted) < keep:
        advanced = False
        for deadline in sorted(strata):
            group = strata[deadline]
            if rank < len(group) and len(promoted) < keep:
                promoted.append(group[rank])
                advanced = True
        if not advanced:
            break
        rank += 1
    # Rung order stays globally score-sorted regardless of strata.
    promoted.sort(key=lambda c: (-c.score, c.config.index))
    report.promoted = len(promoted)
    return promoted


# ---------------------------------------------------------------------------
# rung 1: cohort / closed-form battery walk
# ---------------------------------------------------------------------------

def _bucket_walk(
    capacity_mas: float,
    cycle: tuple[tuple[float, float], ...],
    rate_fn: t.Callable[[float], float],
    limit_s: float,
) -> tuple[float | None, int]:
    """Death time of a recovery-free charge bucket repeating ``cycle``.

    Closed form over whole cycles plus a segment walk through the last
    partial one — the linear/Peukert twin of the KiBaM cohort's exact
    stepping. Returns ``(death_s or None past the horizon, full cycles)``.
    """
    drain = sum(rate_fn(i) * dt for i, dt in cycle)
    cycle_s = sum(dt for _, dt in cycle)
    if drain <= 0.0:
        return None, 0
    full = int(capacity_mas // drain)
    t_now = full * cycle_s
    if t_now > limit_s:
        return None, full
    remaining = capacity_mas - full * drain
    for current, dt in cycle:
        rate = rate_fn(current)
        if rate * dt >= remaining:
            if rate <= 0.0:  # pragma: no cover - zero-rate can't drain
                break
            death = t_now + remaining / rate
            return (death, full) if death <= limit_s else (None, full)
        remaining -= rate * dt
        t_now += dt
    # Float slop: the remainder drained exactly at a cycle boundary.
    return (t_now, full + 1) if t_now <= limit_s else (None, full)


def _cohort_job(item: tuple) -> dict[str, t.Any]:
    """Worker entry point: rung-1 metrics for one chunk of configs.

    Returns per-config ``lifetime_s`` (None = alive past the horizon)
    and delivered ``frames``, plus cohort accounting. KiBaM configs
    batch through one structure-of-arrays cohort; the ablation
    chemistries take their closed-form walk.
    """
    from repro.batch.sweep import evaluate_cycles_batch

    configs, max_hours, profile = item
    profile = profile if profile is not None else PAPER_PROFILE
    limit_s = max_hours * SECONDS_PER_HOUR
    lifetimes: list[float | None] = [None] * len(configs)
    frames: list[int] = [0] * len(configs)
    struct_memo: dict[tuple, tuple] = {}
    kibam_cells: list[tuple] = []  # (params, cycle)
    kibam_groups: list[tuple[int, int, int, bool]] = []  # (cfg, start, n, rot)
    for pos, config in enumerate(configs):
        skey = (config.policy, config.cut, config.bandwidth_bps, config.deadline_s)
        cycles = struct_memo.get(skey)
        if cycles is None:
            cycles = _config_structure(config, profile)
            struct_memo[skey] = cycles
        power = config.power_model()
        current_cycles = [duty_cycle_currents(c, power) for c in cycles]
        rotating = config.rotation_period is not None
        if rotating:
            concat: list[tuple[float, float]] = []
            for c in current_cycles:
                concat.extend(c)
            current_cycles = [tuple(concat)]
        if config.chemistry == "kibam":
            params = config.battery_parameters()
            kibam_groups.append(
                (pos, len(kibam_cells), len(current_cycles), rotating)
            )
            kibam_cells.extend((params, cycle) for cycle in current_cycles)
        else:
            rate = _peukert_rate if config.chemistry == "peukert" else (
                lambda i: i
            )
            capacity_mas = mah_to_mas(config.capacity_mah)
            deaths = []
            counts = []
            for cycle in current_cycles:
                death, count = _bucket_walk(capacity_mas, cycle, rate, limit_s)
                deaths.append(death)
                counts.append(count)
            _fold_cell_metrics(
                pos, deaths, counts, rotating, config.n_stages,
                lifetimes, frames,
            )
    epochs = 0
    root_solves = 0
    if kibam_cells:
        death_s, counts, epochs, root_solves = evaluate_cycles_batch(
            kibam_cells, max_hours=max_hours
        )
        for pos, start, n, rotating in kibam_groups:
            deaths = [
                None if death_s[start + j] == float("inf") else death_s[start + j]
                for j in range(n)
            ]
            _fold_cell_metrics(
                pos, deaths, list(counts[start : start + n]), rotating,
                configs[pos].n_stages, lifetimes, frames,
            )
    return {
        "lifetime_s": lifetimes,
        "frames": frames,
        "epochs": epochs,
        "root_solves": root_solves,
    }


def _fold_cell_metrics(
    pos: int,
    deaths: list[float | None],
    counts: list[int],
    rotating: bool,
    n_stages: int,
    lifetimes: list[float | None],
    frames: list[int],
) -> None:
    """Per-config lifetime/frames from its cells' deaths and cycles."""
    if rotating:
        # One concatenated cycle per node; every node dies together.
        # Each completed concat cycle delivers n_stages frames.
        lifetimes[pos] = deaths[0]
        frames[pos] = counts[0] * n_stages
    else:
        if any(d is None for d in deaths):
            # Some stage outlives the horizon; the system's first death
            # is not established, so the config can't be ranked exactly.
            lifetimes[pos] = None
            frames[pos] = 0
            return
        critical = min(range(len(deaths)), key=lambda j: (deaths[j], j))
        lifetimes[pos] = deaths[critical]
        frames[pos] = counts[critical]


def _cohort_rung(
    survivors: list[_Candidate],
    space: SpaceSpec,
    executor: SweepExecutor,
    cache: ResultCache | None,
    chunk_size: int,
    report: RungReport,
    disqualified: dict[str, int],
) -> list[_Candidate]:
    """Rung 1: exact battery walks, chunked through the executor."""
    items = [
        (
            tuple(c.config for c in survivors[i : i + chunk_size]),
            space.max_hours,
            space.profile,
        )
        for i in range(0, len(survivors), chunk_size)
    ]
    keys = None
    if cache is not None:
        keys = [cache.key_for("explore_cohort", "v1", item) for item in items]
    payloads = executor.map(
        _cohort_job,
        items,
        keys=keys,
        encode=lambda payload: payload,
        decode=lambda item, payload: payload,
    )
    report.executed = executor.stats.executed
    report.cache_hits = executor.stats.cache_hits
    out: list[_Candidate] = []
    pos = 0
    for payload in payloads:
        for lifetime_s, n_frames in zip(payload["lifetime_s"], payload["frames"]):
            cand = survivors[pos]
            pos += 1
            if lifetime_s is None:
                verdict = static_verdict(
                    "death-within-horizon", False,
                    f"no battery death within {space.max_hours:g} h",
                )
                disqualified[verdict.monitor] = (
                    disqualified.get(verdict.monitor, 0) + 1
                )
                report.disqualified += 1
                continue
            cand.lifetime_hours = lifetime_s / SECONDS_PER_HOUR
            cand.frames = int(n_frames)
            cand.score = cand.lifetime_hours / cand.config.n_stages
            out.append(cand)
    report.evaluated = pos
    return out


# ---------------------------------------------------------------------------
# rungs 2/3: full simulation
# ---------------------------------------------------------------------------

def _sim_kwargs(config: ExploreConfig) -> dict[str, t.Any]:
    """run_experiment kwargs for one config (shared by fast/exact)."""
    return dict(
        battery_factory=config.battery_factory(),
        power_model=config.power_model(),
        timing=config.timing(),
        telemetry=True,
        monitor_interval_s=60.0,
        seed=0,
    )


def _sim_job(item: tuple):
    """Worker entry point: one full simulation (picklable)."""
    from repro.core.experiments import run_experiment

    config, mode, profile = item
    profile = profile if profile is not None else PAPER_PROFILE
    return run_experiment(
        config.experiment_spec(profile), mode=mode, **_sim_kwargs(config)
    )


def _sim_rung(
    name: str,
    mode: str,
    survivors: list[_Candidate],
    space: SpaceSpec,
    executor: SweepExecutor,
    cache: ResultCache | None,
    registry: t.Any,
    report: RungReport,
    disqualified: dict[str, int],
) -> list[_Candidate]:
    """Rungs 2/3: simulate every survivor, replay the paper monitors."""
    from repro.core.experiments import (
        _run_from_payload,
        _run_payload,
        experiment_fingerprint,
    )
    from repro.obs.store import build_run_record, git_revision

    items = [(c.config, mode, space.profile) for c in survivors]
    keys = None
    if cache is not None:
        keys = [cache.key_for("explore_sim", "v1", item) for item in items]
    runs = executor.map(
        _sim_job,
        items,
        keys=keys,
        encode=_run_payload,
        decode=lambda item, payload: _run_from_payload(
            item[0].experiment_spec(
                item[2] if item[2] is not None else PAPER_PROFILE
            ),
            payload,
        ),
    )
    report.executed = executor.stats.executed
    report.cache_hits = executor.stats.cache_hits
    report.evaluated = len(survivors)
    git_sha = git_revision() if registry is not None else None
    out: list[_Candidate] = []
    for cand, run in zip(survivors, runs):
        spec = cand.config.experiment_spec(space.profile)
        kwargs = dict(_sim_kwargs(cand.config), mode=mode)
        record = build_run_record(
            run, experiment_fingerprint(spec, kwargs), git_sha=git_sha
        )
        if registry is not None:
            registry.record(record)
        assert run.obs is not None
        verdicts = replay(run.obs.events, paper_monitors(spec))
        failed = [v for v in verdicts if not v.ok]
        if failed:
            for verdict in failed:
                disqualified[verdict.monitor] = (
                    disqualified.get(verdict.monitor, 0) + 1
                )
            report.disqualified += 1
            continue
        cand.lifetime_hours = run.t_hours
        cand.frames = run.frames
        cand.deadline_misses = (
            run.pipeline.late_results if run.pipeline is not None else 0
        )
        cand.score = run.t_hours / spec.n_nodes
        cand.run_id = record.run_id
        out.append(cand)
    return out


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------

def explore(
    space: SpaceSpec,
    keep: tuple[int, int, int] = (512, 16, 6),
    jobs: int = 1,
    cache: ResultCache | None = None,
    registry: t.Any = None,
    chunk_size: int = 256,
    limit: int | None = None,
    progress: t.Callable[[RungReport], None] | None = None,
    flight: t.Any = None,
) -> ExploreResult:
    """Resolve a design space to its Pareto frontier.

    Parameters
    ----------
    space:
        What to search.
    keep:
        Promotion budgets after rungs 0, 1, and 2 (rung 3 confirms
        whatever survives rung 2's constraints).
    jobs, cache:
        Fan rung work over processes / short-circuit repeated rungs;
        results are bit-identical either way.
    registry:
        Optional :class:`~repro.obs.store.RunRegistry`: every simulated
        survivor registers as a run record, and each completed rung
        appends an explore-session snapshot.
    chunk_size:
        Configs per rung-1 cohort chunk (one cache entry each).
    limit:
        Deterministically subsample the space to at most this many
        configs before rung 0.
    progress:
        Called with each rung's :class:`RungReport` as it completes.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`; attaches to
        the rung executor (per-item journal, heartbeats) and opens one
        recorder phase per rung so live progress shows the halving
        ladder.
    """
    if len(keep) != 3 or any(k < 1 for k in keep):
        raise ConfigurationError(
            f"keep must be three positive budgets, got {keep!r}"
        )
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    started = time.perf_counter()
    configs = space.configs(limit=limit)
    fingerprint = stable_key("explore", space, tuple(keep), limit)
    executor = SweepExecutor(jobs=jobs, cache=cache, flight=flight)
    disqualified: dict[str, int] = {}
    rungs: list[RungReport] = []

    def finish_rung(report: RungReport, t0: float) -> None:
        report.wall_s = time.perf_counter() - t0
        rungs.append(report)
        if flight is not None:
            flight.finish_phase(
                note=f"promoted {report.promoted}/{report.entered}"
            )
        if registry is not None:
            from repro.obs.store import build_explore_record, git_revision

            registry.record_explore(
                build_explore_record(
                    fingerprint,
                    len(configs),
                    report.name,
                    [r.content() for r in rungs],
                    git_sha=git_revision(),
                )
            )
        if progress is not None:
            progress(report)

    # rung 0: analytic prescreen
    t0 = time.perf_counter()
    predict_phase = None
    if flight is not None:
        predict_phase = flight.phase("predict", total=len(configs))
    report = RungReport("predict", entered=len(configs))
    candidates = _prescreen(space, configs, report, disqualified)
    candidates = _promote(candidates, keep[0], report)
    if predict_phase is not None:
        # The prescreen is vectorized-analytic (no executor items), so
        # tick its bar wholesale when it completes.
        predict_phase.done = predict_phase.total or 0
    finish_rung(report, t0)

    # rung 1: cohort battery walk
    t0 = time.perf_counter()
    if flight is not None:
        flight.phase("cohort")
    report = RungReport("cohort", entered=len(candidates))
    candidates = _cohort_rung(
        candidates, space, executor, cache, chunk_size, report, disqualified
    )
    candidates = _promote(candidates, keep[1], report)
    finish_rung(report, t0)

    # rung 2: fast full simulation
    t0 = time.perf_counter()
    if flight is not None:
        flight.phase("fast")
    report = RungReport("fast", entered=len(candidates))
    candidates = _sim_rung(
        "fast", "fast", candidates, space, executor, cache, registry,
        report, disqualified,
    )
    candidates = _promote(candidates, keep[2], report)
    finish_rung(report, t0)

    # rung 3: exact confirmation
    t0 = time.perf_counter()
    if flight is not None:
        flight.phase("exact")
    report = RungReport("exact", entered=len(candidates))
    candidates = _sim_rung(
        "exact", "exact", candidates, space, executor, cache, registry,
        report, disqualified,
    )
    report.promoted = len(candidates)
    finish_rung(report, t0)

    survivors = tuple(
        FrontierMember(
            config=c.config,
            lifetime_hours=c.lifetime_hours,
            frames=c.frames,
            deadline_misses=c.deadline_misses,
            run_id=c.run_id,
        )
        for c in candidates
    )
    points = [
        (m.lifetime_hours, m.frames, m.deadline_misses) for m in survivors
    ]
    frontier = tuple(survivors[i] for i in pareto_indices(points))
    result = ExploreResult(
        space=space,
        keep=tuple(keep),
        fingerprint=fingerprint,
        n_configs=len(configs),
        rungs=rungs,
        frontier=frontier,
        survivors=survivors,
        disqualified=disqualified,
        wall_s=time.perf_counter() - started,
    )
    if registry is not None:
        from repro.obs.store import build_explore_record, git_revision

        registry.record_explore(
            build_explore_record(
                fingerprint,
                len(configs),
                "frontier",
                [r.content() for r in rungs],
                [m.as_dict() for m in frontier],
                git_sha=git_revision(),
            )
        )
    return result
