"""Deterministic model-guided sampling for rung 0 of the halving ladder.

Exhaustively prescreening a design space is fine at 10^5 configs and a
wall at 10^6+ — not because the analytic score is slow, but because
materializing every :class:`~repro.explore.space.ExploreConfig` costs
memory and time proportional to the whole space. The guided sampler
keeps the space *implicit*: configs exist only as enumeration indices
(decoded on demand via :meth:`SpaceSpec.config_at`), and a cheap
surrogate model decides which indices are worth scoring with the real
rung-0 evaluator.

The surrogate is a quantized two-way effect model in the ANOVA style:
a global mean, one additive deviation per (axis, value) cell, and one
per (axis-pair, value-pair) cell, all learned from the scores the true
evaluator has produced so far. It *steers* — every score that enters
promotion comes from the real prescreen; the model only proposes.

Each round proposes the union of three deterministic batches:

- **closure** — every unevaluated Hamming-1 neighbor (one axis moved
  one step to any other value) of the current stratified top set. The
  ladder cannot stop until this is empty, so the promoted set is
  locally optimal along every axis.
- **exploit** — the best unevaluated indices from a beam over the top
  axis values, ranked by predicted score plus an uncertainty bonus for
  thinly sampled cells.
- **explore** — the next slice of a fixed multiplicative permutation
  of the universe (a full-period stride walk), so coverage grows
  evenly and, on a small space, the sampler degenerates to exhaustive
  enumeration.

Determinism contract: no wall clock, no RNG. Every proposal is a pure
function of (space, keep, prior scores), ties break on enumeration
index, and the permutation stride is derived from the universe size
alone — so serial, ``--jobs N``, cache-replayed, and resumed runs
propose byte-identical batches in byte-identical order.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.errors import ConfigurationError
from repro.explore.space import AXES, SpaceSpec

__all__ = [
    "GuidedReport",
    "Surrogate",
    "stratified_top",
    "guided_sample",
]

#: Index of the deadline axis in :data:`AXES` (promotion stratifies on it).
_DEADLINE_AXIS = AXES.index("deadline_s")

#: Weight of the uncertainty bonus relative to the predicted score.
_EXPLORE_BONUS = 0.25

#: Beam width per axis when generating exploit candidates.
_BEAM_WIDTH = 4


@dataclasses.dataclass
class GuidedReport:
    """Accounting for one guided rung-0 sampling session.

    All fields are deterministic content: counts of proposals and
    rounds, and the reason the loop stopped (``"stable"`` — top set
    unchanged and its Hamming-1 closure fully evaluated;
    ``"exhausted"`` — the whole universe got scored; ``"max-rounds"``
    — the safety cap fired first).
    """

    universe: int = 0
    probed: int = 0
    rounds: int = 0
    proposals: int = 0
    stop_reason: str = ""

    def content(self) -> dict[str, t.Any]:
        return {
            "universe": self.universe,
            "probed": self.probed,
            "rounds": self.rounds,
            "proposals": self.proposals,
            "stop_reason": self.stop_reason,
        }


class Surrogate:
    """Quantized per-axis + pairwise-interaction effect model.

    Fit incrementally from ``(digits, score)`` observations; predicts
    ``mean + sum(axis deviations) + sum(pair deviations)`` with unseen
    cells contributing zero deviation. Disqualified configs enter as
    score 0.0 — below every feasible score (scores are positive
    lifetimes), steering proposals away from infeasible regions.
    """

    def __init__(self, space: SpaceSpec):
        self.radices = space.radices()
        self.n = 0
        self.total = 0.0
        # axis -> value -> (sum, count)
        self.axis_sum = [[0.0] * r for r in self.radices]
        self.axis_cnt = [[0] * r for r in self.radices]
        # (axis_a, axis_b) -> {(va, vb): (sum, count)}
        self.pairs: dict[tuple[int, int], dict[tuple[int, int], list]] = {
            (a, b): {}
            for a in range(len(self.radices))
            for b in range(a + 1, len(self.radices))
        }

    def observe(self, digits: tuple[int, ...], score: float) -> None:
        self.n += 1
        self.total += score
        for axis, v in enumerate(digits):
            self.axis_sum[axis][v] += score
            self.axis_cnt[axis][v] += 1
        for (a, b), cells in self.pairs.items():
            cell = cells.setdefault((digits[a], digits[b]), [0.0, 0])
            cell[0] += score
            cell[1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def _axis_dev(self, axis: int, v: int) -> float:
        cnt = self.axis_cnt[axis][v]
        if cnt == 0:
            return 0.0
        return self.axis_sum[axis][v] / cnt - self.mean

    def predict(self, digits: tuple[int, ...]) -> float:
        """Predicted rung-0 score for one config's digit tuple."""
        mean = self.mean
        out = mean
        devs = [self._axis_dev(axis, v) for axis, v in enumerate(digits)]
        out += sum(devs)
        for (a, b), cells in self.pairs.items():
            cell = cells.get((digits[a], digits[b]))
            if cell is None or cell[1] == 0:
                continue
            out += cell[0] / cell[1] - mean - devs[a] - devs[b]
        return out

    def uncertainty(self, digits: tuple[int, ...]) -> float:
        """How thinly sampled this config's cells are, in score units.

        ``1/sqrt(1+count)`` per axis cell, scaled by the score mean so
        the bonus stays commensurate with predictions as scores grow.
        """
        thin = sum(
            1.0 / math.sqrt(1.0 + self.axis_cnt[axis][v])
            for axis, v in enumerate(digits)
        )
        return thin * abs(self.mean) / len(self.radices)

    def top_axis_values(self, width: int) -> list[list[int]]:
        """Per axis, the ``width`` best value indices by marginal mean.

        Unseen values rank by value index after all seen ones — the
        exploit beam should favor what looks good, and the explore walk
        is responsible for eventually seeing everything.
        """
        out: list[list[int]] = []
        for axis, r in enumerate(self.radices):
            ranked = sorted(
                range(r),
                key=lambda v: (
                    0 if self.axis_cnt[axis][v] else 1,
                    -self._axis_dev(axis, v),
                    v,
                ),
            )
            out.append(ranked[: max(1, width)])
        return out


def stratified_top(
    entries: t.Mapping[int, tuple[float, int]], keep: int
) -> tuple[int, ...]:
    """The promoted index set, mirrored from ``halving._promote``.

    ``entries`` maps enumeration index to ``(score, deadline digit)``.
    Round-robins over per-deadline strata, each sorted ``(-score,
    index)`` — the same selection the scheduler's promotion makes, so
    the sampler's stall test watches exactly the set that will promote.
    Returned sorted by index (a set identity, not a rung order).
    """
    strata: dict[int, list[tuple[float, int]]] = {}
    for index, (score, deadline) in entries.items():
        strata.setdefault(deadline, []).append((-score, index))
    for group in strata.values():
        group.sort()
    chosen: list[int] = []
    rank = 0
    while len(chosen) < keep:
        advanced = False
        for deadline in sorted(strata):
            group = strata[deadline]
            if rank < len(group) and len(chosen) < keep:
                chosen.append(group[rank][1])
                advanced = True
        if not advanced:
            break
        rank += 1
    return tuple(sorted(chosen))


def _walk_stride(n: int) -> int:
    """An odd stride coprime with ``n``: a full-period permutation step.

    ``(k * stride) % n`` for ``k = 0..n-1`` then visits every index
    exactly once, spread across the space — the deterministic stand-in
    for random exploration. Derived from ``n`` alone.
    """
    if n <= 2:
        return 1
    stride = int(n * 0.6180339887) | 1  # golden-ratio fraction, odd
    while math.gcd(stride, n) != 1:
        stride += 2
    return stride % n or 1


def _neighbors(
    digits: tuple[int, ...], radices: tuple[int, ...]
) -> t.Iterator[tuple[int, ...]]:
    """Every Hamming-1 variant: one axis moved to any other value."""
    for axis, r in enumerate(radices):
        if r < 2:
            continue
        for v in range(r):
            if v != digits[axis]:
                yield digits[:axis] + (v,) + digits[axis + 1 :]


def _index_of(digits: t.Sequence[int], radices: t.Sequence[int]) -> int:
    out = 0
    for digit, radix in zip(digits, radices):
        out = out * radix + digit
    return out


def guided_sample(
    space: SpaceSpec,
    keep: int,
    evaluate: t.Callable[[list[int]], list[float | None]],
    *,
    limit: int | None = None,
    probe: int = 2048,
    batch: int = 2048,
    patience: int = 1,
    max_rounds: int = 64,
) -> tuple[dict[int, float], GuidedReport]:
    """Drive the propose/score loop until the top set goes quiet.

    Parameters
    ----------
    space, limit:
        The (possibly capped) universe. With a ``limit``, proposals are
        restricted to the same strided subsample the exhaustive path
        enumerates.
    keep:
        Rung-0 promotion budget — the set whose stability stops the loop.
    evaluate:
        The true scorer: takes enumeration indices, returns one score
        per index (``None`` = disqualified). The caller owns all
        bookkeeping side effects (rung report counts, verdicts).
    probe, batch:
        Sizes of the initial stratified probe and each round's
        exploit/explore batches (the closure batch is never capped —
        stopping requires it empty).
    patience:
        Consecutive rounds the top set must survive unchanged.
    max_rounds:
        Safety cap on proposal rounds.

    Returns
    -------
    ``(scores, report)`` where ``scores`` maps every *feasible*
    evaluated index to its true rung-0 score.
    """
    if keep < 1:
        raise ConfigurationError(f"keep must be >= 1, got {keep}")
    if probe < 1 or batch < 1:
        raise ConfigurationError(
            f"probe and batch must be >= 1, got {probe}, {batch}"
        )
    radices = space.radices()
    full = space.size()
    if limit is not None and 0 < limit < full:
        universe = space.indices(limit)
        in_universe: t.Container[int] = set(universe)
    else:
        universe = None  # implicit range(full)
        in_universe = range(full)
    n = len(universe) if universe is not None else full
    report = GuidedReport(universe=n)
    model = Surrogate(space)
    scores: dict[int, float] = {}
    digits_of: dict[int, tuple[int, ...]] = {}
    evaluated: set[int] = set()

    def universe_at(pos: int) -> int:
        return universe[pos] if universe is not None else pos

    def run_batch(indices: list[int]) -> None:
        fresh = [i for i in indices if i not in evaluated]
        if not fresh:
            return
        report.proposals += len(fresh)
        for index, score in zip(fresh, evaluate(fresh)):
            evaluated.add(index)
            digits = space.digits_at(index)
            digits_of[index] = digits
            model.observe(digits, score if score is not None else 0.0)
            if score is not None:
                scores[index] = score
        report.probed = len(evaluated)

    # -- initial probe: a strided walk plus per-axis value sweeps -------
    stride = _walk_stride(n)
    cursor = 0

    def walk(count: int) -> list[int]:
        nonlocal cursor
        out: list[int] = []
        while len(out) < count and cursor < n:
            out.append(universe_at((cursor * stride) % n))
            cursor += 1
        return out

    first = walk(min(probe, n))
    anchors = [
        space.digits_at(universe_at(0)),
        space.digits_at(universe_at(n // 2)),
        space.digits_at(universe_at(n - 1)),
    ]
    sweeps: list[int] = []
    for anchor in anchors:
        for axis, r in enumerate(radices):
            for v in range(r):
                index = _index_of(anchor[:axis] + (v,) + anchor[axis + 1 :], radices)
                if index in in_universe:
                    sweeps.append(index)
    run_batch(sorted(set(first) | set(sweeps)))

    # -- propose / score until the top set is stable and closed ---------
    prev_top: tuple[int, ...] | None = None
    stable = 0
    while True:
        report.rounds += 1
        top = stratified_top(
            {
                i: (score, digits_of[i][_DEADLINE_AXIS])
                for i, score in scores.items()
            },
            keep,
        )
        closure: set[int] = set()
        for index in top:
            for neighbor in _neighbors(digits_of[index], radices):
                ni = _index_of(neighbor, radices)
                if ni not in evaluated and ni in in_universe:
                    closure.add(ni)
        stable = stable + 1 if top == prev_top else 0
        prev_top = top
        if not closure and stable >= patience:
            report.stop_reason = "stable"
            break
        if len(evaluated) >= n:
            report.stop_reason = "exhausted"
            break
        if report.rounds >= max_rounds:
            report.stop_reason = "max-rounds"
            break

        proposals: set[int] = set(closure)
        # exploit: beam over top axis values, ranked by prediction+bonus
        beam = model.top_axis_values(_BEAM_WIDTH)
        candidates: list[tuple[float, int]] = []
        partial: list[list[int]] = [[]]
        for axis_values in beam:
            partial = [p + [v] for p in partial for v in axis_values]
        for combo in partial:
            digits = tuple(combo)
            index = _index_of(digits, radices)
            if index in evaluated or index not in in_universe:
                continue
            gain = model.predict(digits) + _EXPLORE_BONUS * model.uncertainty(
                digits
            )
            candidates.append((-gain, index))
        candidates.sort()
        proposals.update(index for _, index in candidates[: batch // 2])
        # explore: the next slice of the permutation walk
        proposals.update(walk(batch // 2))
        fresh = sorted(i for i in proposals if i not in evaluated)
        if not fresh:
            report.stop_reason = "exhausted"
            break
        run_batch(fresh)
    return scores, report
