"""Multi-fidelity design-space exploration.

The paper reports a handful of hand-picked configurations; this package
asks the inverse question — *which* corner of the (policy × partition ×
rotation × link × battery × workload) space is worth running at all?

- :mod:`repro.explore.space` declares the space: :class:`Axis` values
  over the paper's knobs, combined by :class:`SpaceSpec` into a
  deterministic enumeration of :class:`ExploreConfig` candidates.
- :mod:`repro.explore.halving` resolves it: successive halving over a
  four-rung fidelity ladder (analytic prescreen → exact battery cohort
  → fast simulation → exact confirmation), so 100k+ configs reduce to
  a frontier in seconds with ≥90% never touching a simulator.
- :mod:`repro.explore.pareto` keeps what matters: the non-dominated
  set over (lifetime, frames, deadline misses).
"""

from repro.explore.halving import (
    RUNGS,
    ExploreResult,
    FrontierMember,
    RungReport,
    explore,
)
from repro.explore.pareto import OBJECTIVES, dominates, pareto_indices
from repro.explore.space import (
    AXES,
    CHEMISTRIES,
    POLICY_FAMILIES,
    Axis,
    ConfigBattery,
    ExploreConfig,
    SpaceSpec,
    default_space,
)

__all__ = [
    "AXES",
    "CHEMISTRIES",
    "OBJECTIVES",
    "POLICY_FAMILIES",
    "RUNGS",
    "Axis",
    "ConfigBattery",
    "ExploreConfig",
    "ExploreResult",
    "FrontierMember",
    "RungReport",
    "SpaceSpec",
    "default_space",
    "dominates",
    "explore",
    "pareto_indices",
]
