"""Declarative design spaces for multi-fidelity exploration.

The paper hand-picks four configurations for Fig. 10; the methodology
it implies — search the whole design space for the technique that
maximizes multi-battery lifetime — needs a way to *say* what the space
is. A :class:`SpaceSpec` is a set of named :class:`Axis` objects (grid,
log, or choice) over the knobs this reproduction models: DVS policy
family, partition cut, rotation period, link bandwidth, battery
chemistry and capacity, I/O activity, and the frame deadline. Axes the
spec omits stay pinned at their paper-calibrated values.

Enumeration is deterministic: configs come out in the cross-product
order of the fixed axis vocabulary (:data:`AXES`), each tagged with its
enumeration index, regardless of the order axes were declared in. That
index is the tie-breaker the successive-halving scheduler uses, which
is one of the three legs of the frontier's bit-identity across serial,
parallel, and cache-replayed runs (see :mod:`repro.explore.halving`).

An :class:`ExploreConfig` resolves to real objects on demand — policy
instance, :class:`~repro.hw.link.TransactionTiming`, power model,
battery factory, and a full :class:`~repro.core.experiments.ExperimentSpec`
— so every rung of the fidelity ladder consumes the same source of
truth.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing as t

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    DVSPolicy,
    SlowestFeasiblePolicy,
)
from repro.errors import ConfigurationError
from repro.hw.battery.base import Battery
from repro.hw.battery.kibam import KiBaM, KiBaMParameters, PAPER_KIBAM_PARAMETERS
from repro.hw.battery.linear import LinearBattery
from repro.hw.battery.peukert import PeukertBattery
from repro.hw.link import TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerModel

__all__ = [
    "AXES",
    "POLICY_FAMILIES",
    "CHEMISTRIES",
    "PEUKERT_REFERENCE_MA",
    "PEUKERT_EXPONENT",
    "Axis",
    "SpaceSpec",
    "ExploreConfig",
    "ConfigBattery",
    "default_space",
]

#: The fixed axis vocabulary, in enumeration order. A spec may declare
#: any subset; omitted axes pin to their paper-calibrated defaults.
AXES = (
    "policy",
    "cut",
    "rotation_period",
    "bandwidth_bps",
    "chemistry",
    "capacity_mah",
    "io_activity",
    "deadline_s",
)

#: DVS policy families the ``policy`` axis ranges over.
POLICY_FAMILIES = ("baseline", "slowest", "dvs_io")

#: Battery chemistries the ``chemistry`` axis ranges over.
CHEMISTRIES = ("kibam", "linear", "peukert")

#: Peukert parameters shared by :class:`ConfigBattery` and the rung-0
#: analytic drain (must match :class:`~repro.hw.battery.peukert.PeukertBattery`
#: defaults, or the prescreen would rank a different model than it runs).
PEUKERT_REFERENCE_MA = 60.0
PEUKERT_EXPONENT = 1.2

_DEFAULTS: dict[str, tuple] = {
    "policy": ("dvs_io",),
    "cut": ((1,),),
    "rotation_period": (None,),
    "bandwidth_bps": (80_000.0,),
    "chemistry": ("kibam",),
    "capacity_mah": (PAPER_KIBAM_PARAMETERS.capacity_mah,),
    "io_activity": (PAPER_POWER_MODEL.io_activity,),
    "deadline_s": (2.3,),
}


@dataclasses.dataclass(frozen=True)
class Axis:
    """One named dimension of a design space: a tuple of values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name not in AXES:
            raise ConfigurationError(
                f"unknown axis {self.name!r}; valid axes: {', '.join(AXES)}"
            )
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} needs at least one value")

    @classmethod
    def grid(cls, name: str, lo: float, hi: float, n: int) -> "Axis":
        """``n`` evenly spaced values over ``[lo, hi]``."""
        if n < 1:
            raise ConfigurationError(f"axis {name!r}: grid needs n >= 1, got {n}")
        if hi < lo:
            raise ConfigurationError(f"axis {name!r}: hi {hi} < lo {lo}")
        if n == 1:
            return cls(name, (lo,))
        step = (hi - lo) / (n - 1)
        return cls(name, tuple(lo + step * i for i in range(n)))

    @classmethod
    def log(cls, name: str, lo: float, hi: float, n: int) -> "Axis":
        """``n`` geometrically spaced values over ``[lo, hi]``."""
        if n < 1:
            raise ConfigurationError(f"axis {name!r}: log needs n >= 1, got {n}")
        if lo <= 0 or hi < lo:
            raise ConfigurationError(
                f"axis {name!r}: log needs 0 < lo <= hi, got [{lo}, {hi}]"
            )
        if n == 1:
            return cls(name, (lo,))
        ratio = (hi / lo) ** (1.0 / (n - 1))
        return cls(name, tuple(lo * ratio**i for i in range(n)))

    @classmethod
    def choice(cls, name: str, *values: t.Any) -> "Axis":
        """An explicit, ordered set of values."""
        return cls(name, tuple(values))


def _check_axis_values(name: str, values: tuple) -> None:
    """Domain validation per axis, so bad spaces fail at spec time."""
    if name == "policy":
        bad = [v for v in values if v not in POLICY_FAMILIES]
        if bad:
            raise ConfigurationError(
                f"policy axis: unknown families {bad}; "
                f"valid: {', '.join(POLICY_FAMILIES)}"
            )
    elif name == "chemistry":
        bad = [v for v in values if v not in CHEMISTRIES]
        if bad:
            raise ConfigurationError(
                f"chemistry axis: unknown chemistries {bad}; "
                f"valid: {', '.join(CHEMISTRIES)}"
            )
    elif name == "cut":
        for v in values:
            if not isinstance(v, tuple) or any(
                not isinstance(c, int) for c in v
            ):
                raise ConfigurationError(
                    f"cut axis values must be tuples of ints, got {v!r}"
                )
    elif name == "rotation_period":
        for v in values:
            if v is not None and (not isinstance(v, int) or v < 1):
                raise ConfigurationError(
                    f"rotation_period values must be None or int >= 1, got {v!r}"
                )
    else:  # numeric axes
        for v in values:
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
                raise ConfigurationError(
                    f"{name} axis values must be positive finite numbers, got {v!r}"
                )
        if name == "io_activity" and any(v > 1.0 for v in values):
            raise ConfigurationError("io_activity values must lie in (0, 1]")


@dataclasses.dataclass(frozen=True)
class ExploreConfig:
    """One fully specified candidate configuration.

    ``index`` is the config's position in its space's deterministic
    enumeration — stable across processes and runs, and the promotion
    tie-breaker of the halving scheduler.
    """

    index: int
    policy: str
    cut: tuple[int, ...]
    rotation_period: int | None
    bandwidth_bps: float
    chemistry: str
    capacity_mah: float
    io_activity: float
    deadline_s: float

    @property
    def n_stages(self) -> int:
        """Pipeline depth implied by the cut."""
        return len(self.cut) + 1

    @property
    def label(self) -> str:
        """Short stable label used for registry records."""
        return f"x{self.index:06d}"

    def describe(self) -> str:
        """Human-readable one-liner for tables and spec descriptions."""
        rot = f" rot={self.rotation_period}" if self.rotation_period else ""
        return (
            f"{self.policy} cut={list(self.cut)}{rot} "
            f"bw={self.bandwidth_bps / 1000.0:g}kbps {self.chemistry} "
            f"{self.capacity_mah:.1f}mAh io={self.io_activity:.3f} "
            f"D={self.deadline_s:g}s"
        )

    # -- resolution ------------------------------------------------------
    def policy_object(self) -> DVSPolicy:
        """The policy family resolved to a concrete DVS policy."""
        if self.policy == "baseline":
            return BaselinePolicy()
        if self.policy == "slowest":
            return SlowestFeasiblePolicy()
        if self.policy == "dvs_io":
            return DVSDuringIOPolicy(SlowestFeasiblePolicy())
        raise ConfigurationError(f"unknown policy family {self.policy!r}")

    def timing(self) -> TransactionTiming:
        """Link timing at this config's bandwidth (paper startup cost)."""
        return TransactionTiming(bandwidth_bps=self.bandwidth_bps)

    def power_model(self) -> PowerModel:
        """The paper power model at this config's I/O activity."""
        return PAPER_POWER_MODEL.replace(io_activity=self.io_activity)

    def battery_factory(self) -> "ConfigBattery":
        """Picklable factory for this config's battery cells."""
        return ConfigBattery(self.chemistry, self.capacity_mah)

    def battery_parameters(self) -> KiBaMParameters:
        """KiBaM parameters at this capacity (kibam chemistry only)."""
        if self.chemistry != "kibam":
            raise ConfigurationError(
                f"battery_parameters needs kibam chemistry, not {self.chemistry!r}"
            )
        return dataclasses.replace(
            PAPER_KIBAM_PARAMETERS, capacity_mah=self.capacity_mah
        )

    def experiment_spec(self, profile: TaskProfile = PAPER_PROFILE):
        """The full-simulation spec for this configuration."""
        from repro.core.experiments import ExperimentSpec

        return ExperimentSpec(
            label=self.label,
            description=self.describe(),
            policy=self.policy_object(),
            cuts=self.cut,
            rotation_period=self.rotation_period,
            deadline_s=self.deadline_s,
            profile=profile,
        )


@dataclasses.dataclass(frozen=True)
class ConfigBattery:
    """Picklable battery factory for one chemistry/capacity pair.

    ``run_experiment`` takes a zero-argument callable per spawned cell;
    a frozen dataclass keeps that callable canonical-encodable (cache
    keys) and picklable (worker processes), unlike a lambda.
    """

    chemistry: str
    capacity_mah: float

    def __call__(self) -> Battery:
        if self.chemistry == "kibam":
            return KiBaM(
                dataclasses.replace(
                    PAPER_KIBAM_PARAMETERS, capacity_mah=self.capacity_mah
                )
            )
        if self.chemistry == "linear":
            return LinearBattery(self.capacity_mah)
        if self.chemistry == "peukert":
            return PeukertBattery(
                self.capacity_mah,
                reference_ma=PEUKERT_REFERENCE_MA,
                exponent=PEUKERT_EXPONENT,
            )
        raise ConfigurationError(f"unknown chemistry {self.chemistry!r}")


@dataclasses.dataclass(frozen=True)
class SpaceSpec:
    """A declarative design space: axes plus shared run settings."""

    axes: tuple[Axis, ...]
    max_hours: float = 400.0
    profile: TaskProfile = PAPER_PROFILE

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for axis in self.axes:
            if axis.name in seen:
                raise ConfigurationError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
            _check_axis_values(axis.name, axis.values)
        if self.max_hours <= 0:
            raise ConfigurationError(
                f"max_hours must be positive, got {self.max_hours}"
            )
        n = len(self.profile.blocks)
        for cut in self.axis_values("cut"):
            # Partition validates too, but failing at spec time names
            # the axis instead of a mid-sweep config.
            if any(not 0 < c < n for c in cut) or any(
                b <= a for a, b in zip(cut, cut[1:])
            ):
                raise ConfigurationError(
                    f"cut {cut!r} invalid for a {n}-block profile"
                )

    def axis_values(self, name: str) -> tuple:
        """The declared values for one axis, or its pinned default."""
        if name not in AXES:
            raise ConfigurationError(f"unknown axis {name!r}")
        for axis in self.axes:
            if axis.name == name:
                return axis.values
        return _DEFAULTS[name]

    def size(self) -> int:
        """Number of configs the full cross product enumerates."""
        out = 1
        for name in AXES:
            out *= len(self.axis_values(name))
        return out

    def radices(self) -> tuple[int, ...]:
        """Axis cardinalities in :data:`AXES` order (the mixed radix)."""
        return tuple(len(self.axis_values(name)) for name in AXES)

    def digits_at(self, index: int) -> tuple[int, ...]:
        """Per-axis value indices for one enumeration index, O(1).

        The enumeration is ``itertools.product`` over :data:`AXES`, i.e.
        a mixed-radix number with the last axis as the least-significant
        digit; decoding is plain ``divmod`` — no materialization.
        """
        n = self.size()
        if not 0 <= index < n:
            raise ConfigurationError(
                f"config index {index} outside space of {n} configs"
            )
        digits = [0] * len(AXES)
        rem = index
        for pos in range(len(AXES) - 1, -1, -1):
            rem, digits[pos] = divmod(rem, len(self.axis_values(AXES[pos])))
        return tuple(digits)

    def config_at(self, index: int) -> ExploreConfig:
        """The config at one enumeration index, without enumerating.

        ``space.config_at(i)`` equals ``space.configs()[i]`` for every
        valid ``i`` (tests pin this) — it is how the guided sampler and
        ``--resume`` touch 10^6+ spaces one config at a time.
        """
        digits = self.digits_at(index)
        return ExploreConfig(
            index,
            *(
                self.axis_values(name)[digit]
                for name, digit in zip(AXES, digits)
            ),
        )

    def indices(self, limit: int | None = None) -> list[int]:
        """The enumeration indices :meth:`configs` would return.

        With no ``limit`` this is the full range; with one, the same
        evenly strided subsample — computed arithmetically, so callers
        can reason about a capped huge space without building it.
        """
        n = self.size()
        if limit is not None and 0 < limit < n:
            return sorted(
                {round(i * (n - 1) / (limit - 1)) for i in range(limit)}
                if limit > 1
                else {0}
            )
        return list(range(n))

    def configs(self, limit: int | None = None) -> list[ExploreConfig]:
        """Enumerate the space in deterministic cross-product order.

        ``limit`` subsamples deterministically (evenly strided over the
        enumeration, keeping each config's original index), so a capped
        exploration of a huge space is still reproducible.
        """
        values = [self.axis_values(name) for name in AXES]
        configs = [
            ExploreConfig(index, *combo)
            for index, combo in enumerate(itertools.product(*values))
        ]
        if limit is not None and 0 < limit < len(configs):
            configs = [configs[i] for i in self.indices(limit)]
        return configs


def default_space(
    bandwidth_points: int = 10,
    capacity_points: int = 12,
    io_points: int = 12,
    chemistries: t.Sequence[str] = ("kibam",),
    rotation_periods: t.Sequence[int | None] = (None, 25, 50, 100, 200, 400),
    deadlines: t.Sequence[float] = (2.3,),
    max_hours: float = 400.0,
) -> SpaceSpec:
    """The CLI's stock space: ~100k configs around the paper's design.

    3 policies x 4 cuts x 6 rotation settings x ``bandwidth_points``
    bandwidths (log-spaced over half-to-double the paper's 80 kbps) x
    ``capacity_points`` capacities (quarter to full scale) x
    ``io_points`` I/O activity levels — 103,680 configs at the
    defaults. Chemistry stays KiBaM by default (the calibrated model);
    pass more chemistries to cross the ablation batteries in. With the
    single paper deadline, lifetime and frames align and the frontier
    tends to collapse to one point; pass several ``deadlines`` to
    surface the throughput-versus-lifetime tradeoff.
    """
    cap = PAPER_KIBAM_PARAMETERS.capacity_mah
    axes = (
        Axis.choice("policy", *POLICY_FAMILIES),
        Axis.choice("cut", (), (1,), (2,), (3,)),
        Axis.choice("rotation_period", *rotation_periods),
        Axis.log("bandwidth_bps", 40_000.0, 160_000.0, bandwidth_points),
        Axis.choice("chemistry", *chemistries),
        Axis.grid("capacity_mah", cap / 4.0, cap, capacity_points),
        Axis.grid("io_activity", 0.05, 0.60, io_points),
        Axis.choice("deadline_s", *deadlines),
    )
    return SpaceSpec(axes=axes, max_hours=max_hours)
