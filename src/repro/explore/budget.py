"""Adaptive promotion budgets driven by rung-to-rung rank disagreement.

The halving ladder's exact-simulation budget (``keep[2]``) is the
scarcest resource in an exploration — rung 3 costs seconds per config
while rung 1 costs milliseconds — so *where* that budget lands matters
more than its size. The fixed strategy (equal round-robin across
deadline strata) spends the same effort on a stratum whose cheap and
expensive fidelities already agree as on one where they rank survivors
in a different order.

This module treats the ladder like the feedback controllers in the
DVS literature it reproduces: the measured signal is per-stratum rank
disagreement between rung-1 (cohort battery walk) and rung-2 (fast
simulation) scores of the same survivors — a normalized Kendall-tau
distance in [0, 1] — and the actuator is the per-stratum share of the
exact-rung budget. Strata where the fidelities disagree get more exact
confirmations (their cheap scores are least trustworthy); strata in
perfect agreement fall back to their proportional share.

Everything is deterministic: apportionment is D'Hondt-style highest
averages with ties broken by stratum order, which with equal weights
degenerates to exactly the round-robin split the fixed strategy used
(single-stratum spaces are bit-for-bit unchanged).
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError

__all__ = ["rank_disagreement", "allocate_budgets"]

#: How strongly disagreement skews the apportionment weights: a stratum
#: at maximal disagreement (tau distance 1.0) weighs ``1 + _GAIN`` times
#: a stratum in perfect agreement.
_GAIN = 3.0


def rank_disagreement(
    pairs: t.Sequence[tuple[float, float, int]]
) -> float:
    """Normalized Kendall-tau distance between two scorings.

    ``pairs`` holds ``(score_a, score_b, tiebreak)`` per item — the same
    survivors scored by two fidelities, with the enumeration index as
    the deterministic tie-break both orderings share. Returns the
    fraction of item pairs the two orderings put in opposite relative
    order: 0.0 = identical rankings, 1.0 = exactly reversed. Fewer than
    two items cannot disagree.
    """
    n = len(pairs)
    if n < 2:
        return 0.0
    order_a = sorted(range(n), key=lambda i: (-pairs[i][0], pairs[i][2]))
    order_b = sorted(range(n), key=lambda i: (-pairs[i][1], pairs[i][2]))
    rank_a = [0] * n
    rank_b = [0] * n
    for rank, i in enumerate(order_a):
        rank_a[i] = rank
    for rank, i in enumerate(order_b):
        rank_b[i] = rank
    discordant = sum(
        1
        for i in range(n)
        for j in range(i + 1, n)
        if (rank_a[i] - rank_a[j]) * (rank_b[i] - rank_b[j]) < 0
    )
    return discordant / (n * (n - 1) // 2)


def allocate_budgets(
    total: int,
    sizes: t.Sequence[int],
    disagreements: t.Sequence[float],
) -> list[int]:
    """Split ``total`` promotion slots across strata, skewed by distrust.

    ``sizes[i]`` is how many candidates stratum ``i`` has (a hard cap on
    its allocation); ``disagreements[i]`` is its rung-to-rung
    :func:`rank_disagreement`. Strata are assumed in their promotion
    order (ascending deadline) — that order breaks every tie.

    The split is highest-averages apportionment over weights
    ``1 + _GAIN * disagreement`` after a floor pass granting each
    non-empty stratum one slot (budget permitting) — no stratum's
    tradeoff region disappears just because its fidelities agree.
    Equal disagreements reproduce the plain round-robin split exactly.
    """
    if total < 0:
        raise ConfigurationError(f"total budget must be >= 0, got {total}")
    if len(sizes) != len(disagreements):
        raise ConfigurationError(
            f"sizes/disagreements lengths disagree: "
            f"{len(sizes)}, {len(disagreements)}"
        )
    m = len(sizes)
    alloc = [0] * m
    remaining = min(total, sum(max(0, s) for s in sizes))
    weights = [1.0 + _GAIN * max(0.0, min(1.0, d)) for d in disagreements]
    for i in range(m):
        if remaining <= 0:
            break
        if sizes[i] > 0:
            alloc[i] = 1
            remaining -= 1
    while remaining > 0:
        open_strata = [i for i in range(m) if alloc[i] < sizes[i]]
        if not open_strata:
            break
        best = max(
            open_strata, key=lambda i: (weights[i] / (alloc[i] + 1), -i)
        )
        alloc[best] += 1
        remaining -= 1
    return alloc
