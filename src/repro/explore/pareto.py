"""Pareto-frontier extraction over explore objectives.

The exploration's output is multi-objective — the paper's normalized
lifetime competes with delivered frames and deadline misses — so the
answer is a frontier, not a single winner. Domination here is the
standard strict Pareto order after sense normalization: ``a`` dominates
``b`` iff ``a`` is at least as good on every objective and strictly
better on at least one. Equal points do not dominate each other, so
duplicate configurations both survive (and tests pin that).

Everything is plain deterministic Python over small survivor sets —
by the time a frontier is computed, successive halving has already
reduced 100k+ configs to a handful of exact-confirmed survivors — so
an O(n^2) sweep is the simplest correct choice.
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError

__all__ = ["OBJECTIVES", "dominates", "pareto_indices", "pareto_layers"]

#: The explore objectives, in point order: maximize lifetime, maximize
#: delivered frames, minimize deadline misses.
OBJECTIVES: tuple[tuple[str, str], ...] = (
    ("lifetime_hours", "max"),
    ("frames", "max"),
    ("deadline_misses", "min"),
)

_SENSES = ("max", "min")


def _normalize(
    point: t.Sequence[float], senses: t.Sequence[str]
) -> tuple[float, ...]:
    """Flip min-objectives so "greater is better" holds uniformly."""
    return tuple(
        v if sense == "max" else -v for v, sense in zip(point, senses)
    )


def dominates(
    a: t.Sequence[float],
    b: t.Sequence[float],
    senses: t.Sequence[str] | None = None,
) -> bool:
    """True iff ``a`` strictly Pareto-dominates ``b``.

    ``senses`` is one of ``"max"``/``"min"`` per objective (default:
    the :data:`OBJECTIVES` senses). Equal points dominate neither way.
    """
    if senses is None:
        senses = [sense for _, sense in OBJECTIVES]
    if len(a) != len(b) or len(a) != len(senses):
        raise ConfigurationError(
            f"point/sense lengths disagree: {len(a)}, {len(b)}, {len(senses)}"
        )
    bad = [s for s in senses if s not in _SENSES]
    if bad:
        raise ConfigurationError(f"unknown objective senses: {bad}")
    na, nb = _normalize(a, senses), _normalize(b, senses)
    return all(x >= y for x, y in zip(na, nb)) and any(
        x > y for x, y in zip(na, nb)
    )


def pareto_indices(
    points: t.Sequence[t.Sequence[float]],
    senses: t.Sequence[str] | None = None,
) -> list[int]:
    """Indices of the non-dominated points, in input order.

    Duplicates of a frontier point are all kept (none strictly
    dominates its twin); an empty input yields an empty frontier.
    """
    if senses is None:
        senses = [sense for _, sense in OBJECTIVES]
    out: list[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate, senses)
            for j, other in enumerate(points)
            if j != i
        ):
            out.append(i)
    return out


def pareto_layers(
    points: t.Sequence[t.Sequence[float]],
    senses: t.Sequence[str] | None = None,
) -> list[list[int]]:
    """Non-dominated sorting: successive Pareto fronts of ``points``.

    Layer 0 is :func:`pareto_indices`; layer ``k`` is the frontier of
    what remains after peeling layers ``0..k-1``. Every index appears in
    exactly one layer, in input order within its layer — which makes
    the output a deterministic promotion order for frontier-aware
    halving: walk layers outward, break ties inside a layer however the
    caller likes. Strict domination is acyclic, so the peeling always
    terminates with every point placed.
    """
    if senses is None:
        senses = [sense for _, sense in OBJECTIVES]
    remaining = list(range(len(points)))
    layers: list[list[int]] = []
    while remaining:
        front = [
            i
            for i in remaining
            if not any(
                dominates(points[j], points[i], senses)
                for j in remaining
                if j != i
            )
        ]
        layers.append(front)
        peeled = set(front)
        remaining = [i for i in remaining if i not in peeled]
    return layers
