"""Content-addressed result caching for experiment sweeps.

A cache key is a SHA-256 digest of a *canonical encoding* of whatever
configuration objects produced a result — experiment specs, policies,
power models, plain kwargs — plus a code-version salt. Two runs with
identical configuration hash to the same key; any change to the
configuration (or to the salt, bumped when simulation semantics change)
produces a different key and therefore a miss. Values are JSON
payloads stored one-file-per-key under a cache directory, so the cache
is transparent, diffable, and safe to delete at any time.

The encoding is intentionally *structural*: dataclasses encode as
their type plus field values, generic objects as their type plus public
attributes, functions and classes by qualified name. Anything the
encoder does not understand raises — silently mis-keying a cache entry
is the one failure mode a result cache must never have.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import typing as t

from repro.errors import ConfigurationError

__all__ = ["CACHE_SALT", "canonical", "stable_key", "ResultCache"]

#: Bumped whenever a change alters simulation results without altering
#: any configuration object (kernel semantics, battery integration,
#: protocol fixes). Stale entries then miss instead of lying.
CACHE_SALT = "substrate-2"

_PRIMITIVES = (str, int, bool, type(None))


def canonical(obj: t.Any) -> t.Any:
    """Encode ``obj`` as a JSON-stable structure for hashing.

    Raises
    ------
    ConfigurationError
        If ``obj`` (or anything it contains) has no canonical form.
    """
    if isinstance(obj, _PRIMITIVES):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; json.dumps floats do too,
        # but being explicit keeps the key independent of json details.
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", f"{type(obj).__module__}.{type(obj).__qualname__}", obj.name]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        items = sorted(
            (canonical(item) for item in obj),
            key=lambda e: json.dumps(e, sort_keys=True),
        )
        return ["set", items]
    if isinstance(obj, dict):
        pairs = [[canonical(k), canonical(v)] for k, v in obj.items()]
        pairs.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["map", pairs]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [
            [f.name, canonical(getattr(obj, f.name))]
            for f in dataclasses.fields(obj)
        ]
        return ["dc", f"{type(obj).__module__}.{type(obj).__qualname__}", fields]
    if isinstance(obj, type) or callable(obj):
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if module is None or qualname is None or "<locals>" in qualname:
            raise ConfigurationError(
                f"cannot canonically encode {obj!r}: only module-level "
                "functions and classes have a stable identity"
            )
        return ["fn", f"{module}.{qualname}"]
    # Generic object: type identity + public attribute state. Private
    # (underscore) attributes are derived caches by this codebase's
    # convention and must not leak into the key.
    state: dict[str, t.Any] = {}
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                state.setdefault(slot, getattr(obj, slot))
    if not state and not hasattr(obj, "__dict__"):
        raise ConfigurationError(f"cannot canonically encode {obj!r}")
    public = [
        [name, canonical(value)]
        for name, value in sorted(state.items())
        if not name.startswith("_")
    ]
    return ["obj", f"{type(obj).__module__}.{type(obj).__qualname__}", public]


def stable_key(*parts: t.Any, salt: str = "") -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    encoded = json.dumps(
        [salt, [canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class ResultCache:
    """One-file-per-key JSON store under a cache directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily). Default ``.repro-cache`` in
        the current working directory.
    salt:
        Extra key material mixed into every key. Defaults to the
        package version plus :data:`CACHE_SALT`, so upgrading the code
        or bumping the salt invalidates every prior entry without
        touching the files.

    Notes
    -----
    The cache is *tolerant*: a corrupted, truncated, or unreadable
    entry behaves as a miss (and is removed when possible), never as an
    error — a cache must only ever trade time, not correctness.
    """

    def __init__(self, root: str | os.PathLike = ".repro-cache", salt: str | None = None):
        if salt is None:
            import repro

            salt = f"{repro.__version__}/{CACHE_SALT}"
        self.root = pathlib.Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def key_for(self, *parts: t.Any) -> str:
        """Stable key for a configuration, mixed with this cache's salt."""
        return stable_key(*parts, salt=self.salt)

    def path_for(self, key: str) -> pathlib.Path:
        """Where ``key``'s payload lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    # -- store ----------------------------------------------------------
    def get(self, key: str) -> t.Any | None:
        """The payload stored under ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            # Corrupted entry: drop it and recompute.
            self.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
            return None
        self.hits += 1
        if isinstance(payload, dict) and payload.get("__repro_cache__") == 1:
            return payload.get("payload")
        # Entries written before the salt envelope existed store the
        # bare payload; they still decode (the salt already gated the
        # key), they just count as "(unversioned)" in info().
        return payload

    def put(self, key: str, payload: t.Any) -> None:
        """Store ``payload`` (JSON-serializable) under ``key``.

        The write is atomic (temp file + rename), so a killed process
        can truncate at most its own temp file, never a live entry.
        Payloads are wrapped in a small envelope carrying the writing
        salt — the salt is already part of the key, so this changes no
        lookup, but it lets :meth:`info`/:meth:`prune` attribute and
        evict entries stranded by a salt bump.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        envelope = {"__repro_cache__": 1, "salt": self.salt, "payload": payload}
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            # A read-only or full disk degrades to "no cache", silently.
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- lifecycle -------------------------------------------------------
    def _entries(self) -> list[tuple[pathlib.Path, int, float, str]]:
        """(path, bytes, mtime, salt) per entry; unreadable ones skipped."""
        out: list[tuple[pathlib.Path, int, float, str]] = []
        if not self.root.exists():
            return out
        for path in sorted(self.root.rglob("*.json")):
            try:
                stat = path.stat()
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError, UnicodeDecodeError):
                continue
            salt = "(unversioned)"
            if isinstance(payload, dict) and payload.get("__repro_cache__") == 1:
                salt = str(payload.get("salt", "(unversioned)"))
            out.append((path, stat.st_size, stat.st_mtime, salt))
        return out

    def info(self) -> dict[str, t.Any]:
        """Entry counts and sizes, overall and per writing salt.

        Entries whose salt differs from this cache's current salt can
        never hit again (the salt is key material) — they are the
        stranded mass ``prune(stale_only=True)`` reclaims.
        """
        entries = self._entries()
        by_salt: dict[str, dict[str, int]] = {}
        for _, size, _, salt in entries:
            bucket = by_salt.setdefault(salt, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        stale = sum(
            bucket["entries"]
            for salt, bucket in by_salt.items()
            if salt != self.salt
        )
        return {
            "root": str(self.root),
            "current_salt": self.salt,
            "entries": len(entries),
            "bytes": sum(size for _, size, _, _ in entries),
            "stale_entries": stale,
            "salts": {salt: by_salt[salt] for salt in sorted(by_salt)},
        }

    def prune(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        stale_only: bool = False,
    ) -> int:
        """Evict entries; returns the number of files removed.

        ``stale_only`` removes entries written under a different salt
        (unversioned ones included). ``max_age_days`` removes entries
        older than the cutoff (by mtime). ``max_bytes`` then evicts
        oldest-first until the remainder fits. Criteria compose; with
        none given this is a no-op.
        """
        import time

        entries = self._entries()
        doomed: set[pathlib.Path] = set()
        if stale_only:
            doomed.update(p for p, _, _, salt in entries if salt != self.salt)
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            doomed.update(p for p, _, mtime, _ in entries if mtime < cutoff)
        if max_bytes is not None:
            survivors = [e for e in entries if e[0] not in doomed]
            total = sum(size for _, size, _, _ in survivors)
            # Oldest first; path as tie-break keeps eviction deterministic.
            for path, size, _, _ in sorted(
                survivors, key=lambda e: (e[2], str(e[0]))
            ):
                if total <= max_bytes:
                    break
                doomed.add(path)
                total -= size
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.root} hits={self.hits} misses={self.misses}>"
