"""Sweep execution: parallel fan-out plus content-addressed caching.

The suite and sensitivity sweeps are embarrassingly parallel — each
experiment is an independent deterministic simulation — and heavily
repeated across figure regeneration, ablations, and tests. This
package provides the two pieces that exploit that:

- :class:`SweepExecutor` — maps a function over work items across
  worker processes with deterministic, input-ordered results;
- :class:`ResultCache` — a content-addressed JSON store keyed by a
  stable hash of the full experiment configuration plus a code-version
  salt, so a repeated configuration is read back instead of re-run.

See ``docs/TUTORIAL.md`` ("Running sweeps fast") for usage.
"""

from repro.exec.cache import CACHE_SALT, ResultCache, canonical, stable_key
from repro.exec.executor import SweepExecutor, SweepStats

__all__ = [
    "CACHE_SALT",
    "ResultCache",
    "SweepExecutor",
    "SweepStats",
    "canonical",
    "stable_key",
]
