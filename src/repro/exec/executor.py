"""Parallel sweep execution with deterministic ordering and caching.

:class:`SweepExecutor` maps a picklable function over a list of work
items, optionally fanning out over a :class:`ProcessPoolExecutor` and
optionally short-circuiting items through a :class:`ResultCache`.

Two properties matter more than raw speed:

- **Determinism** — results come back in input order, and a parallel
  run is bit-identical to a serial one. This holds because every
  simulation seeds its own randomness from its job description (via
  :class:`repro.sim.rng.RngStreams`), never from worker state, and the
  executor never lets scheduling order leak into results.
- **Cache transparency** — a cached item decodes to exactly what the
  function would have returned. Items whose results cannot round-trip
  through JSON simply pass ``None`` keys and are always executed.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t
from concurrent.futures import ProcessPoolExecutor

from repro.exec.cache import ResultCache

__all__ = ["SweepStats", "SweepExecutor"]

T = t.TypeVar("T")
R = t.TypeVar("R")


@dataclasses.dataclass
class SweepStats:
    """Accounting for the most recent :meth:`SweepExecutor.map` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def add(self, other: "SweepStats") -> None:
        """Fold another call's counts into this one (jobs untouched)."""
        self.total += other.total
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.wall_s += other.wall_s


class SweepExecutor:
    """Maps a function over items, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker processes. ``jobs <= 1`` runs serially in-process (no
        pool, no pickling) — the default, and what tests compare
        parallel runs against.
    cache:
        Optional :class:`ResultCache`. Only items given a key are
        cached; see :meth:`map`.
    obs:
        Optional :class:`repro.obs.Telemetry` bundle. Each
        :meth:`map` call is recorded as a ``sweep.map`` span and the
        registry accumulates ``sweep.items`` / ``sweep.executed`` /
        ``sweep.cache_hits`` counters, so sweeps aggregate per-run
        accounting deterministically across worker processes (the
        counters are derived from input order, never from scheduling).

    Examples
    --------
    >>> ex = SweepExecutor(jobs=1)
    >>> ex.map(abs, [-2, 3, -5])
    [2, 3, 5]
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        obs: t.Any = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.obs = obs
        self.stats = SweepStats()
        #: Accumulated over every :meth:`map` call on this executor —
        #: multi-rung drivers (the explore scheduler) reuse one executor
        #: across rungs and report whole-session totals from here.
        self.lifetime = SweepStats(jobs=self.jobs)

    def map(
        self,
        fn: t.Callable[[T], R],
        items: t.Sequence[T],
        *,
        keys: t.Sequence[str | None] | None = None,
        encode: t.Callable[[R], t.Any] | None = None,
        decode: t.Callable[[T, t.Any], R] | None = None,
        on_result: t.Callable[[T, R], None] | None = None,
    ) -> list[R]:
        """``[fn(item) for item in items]``, parallel and cached.

        Parameters
        ----------
        fn:
            The work function. Must be picklable (module-level) when
            ``jobs > 1``.
        items:
            Work items, picklable when ``jobs > 1``.
        keys:
            Optional per-item cache keys (same length as ``items``).
            ``None`` for an item means "never cache this one".
            Requires ``encode`` and ``decode``.
        encode:
            ``result -> JSON payload`` for storing.
        decode:
            ``(item, payload) -> result`` for loading; receives the
            original item so reconstruction can reuse unserializable
            parts of the input (e.g. the spec object itself).
        on_result:
            Optional ``(item, result) -> None`` observer, called once
            per item **in input order** after all results are settled —
            for cache hits and executed items alike, always in the
            parent process. Side effects (e.g. run-registry writes)
            therefore happen identically for serial, parallel, and
            cache-replayed executions.

        Returns
        -------
        Results in input order, regardless of completion order.
        """
        if keys is not None and (encode is None or decode is None):
            raise ValueError("cache keys require encode and decode functions")
        if self.obs is not None:
            with self.obs.span("sweep.map", items=len(items), jobs=self.jobs):
                return self._map(
                    fn, items, keys=keys, encode=encode, decode=decode,
                    on_result=on_result,
                )
        return self._map(
            fn, items, keys=keys, encode=encode, decode=decode, on_result=on_result
        )

    def _map(
        self,
        fn: t.Callable[[T], R],
        items: t.Sequence[T],
        *,
        keys: t.Sequence[str | None] | None = None,
        encode: t.Callable[[R], t.Any] | None = None,
        decode: t.Callable[[T, t.Any], R] | None = None,
        on_result: t.Callable[[T, R], None] | None = None,
    ) -> list[R]:
        started = time.perf_counter()
        n = len(items)
        results: list[t.Any] = [None] * n
        pending: list[int] = []

        cache = self.cache
        for i, item in enumerate(items):
            key = keys[i] if keys is not None and cache is not None else None
            if key is not None:
                payload = cache.get(key)
                if payload is not None:
                    results[i] = decode(item, payload)  # type: ignore[misc]
                    continue
            pending.append(i)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for i, result in zip(
                        pending, pool.map(fn, [items[i] for i in pending])
                    ):
                        results[i] = result
            else:
                for i in pending:
                    results[i] = fn(items[i])
            if cache is not None and keys is not None:
                for i in pending:
                    key = keys[i]
                    if key is not None:
                        cache.put(key, encode(results[i]))  # type: ignore[misc]

        if on_result is not None:
            for i, item in enumerate(items):
                on_result(item, results[i])

        self.stats = SweepStats(
            total=n,
            executed=len(pending),
            cache_hits=n - len(pending),
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
        )
        self.lifetime.add(self.stats)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("sweep.items").inc(n)
            m.counter("sweep.executed").inc(len(pending))
            m.counter("sweep.cache_hits").inc(n - len(pending))
        return results
