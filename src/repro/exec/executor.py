"""Parallel sweep execution with deterministic ordering and caching.

:class:`SweepExecutor` maps a picklable function over a list of work
items, optionally fanning out over a :class:`ProcessPoolExecutor` and
optionally short-circuiting items through a :class:`ResultCache`.

Two properties matter more than raw speed:

- **Determinism** — results come back in input order, and a parallel
  run is bit-identical to a serial one. This holds because every
  simulation seeds its own randomness from its job description (via
  :class:`repro.sim.rng.RngStreams`), never from worker state, and the
  executor never lets scheduling order leak into results.
- **Cache transparency** — a cached item decodes to exactly what the
  function would have returned. Items whose results cannot round-trip
  through JSON simply pass ``None`` keys and are always executed.

A third, optional concern is *visibility*: attach a
:class:`~repro.obs.flight.FlightRecorder` (``flight=``) and every work
item additionally emits durable lifecycle records (queued → dispatched
→ started → finished | failed | cache_hit) with wall/CPU/peak-RSS
telemetry, workers publish heartbeats, and pool crashes become
per-item retries instead of lost sweeps. With no recorder attached the
original code path runs unchanged — one attribute check per ``map``
call — preserving the <5% null-sink overhead budget.
"""

from __future__ import annotations

import dataclasses
import os
import time
import typing as t
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.exec.cache import ResultCache

try:  # POSIX-only; measurements degrade to zero elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None  # type: ignore[assignment]

__all__ = ["SweepStats", "SweepExecutor", "SweepItemError"]

T = t.TypeVar("T")
R = t.TypeVar("R")


class SweepItemError(RuntimeError):
    """A work item failed in a worker process (raised in the parent).

    Carries enough to locate the failure: the item index, the attempt
    count, and the worker-side ``ExcType: message`` string. The serial
    path re-raises the original exception instead (it still has it).
    """

    def __init__(self, index: int, attempts: int, error: str):
        super().__init__(
            f"sweep item {index} failed after {attempts} attempt(s): {error}"
        )
        self.index = index
        self.attempts = attempts
        self.error = error


@dataclasses.dataclass
class SweepStats:
    """Accounting for the most recent :meth:`SweepExecutor.map` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    wall_s: float = 0.0

    def add(self, other: "SweepStats") -> None:
        """Fold another call's counts into this one (jobs untouched)."""
        self.total += other.total
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.wall_s += other.wall_s


# ---------------------------------------------------------------------------
# worker-side shims (module-level: must be picklable / importable by the
# pool). These carry no repro.obs imports — the executor stays usable
# without the observability layer, and the recorder is duck-typed.
# ---------------------------------------------------------------------------

#: Per-worker heartbeat state, set by the pool initializer. Lives in
#: the *worker* process; the parent never touches it.
_HB_STATE: dict[str, t.Any] = {"queue": None, "worker": None, "index": None}


def _rusage() -> t.Any:
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return _resource.getrusage(_resource.RUSAGE_SELF)


def _measure_since(t0: float, r0: t.Any, worker: str) -> dict[str, t.Any]:
    """Wall/CPU/peak-RSS deltas since (t0, r0), as a journal measure."""
    out: dict[str, t.Any] = {
        "wall_s": time.perf_counter() - t0,
        "cpu_s": 0.0,
        "peak_rss_kb": 0,
        "worker": worker,
    }
    if r0 is not None:
        r1 = _resource.getrusage(_resource.RUSAGE_SELF)
        out["cpu_s"] = (r1.ru_utime + r1.ru_stime) - (r0.ru_utime + r0.ru_stime)
        # ru_maxrss is a process-lifetime high-water mark (KiB on Linux)
        out["peak_rss_kb"] = int(r1.ru_maxrss)
    return out


def _flight_worker_init(beats: t.Any, interval_s: float) -> None:
    """Pool initializer: start this worker's heartbeat thread.

    ``beats`` is a picklable Manager queue proxy. The daemon thread
    publishes ``{worker, index, phase}`` every ``interval_s`` until the
    process exits or the queue dies; a dead queue ends the thread
    quietly (the parent has moved on).
    """
    import threading

    _HB_STATE["queue"] = beats
    _HB_STATE["worker"] = f"w{os.getpid()}"
    _HB_STATE["index"] = None

    def _loop() -> None:
        while True:
            time.sleep(interval_s)
            q = _HB_STATE["queue"]
            if q is None:  # pragma: no cover - shutdown race
                return
            try:
                q.put_nowait(
                    {
                        "worker": _HB_STATE["worker"],
                        "index": _HB_STATE["index"],
                        "phase": "beat",
                    }
                )
            except Exception:  # pragma: no cover - parent gone
                return

    threading.Thread(target=_loop, daemon=True).start()


def _beat(phase: str, index: int | None) -> None:
    q = _HB_STATE.get("queue")
    if q is None:
        return
    try:
        q.put_nowait(
            {"worker": _HB_STATE.get("worker"), "index": index, "phase": phase}
        )
    except Exception:  # pragma: no cover - parent gone
        pass


def _flight_worker_run(
    fn: t.Callable[[T], R], item: T, index: int
) -> tuple[int, str, t.Any, dict[str, t.Any]]:
    """Run one item in a worker, measured, exceptions captured.

    Returns ``(index, "ok", result, measure)`` or ``(index, "err",
    (exc_type_name, message), measure)`` — catching the exception
    in-worker keeps one bad item from poisoning the whole pool; only a
    hard process death (SIGKILL, OOM) breaks it.
    """
    worker = _HB_STATE.get("worker") or f"w{os.getpid()}"
    _HB_STATE["worker"] = worker
    _HB_STATE["index"] = index
    _beat("start", index)
    t0, r0 = time.perf_counter(), _rusage()
    try:
        result = fn(item)
    except BaseException as exc:
        measure = _measure_since(t0, r0, worker)
        _HB_STATE["index"] = None
        _beat("done", index)
        return (index, "err", (type(exc).__name__, str(exc)), measure)
    measure = _measure_since(t0, r0, worker)
    _HB_STATE["index"] = None
    _beat("done", index)
    return (index, "ok", result, measure)


class SweepExecutor:
    """Maps a function over items, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker processes. ``jobs <= 1`` runs serially in-process (no
        pool, no pickling) — the default, and what tests compare
        parallel runs against.
    cache:
        Optional :class:`ResultCache`. Only items given a key are
        cached; see :meth:`map`.
    obs:
        Optional :class:`repro.obs.Telemetry` bundle. Each
        :meth:`map` call is recorded as a ``sweep.map`` span and the
        registry accumulates ``sweep.items`` / ``sweep.executed`` /
        ``sweep.cache_hits`` counters, so sweeps aggregate per-run
        accounting deterministically across worker processes (the
        counters are derived from input order, never from scheduling).
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`. When
        attached, ``map`` switches to the instrumented path: per-item
        journal records, worker heartbeats, live progress, and
        crash-resilient per-item scheduling. When ``None`` (default)
        the original fast path runs unchanged.
    retries:
        Extra execution attempts per item after a worker process dies
        mid-item (pool breakage). Only honoured on the instrumented
        path; an attempt is charged only when the item actually began
        running (its worker sent a start beat or its future resolved).
        Items merely queued on a pool that broke are re-dispatched for
        free, so collateral from another item's crash cannot exhaust
        their retry budget (journal ``attempts`` reflects this).

    Examples
    --------
    >>> ex = SweepExecutor(jobs=1)
    >>> ex.map(abs, [-2, 3, -5])
    [2, 3, 5]
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        obs: t.Any = None,
        flight: t.Any = None,
        retries: int = 0,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.obs = obs
        self.flight = flight
        self.retries = max(0, int(retries))
        self.stats = SweepStats()
        #: Accumulated over every :meth:`map` call on this executor —
        #: multi-rung drivers (the explore scheduler) reuse one executor
        #: across rungs and report whole-session totals from here.
        self.lifetime = SweepStats(jobs=self.jobs)

    def map(
        self,
        fn: t.Callable[[T], R],
        items: t.Sequence[T],
        *,
        keys: t.Sequence[str | None] | None = None,
        encode: t.Callable[[R], t.Any] | None = None,
        decode: t.Callable[[T, t.Any], R] | None = None,
        on_result: t.Callable[[T, R], None] | None = None,
        failures: str = "raise",
    ) -> list[R]:
        """``[fn(item) for item in items]``, parallel and cached.

        Parameters
        ----------
        fn:
            The work function. Must be picklable (module-level) when
            ``jobs > 1``.
        items:
            Work items, picklable when ``jobs > 1``.
        keys:
            Optional per-item cache keys (same length as ``items``).
            ``None`` for an item means "never cache this one".
            Requires ``encode`` and ``decode``.
        encode:
            ``result -> JSON payload`` for storing.
        decode:
            ``(item, payload) -> result`` for loading; receives the
            original item so reconstruction can reuse unserializable
            parts of the input (e.g. the spec object itself).
        on_result:
            Optional ``(item, result) -> None`` observer, called once
            per item **in input order** after all results are settled —
            for cache hits and executed items alike, always in the
            parent process. Side effects (e.g. run-registry writes)
            therefore happen identically for serial, parallel, and
            cache-replayed executions. :attr:`stats` is finalized
            *before* the callbacks run, so an observer that raises
            leaves the accounting consistent with the journal; on the
            instrumented path the item is additionally journaled as
            ``failed(stage="callback")`` before the exception
            propagates.
        failures:
            ``"raise"`` (default) propagates the first item failure.
            ``"keep"`` — instrumented path only — records failures in
            the journal, leaves ``None`` at the failed index, skips
            caching and ``on_result`` for those items, and returns the
            survivors.

        Returns
        -------
        Results in input order, regardless of completion order.
        """
        if keys is not None and (encode is None or decode is None):
            raise ValueError("cache keys require encode and decode functions")
        if failures not in ("raise", "keep"):
            raise ValueError(f"failures must be 'raise' or 'keep', got {failures!r}")
        if failures == "keep" and self.flight is None:
            raise ValueError("failures='keep' requires a flight recorder")
        if self.obs is not None:
            with self.obs.span("sweep.map", items=len(items), jobs=self.jobs):
                return self._dispatch(
                    fn, items, keys=keys, encode=encode, decode=decode,
                    on_result=on_result, failures=failures,
                )
        return self._dispatch(
            fn, items, keys=keys, encode=encode, decode=decode,
            on_result=on_result, failures=failures,
        )

    def _dispatch(self, fn, items, *, keys, encode, decode, on_result, failures):
        if self.flight is None:
            return self._map(
                fn, items, keys=keys, encode=encode, decode=decode,
                on_result=on_result,
            )
        return self._map_flight(
            fn, items, keys=keys, encode=encode, decode=decode,
            on_result=on_result, failures=failures,
        )

    def _map(
        self,
        fn: t.Callable[[T], R],
        items: t.Sequence[T],
        *,
        keys: t.Sequence[str | None] | None = None,
        encode: t.Callable[[R], t.Any] | None = None,
        decode: t.Callable[[T, t.Any], R] | None = None,
        on_result: t.Callable[[T, R], None] | None = None,
    ) -> list[R]:
        started = time.perf_counter()
        n = len(items)
        results: list[t.Any] = [None] * n
        pending: list[int] = []

        cache = self.cache
        for i, item in enumerate(items):
            key = keys[i] if keys is not None and cache is not None else None
            if key is not None:
                payload = cache.get(key)
                if payload is not None:
                    results[i] = decode(item, payload)  # type: ignore[misc]
                    continue
            pending.append(i)

        # Cache writes land per item as each result settles — not in a
        # batch after the whole map — so a process killed mid-sweep has
        # already persisted every finished item and a resumed run
        # re-executes at most the in-flight ones.
        def store(i: int) -> None:
            if cache is not None and keys is not None:
                key = keys[i]
                if key is not None:
                    cache.put(key, encode(results[i]))  # type: ignore[misc]

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for i, result in zip(
                        pending, pool.map(fn, [items[i] for i in pending])
                    ):
                        results[i] = result
                        store(i)
            else:
                for i in pending:
                    results[i] = fn(items[i])
                    store(i)

        # Stats settle before observer callbacks so a raising observer
        # cannot leave the accounting stale for work that did happen.
        self.stats = SweepStats(
            total=n,
            executed=len(pending),
            cache_hits=n - len(pending),
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
        )
        self.lifetime.add(self.stats)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("sweep.items").inc(n)
            m.counter("sweep.executed").inc(len(pending))
            m.counter("sweep.cache_hits").inc(n - len(pending))

        if on_result is not None:
            for i, item in enumerate(items):
                on_result(item, results[i])
        return results

    # -- instrumented path ----------------------------------------------
    def _map_flight(
        self,
        fn: t.Callable[[T], R],
        items: t.Sequence[T],
        *,
        keys: t.Sequence[str | None] | None = None,
        encode: t.Callable[[R], t.Any] | None = None,
        decode: t.Callable[[T, t.Any], R] | None = None,
        on_result: t.Callable[[T, R], None] | None = None,
        failures: str = "raise",
    ) -> list[R]:
        flight = self.flight
        started = time.perf_counter()
        n = len(items)
        results: list[t.Any] = [None] * n
        settled: list[bool] = [False] * n  # terminal success (hit or executed)
        ctx = flight.begin_map(fn, n, keys, jobs=self.jobs)

        cache = self.cache
        pending: list[int] = []
        for i, item in enumerate(items):
            flight.item_queued(ctx, i)
            key = keys[i] if keys is not None and cache is not None else None
            if key is not None:
                payload = cache.get(key)
                if payload is not None:
                    results[i] = decode(item, payload)  # type: ignore[misc]
                    settled[i] = True
                    flight.item_cache_hit(ctx, i)
                    continue
            pending.append(i)

        # Incremental per-item cache writes, as on the fast path: a
        # killed sweep keeps everything that settled before the kill.
        def store(i: int) -> None:
            if cache is not None and keys is not None:
                key = keys[i]
                if key is not None and settled[i]:
                    cache.put(key, encode(results[i]))  # type: ignore[misc]

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._flight_parallel(
                    fn, items, pending, ctx, results, settled, failures, store
                )
            else:
                self._flight_serial(
                    fn, items, pending, ctx, results, settled, failures, store
                )

        self.stats = SweepStats(
            total=n,
            executed=len(pending),
            cache_hits=n - len(pending),
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
        )
        self.lifetime.add(self.stats)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("sweep.items").inc(n)
            m.counter("sweep.executed").inc(len(pending))
            m.counter("sweep.cache_hits").inc(n - len(pending))
        flight.end_map(ctx)

        if on_result is not None:
            for i, item in enumerate(items):
                if not settled[i]:
                    continue
                try:
                    on_result(item, results[i])
                except BaseException as exc:
                    flight.item_failed(
                        ctx, i, "callback", f"{type(exc).__name__}: {exc}"
                    )
                    flight.flush()
                    raise
        return results

    def _flight_serial(
        self, fn, items, pending, ctx, results, settled, failures, store
    ) -> None:
        flight = self.flight
        for i in pending:
            flight.item_dispatched(ctx, i, 1)
            flight.item_started(ctx, i, "serial", 1)
            flight.self_beat("serial", i)
            t0, r0 = time.perf_counter(), _rusage()
            try:
                result = fn(items[i])
            except BaseException as exc:
                flight.item_failed(
                    ctx, i, "worker", f"{type(exc).__name__}: {exc}",
                    _measure_since(t0, r0, "serial"),
                )
                if failures == "raise":
                    flight.flush()
                    raise
                continue
            results[i] = result
            settled[i] = True
            store(i)
            flight.item_finished(ctx, i, _measure_since(t0, r0, "serial"))
        flight.self_beat("serial", None)

    def _flight_parallel(
        self, fn, items, pending, ctx, results, settled, failures, store
    ) -> None:
        flight = self.flight
        beats = flight.heartbeat_queue()
        interval = flight.heartbeat_interval_s
        unresolved: set[int] = set(pending)
        attempts: dict[int, int] = {i: 0 for i in pending}
        max_attempts = 1 + self.retries

        while unresolved:
            workers = min(self.jobs, len(unresolved))
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_flight_worker_init,
                initargs=(beats, interval),
            )
            broken = False
            round_started: set[int] = set()
            try:
                futures: dict[t.Any, int] = {}
                for i in sorted(unresolved):
                    attempts[i] += 1
                    flight.item_dispatched(ctx, i, attempts[i])
                    futures[pool.submit(_flight_worker_run, fn, items[i], i)] = i
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(
                        not_done, timeout=interval, return_when=FIRST_COMPLETED
                    )
                    round_started |= flight.drain_heartbeats(ctx, beats)
                    for fut in done:
                        i = futures[fut]
                        exc = fut.exception()
                        if isinstance(exc, BrokenProcessPool):
                            # a worker died; every still-pending
                            # future is poisoned — rebuild and retry
                            broken = True
                            continue
                        round_started.add(i)  # a resolved future ran
                        if exc is not None:
                            err = f"{type(exc).__name__}: {exc}"
                            flight.item_failed(
                                ctx, i, "worker", err, {"worker": "pool"}
                            )
                            unresolved.discard(i)
                            if failures == "raise":
                                flight.flush()
                                raise SweepItemError(i, attempts[i], err)
                            continue
                        index, status, payload, measure = fut.result()
                        unresolved.discard(index)
                        if status == "ok":
                            results[index] = payload
                            settled[index] = True
                            store(index)
                            flight.item_finished(ctx, index, measure)
                        else:
                            err = f"{payload[0]}: {payload[1]}"
                            flight.item_failed(
                                ctx, index, "worker", err, measure
                            )
                            if failures == "raise":
                                flight.flush()
                                raise SweepItemError(
                                    index, attempts[index], err
                                )
                    if broken:
                        break
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if not broken:
                break
            round_started |= flight.drain_heartbeats(ctx, beats)
            # Items that only sat queued on the broken pool never ran:
            # refund their dispatch so collateral from someone else's
            # crash cannot exhaust their retry budget. The crashing
            # item always sent its start beat (the Manager holds it
            # even after the worker dies), so its attempts still rise
            # every round and the loop terminates.
            for i in sorted(unresolved):
                if i not in round_started:
                    attempts[i] -= 1
            retryable: set[int] = set()
            for i in sorted(unresolved):
                if attempts[i] >= max_attempts:
                    err = (
                        "WorkerCrashed: worker process died mid-item "
                        f"(attempt {attempts[i]}/{max_attempts})"
                    )
                    flight.item_failed(
                        ctx, i, "worker", err,
                        {"worker": "pool", "wall_s": 0.0},
                    )
                    if failures == "raise":
                        flight.flush()
                        raise SweepItemError(i, attempts[i], err)
                else:
                    retryable.add(i)
            unresolved = retryable
