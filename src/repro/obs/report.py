"""Self-contained HTML run reports with inline SVG charts.

``repro report -o report.html`` renders a full experiment suite into a
*single file*: no external assets, no JavaScript, no third-party
libraries — just HTML, inline CSS, and hand-rolled SVG. The file can be
archived as a CI artifact, attached to a paper review, or opened years
later with nothing but a browser, which is the point: the reproduction's
evidence should be as durable as the paper's own figures.

Charts map to the paper's visual vocabulary:

- **Discharge curves** — state-of-charge vs time per node, rebuilt from
  ``battery.draw`` telemetry events (the paper's Fig. 9 view).
- **Energy attribution bars** — each node's delivered charge split by
  :class:`~repro.obs.energy.EnergyLedger` bucket (Fig. 7's breakdown,
  but measured from the simulation rather than the static profile).
- **Frame-latency histogram** — the ``frame.latency_s`` metrics
  histogram, bucket by bucket.
- **Normalized-lifetime ordering** — Tnorm per experiment, the Fig. 10
  headline (rotation > recovery > DVS-I/O > plain partitioning).

Everything is derived from simulated-time telemetry and rendered with
deterministic float formatting, so two runs of the same suite produce
byte-identical reports — the same property the rest of the
observability stack guarantees.
"""

from __future__ import annotations

import html
import pathlib
import typing as t

from repro.obs.energy import verify_conservation

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.experiments import ExperimentRun
    from repro.obs.metrics import Histogram

__all__ = ["build_html_report", "write_html_report"]

#: Fixed categorical palette (Tableau 10) — assigned by sorted key, so
#: bucket colors are stable across runs and reports.
_PALETTE = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc949", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)

_CSS = """
body { font-family: Georgia, 'Times New Roman', serif; margin: 2em auto;
       max-width: 62em; color: #1a1a1a; line-height: 1.45; }
h1 { border-bottom: 2px solid #333; padding-bottom: 0.2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #bbb; padding-bottom: 0.15em; }
h3 { margin-top: 1.4em; color: #444; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.92em; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: right; }
th { background: #f0f0ec; }
td.l, th.l { text-align: left; }
td.ok { color: #2a7a2a; font-weight: bold; }
td.fail { color: #b02020; font-weight: bold; }
.legend { font-size: 0.85em; margin: 0.3em 0 1em 0; }
.legend span { display: inline-block; margin-right: 1.2em; }
.swatch { display: inline-block; width: 0.9em; height: 0.9em;
          margin-right: 0.3em; vertical-align: -0.1em; }
svg { background: #fcfcfa; border: 1px solid #ddd; margin: 0.5em 0; }
.note { color: #666; font-size: 0.9em; }
"""


def _fmt(value: float | None, nd: int = 3) -> str:
    """Deterministic fixed-point rendering ("-" for missing)."""
    if value is None:
        return "-"
    return f"{value:.{nd}f}"


def _color_map(keys: t.Iterable[str]) -> dict[str, str]:
    """Stable key -> color assignment (sorted order)."""
    return {key: _PALETTE[i % len(_PALETTE)] for i, key in enumerate(sorted(set(keys)))}


def _legend(colors: t.Mapping[str, str]) -> str:
    parts = [
        f'<span><span class="swatch" style="background:{colors[key]}"></span>'
        f"{html.escape(key)}</span>"
        for key in sorted(colors)
    ]
    return f'<div class="legend">{"".join(parts)}</div>'


# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------

_W, _H = 640, 260
_ML, _MR, _MT, _MB = 58, 16, 14, 34  # margins: left/right/top/bottom


def _axes(x_label: str, y_label: str, x_ticks: list[tuple[float, str]],
          y_ticks: list[tuple[float, str]]) -> list[str]:
    """Axis lines, tick labels, and axis titles in plot coordinates."""
    out = [
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" '
        'stroke="#333" stroke-width="1"/>',
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_H - _MB}" '
        'stroke="#333" stroke-width="1"/>',
        f'<text x="{(_ML + _W - _MR) / 2:.1f}" y="{_H - 6}" text-anchor="middle" '
        f'font-size="11">{html.escape(x_label)}</text>',
        f'<text x="12" y="{(_MT + _H - _MB) / 2:.1f}" text-anchor="middle" '
        f'font-size="11" transform="rotate(-90 12 {(_MT + _H - _MB) / 2:.1f})">'
        f"{html.escape(y_label)}</text>",
    ]
    for px, label in x_ticks:
        out.append(
            f'<text x="{px:.1f}" y="{_H - _MB + 14}" text-anchor="middle" '
            f'font-size="10">{html.escape(label)}</text>'
        )
    for py, label in y_ticks:
        out.append(
            f'<text x="{_ML - 5}" y="{py + 3.5:.1f}" text-anchor="end" '
            f'font-size="10">{html.escape(label)}</text>'
        )
    return out


def _svg(parts: list[str]) -> str:
    body = "\n".join(parts)
    return (
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">\n{body}\n</svg>'
    )


def _line_chart(
    series: t.Mapping[str, list[tuple[float, float]]],
    x_label: str,
    y_label: str,
    y_max: float | None = None,
) -> str:
    """Multi-series polyline chart (series name -> [(x, y), ...])."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        return '<p class="note">no samples recorded</p>'
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(p[1] for p in points)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def px(x: float) -> float:
        return _ML + (x - x_lo) / x_span * (_W - _ML - _MR)

    def py(y: float) -> float:
        return _H - _MB - (y - y_lo) / y_span * (_H - _MT - _MB)

    colors = _color_map(series)
    parts = _axes(
        x_label, y_label,
        [(px(x_lo), _fmt(x_lo, 1)), (px(x_hi), _fmt(x_hi, 1))],
        [(py(y_lo), _fmt(y_lo, 1)), (py(y_hi), _fmt(y_hi, 1))],
    )
    for name in sorted(series):
        pts = series[name]
        if not pts:
            continue
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{colors[name]}" stroke-width="1.6"/>'
        )
    return _svg(parts) + _legend(colors)


def _stacked_bars(
    rows: t.Mapping[str, t.Mapping[str, float]],
    x_label: str,
) -> str:
    """Horizontal stacked bars (row name -> {segment name -> value})."""
    if not rows or all(not segs for segs in rows.values()):
        return '<p class="note">no attribution recorded</p>'
    total_max = max(sum(segs.values()) for segs in rows.values()) or 1.0
    colors = _color_map(key for segs in rows.values() for key in segs)
    n = len(rows)
    band = (_H - _MT - _MB) / n
    bar_h = min(26.0, band * 0.6)
    parts = _axes(
        x_label, "",
        [(_ML, "0"), (_W - _MR, _fmt(total_max, 2))],
        [],
    )
    for i, name in enumerate(sorted(rows)):
        y = _MT + i * band + (band - bar_h) / 2
        x = float(_ML)
        for key in sorted(rows[name]):
            value = rows[name][key]
            w = value / total_max * (_W - _ML - _MR)
            if w <= 0:
                continue
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{bar_h:.1f}" fill="{colors[key]}">'
                f"<title>{html.escape(f'{name} {key}: {value:.4f}')}</title></rect>"
            )
            x += w
        parts.append(
            f'<text x="{_ML - 5}" y="{y + bar_h / 2 + 3.5:.1f}" text-anchor="end" '
            f'font-size="10">{html.escape(name)}</text>'
        )
    return _svg(parts) + _legend(colors)


def _histogram_chart(hist: "Histogram", x_label: str) -> str:
    """Vertical bars over a metrics histogram's power-of-two buckets."""
    if not hist.count:
        return '<p class="note">no samples recorded</p>'
    indexes = sorted(hist.buckets)
    peak = max(hist.buckets.values())
    n = len(indexes)
    band = (_W - _ML - _MR) / n
    bar_w = band * 0.8
    parts = _axes(
        x_label, "frames",
        [], [(float(_H - _MB), "0"), (float(_MT), str(peak))],
    )
    for i, index in enumerate(indexes):
        count = hist.buckets[index]
        h = count / peak * (_H - _MT - _MB)
        x = _ML + i * band + (band - bar_w) / 2
        upper = hist.bucket_upper_bound(index)
        label = "<=0" if index < 0 else f"{upper:.3g}"
        parts.append(
            f'<rect x="{x:.1f}" y="{_H - _MB - h:.1f}" width="{bar_w:.1f}" '
            f'height="{h:.1f}" fill="{_PALETTE[0]}">'
            f"<title>{html.escape(f'<= {label}: {count}')}</title></rect>"
        )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{_H - _MB + 14}" '
            f'text-anchor="middle" font-size="9">{html.escape(label)}</text>'
        )
    return _svg(parts)


def _ordering_chart(tnorms: t.Mapping[str, float]) -> str:
    """Horizontal Tnorm bars in descending order (the Fig. 10 view)."""
    if not tnorms:
        return '<p class="note">no runs</p>'
    peak = max(tnorms.values()) or 1.0
    ordered = sorted(tnorms.items(), key=lambda kv: (-kv[1], kv[0]))
    n = len(ordered)
    band = (_H - _MT - _MB) / n
    bar_h = min(24.0, band * 0.65)
    parts = _axes("normalized lifetime Tnorm (hours)", "",
                  [(_ML, "0"), (_W - _MR, _fmt(peak, 2))], [])
    for i, (label, tnorm) in enumerate(ordered):
        y = _MT + i * band + (band - bar_h) / 2
        w = tnorm / peak * (_W - _ML - _MR)
        parts.append(
            f'<rect x="{_ML}" y="{y:.1f}" width="{w:.1f}" height="{bar_h:.1f}" '
            f'fill="{_PALETTE[i % len(_PALETTE)]}"/>'
        )
        parts.append(
            f'<text x="{_ML - 5}" y="{y + bar_h / 2 + 3.5:.1f}" text-anchor="end" '
            f'font-size="11">{html.escape(label)}</text>'
        )
        parts.append(
            f'<text x="{_ML + w + 4:.1f}" y="{y + bar_h / 2 + 3.5:.1f}" '
            f'font-size="10">{_fmt(tnorm, 2)}h</text>'
        )
    return _svg(parts)


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------

def _discharge_series(run: "ExperimentRun") -> dict[str, list[tuple[float, float]]]:
    """node -> [(hours, charge fraction)] from battery.draw events."""
    series: dict[str, list[tuple[float, float]]] = {}
    if run.obs is None or not run.obs.events:
        return series
    for event in run.obs.events.records:
        if event.kind != "battery.draw":
            continue
        fraction = event.data.get("charge_fraction")
        if fraction is None:
            continue
        series.setdefault(event.actor, []).append((event.ts / 3600.0, fraction))
    return series


def _latency_histogram(run: "ExperimentRun") -> "Histogram | None":
    if run.obs is None:
        return None
    for hist in run.obs.metrics.histograms:
        if hist.name == "frame.latency_s" and hist.count:
            return hist
    return None


def _summary_table(runs: t.Sequence["ExperimentRun"]) -> str:
    head = (
        "<tr><th class='l'>label</th><th class='l'>description</th>"
        "<th>frames</th><th>T (h)</th><th>Tnorm (h)</th><th>nodes</th>"
        "<th>events truncated</th></tr>"
    )
    body = []
    for run in runs:
        truncated = 0
        if run.obs is not None and run.obs.events:
            truncated = run.obs.events.dropped
        body.append(
            f"<tr><td class='l'>{html.escape(run.spec.label)}</td>"
            f"<td class='l'>{html.escape(run.spec.description)}</td>"
            f"<td>{run.frames}</td><td>{_fmt(run.t_hours, 2)}</td>"
            f"<td>{_fmt(run.t_hours / run.spec.n_nodes, 2)}</td>"
            f"<td>{run.spec.n_nodes}</td>"
            f"<td>{truncated if truncated else '-'}</td></tr>"
        )
    return f"<table>{head}{''.join(body)}</table>"


def _conservation_table(runs: t.Sequence["ExperimentRun"]) -> str:
    rows = []
    for run in runs:
        if run.obs is None or not len(run.obs.energy):
            continue
        delivered = (
            run.pipeline.delivered_mah if run.pipeline is not None else None
        )
        if not delivered:
            continue
        for check in verify_conservation(run.obs.energy, delivered):
            cls = "ok" if check.ok else "fail"
            verdict = "ok" if check.ok else "FAIL"
            rows.append(
                f"<tr><td class='l'>{html.escape(run.spec.label)}</td>"
                f"<td class='l'>{html.escape(check.node)}</td>"
                f"<td>{_fmt(check.ledger_mah, 6)}</td>"
                f"<td>{_fmt(check.delivered_mah, 6)}</td>"
                f"<td>{check.rel_error:.2e}</td>"
                f"<td class='{cls}'>{verdict}</td></tr>"
            )
    if not rows:
        return '<p class="note">no energy ledgers recorded (telemetry off?)</p>'
    head = (
        "<tr><th class='l'>run</th><th class='l'>node</th><th>ledger (mAh)</th>"
        "<th>delivered (mAh)</th><th>rel error</th><th>conserved</th></tr>"
    )
    return f"<table>{head}{''.join(rows)}</table>"


def _run_section(run: "ExperimentRun") -> str:
    parts = [
        f'<h2 id="run-{html.escape(run.spec.label, quote=True)}">'
        f"Experiment {html.escape(run.spec.label)}</h2>",
        f"<p>{html.escape(run.spec.description)} &mdash; "
        f"{run.frames} frames, lifetime {_fmt(run.t_hours, 2)}h.</p>",
    ]
    discharge = _discharge_series(run)
    if discharge:
        parts.append("<h3>Battery discharge</h3>")
        parts.append(
            _line_chart(discharge, "time (hours)", "charge fraction", y_max=1.0)
        )
    if run.obs is not None and len(run.obs.energy):
        rows = {
            node: {
                f"{row.mode}/{row.bucket}": row.charge_mah
                for row in run.obs.energy.rows()
                if row.node == node
            }
            for node in run.obs.energy.node_totals_mah()
        }
        parts.append("<h3>Energy attribution</h3>")
        parts.append(_stacked_bars(rows, "attributed charge (mAh)"))
    hist = _latency_histogram(run)
    if hist is not None:
        parts.append("<h3>Frame latency</h3>")
        parts.append(_histogram_chart(hist, "end-to-end latency bucket (s)"))
    if run.obs is not None and run.obs.events and run.obs.events.dropped:
        parts.append(
            f'<p class="note">event log truncated: '
            f"{run.obs.events.dropped} events dropped past the storage cap "
            "&mdash; streams below the cap are complete, verdicts over this "
            "log are inconclusive.</p>"
        )
    return "\n".join(parts)


def build_html_report(
    runs: t.Mapping[str, "ExperimentRun"] | t.Sequence["ExperimentRun"],
    *,
    title: str = "Low-power distributed ATR — reproduction report",
    journal: t.Sequence[t.Mapping[str, t.Any]] | None = None,
) -> str:
    """Render an experiment suite as one self-contained HTML document.

    ``runs`` is the :func:`~repro.core.experiments.run_paper_suite`
    mapping (or any sequence of runs). The output embeds every chart as
    inline SVG and references no external resources.

    ``journal`` optionally adds a fleet timeline track from flight-
    recorder journal rows (full/telemetry form). It is opt-in because
    the timeline draws wall-clock measurement, while the default report
    is pure content and byte-identical across execution modes (CI
    compares replayed reports with ``cmp``).
    """
    ordered = list(runs.values()) if isinstance(runs, t.Mapping) else list(runs)
    tnorms = {
        run.spec.label: run.t_hours / run.spec.n_nodes
        for run in ordered
        if run.spec.io_enabled
    }
    sections = [
        f"<h1>{html.escape(title)}</h1>",
        "<h2>Suite summary</h2>",
        _summary_table(ordered),
        "<h2>Normalized lifetime ordering (Fig. 10)</h2>",
        _ordering_chart(tnorms),
        "<h2>Energy conservation</h2>",
        "<p>Every node's attributed charge (energy ledger) against its "
        "battery's delivered total; the invariant requires agreement "
        "within 1e-6 relative tolerance.</p>",
        _conservation_table(ordered),
    ]
    sections.extend(_run_section(run) for run in ordered)
    if journal is not None:
        from repro.obs.progress import fleet_timeline_svg

        executed = [r for r in journal if r.get("status") == "executed"]
        hits = [r for r in journal if r.get("status") == "cache_hit"]
        failed = [r for r in journal if r.get("outcome") == "failed"]
        sections.append("<h2>Fleet timeline</h2>")
        sections.append(
            f"<p>{len(journal)} journaled item(s): {len(executed)} executed, "
            f"{len(hits)} cache hit(s), {len(failed)} failed. Spans are "
            "wall-clock offsets from the sweep start, one lane per "
            "worker; hover an item for wall/CPU/RSS detail.</p>"
        )
        sections.append(fleet_timeline_svg(list(journal)))
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        f"</head>\n<body>\n{body}\n</body></html>\n"
    )


def write_html_report(
    path: str | pathlib.Path,
    runs: t.Mapping[str, "ExperimentRun"] | t.Sequence["ExperimentRun"],
    *,
    title: str = "Low-power distributed ATR — reproduction report",
    journal: t.Sequence[t.Mapping[str, t.Any]] | None = None,
) -> pathlib.Path:
    """Write :func:`build_html_report` output to ``path``."""
    path = pathlib.Path(path)
    path.write_text(
        build_html_report(runs, title=title, journal=journal), encoding="utf-8"
    )
    return path
