"""Streaming invariant monitors over the telemetry event bus.

The paper's claims are *behavioural*: frames land within the delay
constraint D (§3), batteries only discharge, serial links are never
saturated past what the 115.2 kbps budget allows (§4.5), rotation
equalizes discharge across nodes (§5.5), and the recovery protocol
detects a dead node within its ack timeout (§5.4). Each claim here
becomes an :class:`InvariantMonitor` — a small state machine that
subscribes to the :class:`~repro.obs.events.EventLog` (via
``log.attach(monitor)``) and evaluates its check *online*, event by
event, keeping the first violating event as evidence.

Monitors are deliberately dual-use:

- **streaming** — attach to a live log before a run and every emitted
  event flows through :meth:`~InvariantMonitor.observe`, including
  events the storage cap drops;
- **offline** — :func:`replay` feeds an already-recorded log through a
  fresh monitor set, so cached/registered runs can be re-checked
  without re-simulating.

:func:`paper_monitors` builds the applicable set for one experiment
spec, and :func:`check_paper_ordering` asserts the Fig. 10 headline —
normalized lifetime ordered rotation > recovery > DVS-I/O >
plain partitioning (2C > 2B > 2A > 2) — over registry summaries.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.obs.events import EventLog, TelemetryEvent

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.experiments import ExperimentSpec
    from repro.obs.store import RunRecord

__all__ = [
    "Verdict",
    "InvariantMonitor",
    "FrameDeadlineMonitor",
    "ChargeMonotonicMonitor",
    "LinkBusyFractionMonitor",
    "RotationBalanceMonitor",
    "RecoveryLatencyMonitor",
    "replay",
    "static_verdict",
    "static_link_budget_verdict",
    "paper_monitors",
    "PAPER_ORDERING",
    "check_paper_ordering",
    "tnorms_from_records",
]

#: Fig. 10 normalized-lifetime ordering, best first: rotation (2C)
#: beats recovery (2B) beats DVS over I/O (2A) beats plain
#: partitioning (2).
PAPER_ORDERING = ("2C", "2B", "2A", "2")


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Outcome of one invariant check.

    Attributes
    ----------
    monitor:
        The monitor's name (e.g. ``"frame-deadline"``).
    ok:
        True when the invariant held over every observed event.
    detail:
        Human-readable explanation (what held, or how it broke).
    violating_event:
        The *first* event that broke the invariant, or None.
    events_seen:
        How many relevant events the monitor inspected — a passing
        verdict over zero events means "vacuously true", and callers
        may want to distinguish that.
    violations:
        Total violation count (the verdict keeps only the first event,
        but counts all of them).
    inconclusive:
        True when the monitor saw a ``log.truncated`` terminal record
        and found no violation: the stored stream is incomplete, so
        "no violation observed" cannot be promoted to "invariant held".
        An inconclusive verdict is never ``ok``.
    """

    monitor: str
    ok: bool
    detail: str
    violating_event: TelemetryEvent | None = None
    events_seen: int = 0
    violations: int = 0
    inconclusive: bool = False

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable form for CLI output and tests."""
        return {
            "monitor": self.monitor,
            "ok": self.ok,
            "detail": self.detail,
            "violating_event": (
                self.violating_event.as_dict() if self.violating_event else None
            ),
            "events_seen": self.events_seen,
            "violations": self.violations,
            "inconclusive": self.inconclusive,
        }


class InvariantMonitor:
    """Base class: an online check over a stream of telemetry events.

    Subclasses set :attr:`name`, declare the event kinds they care
    about in :attr:`kinds` (empty = all), implement :meth:`_observe`,
    and optionally :meth:`_final_detail` for the passing-verdict text.
    The base class handles kind filtering, counting, and first-violation
    bookkeeping: a subclass reports a violation by calling
    :meth:`_violate`.

    Instances satisfy the :class:`~repro.obs.events.EventLog` tap
    protocol (``observe(event)``), so ``log.attach(monitor)`` streams
    every emitted event through the check as the simulation runs.
    """

    name = "invariant"
    #: Event kinds this monitor inspects; empty tuple = every kind.
    kinds: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.events_seen = 0
        self.violations = 0
        self.first_violation: TelemetryEvent | None = None
        self._first_detail: str | None = None
        #: Events dropped by the log's storage cap, from the terminal
        #: ``log.truncated`` record (see :meth:`EventLog.seal`).
        self.truncated_dropped = 0

    # -- streaming interface --------------------------------------------
    def observe(self, event: TelemetryEvent) -> None:
        """Inspect one event (the EventLog tap entry point)."""
        if event.kind == "log.truncated":
            # The stream is incomplete past the storage cap — every
            # monitor notes this regardless of its kinds filter, since
            # *its* events may be among the dropped ones.
            self.truncated_dropped = int(event.data.get("dropped", 0))
            return
        if self.kinds and event.kind not in self.kinds:
            return
        self.events_seen += 1
        self._observe(event)

    def _observe(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def _violate(self, event: TelemetryEvent, detail: str) -> None:
        """Record one violation (first one becomes the evidence)."""
        self.violations += 1
        if self.first_violation is None:
            self.first_violation = event
            self._first_detail = detail

    # -- verdict ---------------------------------------------------------
    def _final_detail(self) -> str:
        """Explanation for a *passing* verdict."""
        return f"held over {self.events_seen} events"

    def _finalize(self) -> None:
        """Hook for end-of-stream checks (e.g. aggregate bounds)."""

    def verdict(self) -> Verdict:
        """Evaluate the invariant over everything observed so far.

        A monitor that observed a ``log.truncated`` record without
        finding a violation returns an *inconclusive* (not-ok) verdict:
        absence of evidence over a truncated stream proves nothing. A
        found violation stays conclusive — it happened in the events
        that *were* kept.
        """
        self._finalize()
        violated = self.violations > 0
        inconclusive = self.truncated_dropped > 0 and not violated
        if violated:
            detail = self._first_detail or "violated"
            if self.violations > 1:
                detail += f" (+{self.violations - 1} more)"
        elif inconclusive:
            detail = (
                f"inconclusive: event log truncated "
                f"({self.truncated_dropped} events dropped); "
                f"over the kept events: {self._final_detail()}"
            )
        else:
            detail = self._final_detail()
        return Verdict(
            monitor=self.name,
            ok=not violated and not inconclusive,
            detail=detail,
            violating_event=self.first_violation,
            events_seen=self.events_seen,
            violations=self.violations,
            inconclusive=inconclusive,
        )


class FrameDeadlineMonitor(InvariantMonitor):
    """Every frame's end-to-end latency respects the §3 contract.

    A frame traversing an N-stage pipeline with frame delay D must
    finish within N * D of its emission (the engine reports
    ``latency_s`` against emission); ``tolerance_s`` mirrors the
    engine's lateness tolerance for boundary frames. ``grace_s``
    widens the bound for configurations whose protocol legitimately
    delays frames — with §5.4 recovery enabled, a frame in flight when
    a node dies waits out the detection timeout before the survivor
    migrates, so the worst-case contract extends by that timeout.
    """

    name = "frame-deadline"
    kinds = ("frame.result", "ff.epoch", "batch.epoch")

    def __init__(
        self,
        deadline_s: float,
        n_stages: int = 1,
        tolerance_s: float = 0.05,
        grace_s: float = 0.0,
    ):
        super().__init__()
        self.bound_s = n_stages * deadline_s + grace_s + tolerance_s
        self.frames = 0

    def _observe(self, event: TelemetryEvent) -> None:
        if event.kind in ("ff.epoch", "batch.epoch"):
            # Fast-forwarded frames are analytic copies of a steady-state
            # period whose frames were simulated exactly — and already
            # individually checked here as frame.result events — so the
            # epoch only contributes to the coverage count. Batched
            # cohort epochs coalesce whole duty cycles the same way.
            self.frames += int(event.data.get("frames", 0))
            return
        self.frames += 1
        latency = event.data.get("latency_s")
        if latency is not None and latency > self.bound_s:
            self._violate(
                event,
                f"frame {event.data.get('frame')} latency "
                f"{latency:.3f}s > bound {self.bound_s:.3f}s",
            )

    def _final_detail(self) -> str:
        return f"{self.frames} frames within {self.bound_s:.3f}s"


class ChargeMonotonicMonitor(InvariantMonitor):
    """Battery state-of-charge never increases (no charger on board).

    Tracks ``battery.draw`` samples per node; any uptick beyond
    ``tolerance`` (float-noise allowance) is a violation — a charge
    increase would mean the battery model leaked energy back.
    """

    name = "charge-monotonic"
    kinds = ("battery.draw",)

    def __init__(self, tolerance: float = 1e-9):
        super().__init__()
        self.tolerance = tolerance
        self._last: dict[str, float] = {}

    def _observe(self, event: TelemetryEvent) -> None:
        fraction = event.data.get("charge_fraction")
        if fraction is None:
            return
        prev = self._last.get(event.actor)
        if prev is not None and fraction > prev + self.tolerance:
            self._violate(
                event,
                f"{event.actor} charge rose {prev:.6f} -> {fraction:.6f}",
            )
        self._last[event.actor] = fraction

    def _final_detail(self) -> str:
        return (
            f"charge non-increasing across {len(self._last)} nodes, "
            f"{self.events_seen} samples"
        )


class LinkBusyFractionMonitor(InvariantMonitor):
    """Serial-link utilisation stays inside its physical budget.

    Accumulates ``link.xfer`` durations per sender and checks the busy
    fraction (transfer seconds per elapsed second) against
    ``max_fraction``. A fraction above 1.0 would mean overlapping
    transactions on a half-duplex serial port — a scheduler bug — and
    the paper's §4.5 budget keeps the intended fraction well below
    saturation. Checked at stream end over the full span (a warmup
    window avoids meaningless fractions over the first transfer).

    Fast-forwarded runs report skipped transfers as coalesced
    ``ff.epoch`` records whose ``link_busy_s`` is keyed by the same
    sender names ``link.xfer`` uses, so both sources accumulate into
    one per-sender total and the busy fraction stays well-defined.
    Batched cohort runs emit the same shape as ``batch.epoch``
    (analytic sweeps involve no link at all, so their ``link_busy_s``
    is empty and only the coverage span widens).
    """

    name = "link-busy-fraction"
    kinds = ("link.xfer", "ff.epoch", "batch.epoch")

    def __init__(self, max_fraction: float = 0.98, warmup_s: float = 10.0):
        super().__init__()
        self.max_fraction = max_fraction
        self.warmup_s = warmup_s
        self._busy_s: dict[str, float] = {}
        self._first_ts: float | None = None
        self._last_ts = 0.0
        self._last_event: dict[str, TelemetryEvent] = {}

    def _observe(self, event: TelemetryEvent) -> None:
        if event.kind in ("ff.epoch", "batch.epoch"):
            for actor, busy in event.data.get("link_busy_s", {}).items():
                self._busy_s[actor] = self._busy_s.get(actor, 0.0) + busy
                self._last_event[actor] = event
            if self._first_ts is None:
                self._first_ts = event.data.get("t0", event.ts)
            self._last_ts = max(self._last_ts, event.ts)
            return
        duration = event.data.get("duration_s", 0.0)
        self._busy_s[event.actor] = self._busy_s.get(event.actor, 0.0) + duration
        self._last_event[event.actor] = event
        if self._first_ts is None:
            self._first_ts = event.ts - duration
        self._last_ts = max(self._last_ts, event.ts)

    def busy_fractions(self) -> dict[str, float]:
        """Per-sender busy fraction over the observed span."""
        if self._first_ts is None:
            return {}
        span = self._last_ts - self._first_ts
        if span <= 0:
            return {}
        return {actor: busy / span for actor, busy in self._busy_s.items()}

    def _finalize(self) -> None:
        if self.violations:
            return
        span = (self._last_ts - self._first_ts) if self._first_ts is not None else 0.0
        if span < self.warmup_s:
            return
        for actor, fraction in sorted(self.busy_fractions().items()):
            if fraction > self.max_fraction:
                self._violate(
                    self._last_event[actor],
                    f"{actor} busy fraction {fraction:.3f} > "
                    f"{self.max_fraction:.3f}",
                )

    def _final_detail(self) -> str:
        fractions = self.busy_fractions()
        if not fractions:
            return "no link traffic"
        peak = max(fractions.values())
        return (
            f"{self.events_seen} transfers, peak busy fraction "
            f"{peak:.3f} <= {self.max_fraction:.3f}"
        )


class RotationBalanceMonitor(InvariantMonitor):
    """Rotation equalizes discharge across the pipeline (§5.5).

    The whole point of node rotation is that no node burns its battery
    on the expensive stage while others idle. Tracks each node's
    state-of-charge from ``battery.draw`` samples; once every node has
    reported, the spread between the fullest and emptiest cell must
    stay within ``tolerance`` (a charge fraction). The check is
    evaluated per sample, so the verdict pins the moment balance was
    first lost.
    """

    name = "rotation-balance"
    kinds = ("battery.draw",)

    def __init__(self, tolerance: float = 0.12, n_nodes: int | None = None):
        super().__init__()
        self.tolerance = tolerance
        self.n_nodes = n_nodes
        self._charge: dict[str, float] = {}

    def _observe(self, event: TelemetryEvent) -> None:
        fraction = event.data.get("charge_fraction")
        if fraction is None:
            return
        self._charge[event.actor] = fraction
        expected = self.n_nodes if self.n_nodes is not None else 2
        if len(self._charge) < max(expected, 2):
            return
        spread = max(self._charge.values()) - min(self._charge.values())
        if spread > self.tolerance:
            self._violate(
                event,
                f"discharge spread {spread:.4f} > {self.tolerance:.4f} "
                f"at t={event.ts:.0f}s",
            )

    def _final_detail(self) -> str:
        if len(self._charge) < 2:
            return "fewer than two nodes reported"
        spread = max(self._charge.values()) - min(self._charge.values())
        return f"discharge spread {spread:.4f} <= {self.tolerance:.4f}"


class RecoveryLatencyMonitor(InvariantMonitor):
    """Dead nodes are detected within the §5.4 ack timeout.

    The recovery protocol detects a partner's death by missed acks:
    the survivor migrates after at most ``detect_timeout_s`` (the
    paper's 3-deadline bound, 6.9 s) plus up to one in-flight frame.
    Pairs each ``recovery.migrate`` with the most recent
    ``battery.dead`` and checks the gap.
    """

    name = "recovery-latency"
    kinds = ("battery.dead", "recovery.migrate")

    def __init__(self, detect_timeout_s: float, slack_s: float = 2.3):
        super().__init__()
        self.bound_s = detect_timeout_s + slack_s
        self._last_death_ts: float | None = None
        self.migrations = 0

    def _observe(self, event: TelemetryEvent) -> None:
        if event.kind == "battery.dead":
            self._last_death_ts = event.ts
            return
        self.migrations += 1
        if self._last_death_ts is None:
            self._violate(event, "migration with no preceding node death")
            return
        gap = event.ts - self._last_death_ts
        if gap > self.bound_s:
            self._violate(
                event,
                f"detection latency {gap:.3f}s > bound {self.bound_s:.3f}s",
            )

    def _final_detail(self) -> str:
        if not self.migrations:
            return "no migrations observed"
        return f"{self.migrations} migrations detected within {self.bound_s:.3f}s"


# ---------------------------------------------------------------------------
# driving monitors
# ---------------------------------------------------------------------------

def replay(
    log: EventLog | t.Iterable[TelemetryEvent],
    monitors: t.Sequence[InvariantMonitor],
) -> list[Verdict]:
    """Feed a recorded event stream through monitors; return verdicts.

    Offline counterpart of ``log.attach(monitor)``: identical monitor
    code paths, so a cached run re-checked later yields the same
    verdicts a live tap would have produced.
    """
    records = log.records if isinstance(log, EventLog) else log
    for event in records:
        for monitor in monitors:
            monitor.observe(event)
    return [monitor.verdict() for monitor in monitors]


def static_verdict(monitor: str, ok: bool, detail: str) -> Verdict:
    """A verdict decided analytically, without an event stream.

    The explore scheduler's cheap rungs (analytic prescreen, cohort
    pass) have no telemetry events to replay, but their constraint
    outcomes should speak the same :class:`Verdict` language the
    streaming monitors do — one vocabulary for "why was this config
    disqualified" across the whole fidelity ladder.
    """
    return Verdict(monitor=monitor, ok=ok, detail=detail)


def static_link_budget_verdict(
    busy_s: float, deadline_s: float, max_fraction: float = 0.98
) -> Verdict:
    """Closed-form counterpart of :class:`LinkBusyFractionMonitor`.

    In steady state each stage repeats its transfers once per frame
    period, so the worst per-sender busy fraction is just (transfer
    seconds per frame) / deadline. Uses the streaming monitor's name
    and default bound, so a config the prescreen disqualifies here is
    the same config the full simulation's monitor would have flagged.
    """
    fraction = busy_s / deadline_s if deadline_s > 0 else float("inf")
    ok = fraction <= max_fraction
    detail = (
        f"static busy fraction {fraction:.3f} "
        + ("<=" if ok else ">")
        + f" {max_fraction:.3f}"
    )
    return Verdict(monitor="link-busy-fraction", ok=ok, detail=detail)


def paper_monitors(spec: "ExperimentSpec") -> list[InvariantMonitor]:
    """The invariant set applicable to one experiment configuration.

    Every pipeline run gets the deadline, charge-monotonicity, and
    link-budget checks; rotation configurations add discharge balance,
    recovery configurations add detection latency.
    """
    monitors: list[InvariantMonitor] = [
        ChargeMonotonicMonitor(),
    ]
    if spec.io_enabled:
        grace_s = (
            spec.recovery_detect_timeout_s + spec.deadline_s
            if spec.recovery
            else 0.0
        )
        monitors.append(
            FrameDeadlineMonitor(
                spec.deadline_s, n_stages=spec.n_nodes, grace_s=grace_s
            )
        )
        monitors.append(LinkBusyFractionMonitor())
    if spec.rotation_period is not None:
        monitors.append(RotationBalanceMonitor(n_nodes=spec.n_nodes))
    if spec.recovery:
        monitors.append(
            RecoveryLatencyMonitor(
                spec.recovery_detect_timeout_s, slack_s=spec.deadline_s
            )
        )
    return monitors


def check_paper_ordering(
    tnorms: t.Mapping[str, float],
    ordering: t.Sequence[str] = PAPER_ORDERING,
) -> list[Verdict]:
    """Assert the Fig. 10 normalized-lifetime ordering.

    ``tnorms`` maps experiment label -> normalized lifetime in hours
    (typically from registry summaries). Produces one verdict per
    adjacent pair in ``ordering`` (2C > 2B, 2B > 2A, 2A > 2) plus a
    missing-label verdict for any label without a run.
    """
    verdicts: list[Verdict] = []
    missing = [label for label in ordering if label not in tnorms]
    if missing:
        verdicts.append(
            Verdict(
                monitor="paper-ordering",
                ok=False,
                detail=f"no registered run for labels: {', '.join(missing)}",
            )
        )
        return verdicts
    for better, worse in zip(ordering, ordering[1:]):
        a, b = tnorms[better], tnorms[worse]
        verdicts.append(
            Verdict(
                monitor=f"paper-ordering:{better}>{worse}",
                ok=a > b,
                detail=f"Tnorm[{better}]={a:.2f}h "
                + (">" if a > b else "<=")
                + f" Tnorm[{worse}]={b:.2f}h",
                events_seen=2,
            )
        )
    return verdicts


def tnorms_from_records(records: t.Iterable["RunRecord"]) -> dict[str, float]:
    """label -> normalized lifetime (hours) from registry records."""
    out: dict[str, float] = {}
    for record in records:
        tnorm = record.summary.get("tnorm_hours")
        if tnorm is not None:
            out[record.label] = float(tnorm)
    return out
