"""Telemetry exporters: JSONL, CSV rows, and Chrome trace-event JSON.

Three machine-readable views of the same run:

- **JSONL** — one tagged JSON object per line (``{"type": "segment",
  ...}``), covering trace segments, battery samples, events, spans and
  the metrics registry. :func:`read_jsonl` reloads the file into the
  original typed objects *bit-identically* (Python's ``json`` emits
  shortest round-tripping float literals, so every ``float`` survives).
- **CSV rows** — flat dict rows for :func:`repro.analysis.export.write_rows`.
- **Chrome trace-event format** — loadable in ``chrome://tracing`` and
  Perfetto. Nodes render as tracks (one ``tid`` per actor) under the
  "simulation" process; activity segments and profiling spans become
  duration slices, telemetry events become instants, and battery
  samples become counter tracks, reproducing the paper's Fig. 2/3/9
  timing-vs-power view interactively.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro.hw.battery.monitor import BatteryMonitor, BatterySample
from repro.obs.energy import EnergyLedger
from repro.obs.events import EventLog, TelemetryEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord
from repro.sim.trace import Segment, TraceRecorder

__all__ = [
    "TelemetryBundle",
    "write_jsonl",
    "read_jsonl",
    "segments_to_rows",
    "events_to_rows",
    "metrics_to_rows",
    "ledger_to_rows",
    "write_collapsed_stacks",
    "SEGMENT_COLUMNS",
    "EVENT_COLUMNS",
    "METRIC_COLUMNS",
    "LEDGER_COLUMNS",
    "chrome_trace",
    "write_chrome_trace",
]

_US = 1e6  # trace-event timestamps are microseconds


@dataclasses.dataclass
class TelemetryBundle:
    """Typed contents of one JSONL telemetry file.

    Attributes
    ----------
    segments:
        Activity-trace segments, in file order.
    samples:
        node name -> battery samples, in file order.
    events:
        Structured telemetry events, in file order.
    spans:
        Profiling spans, in file order.
    metrics:
        The metrics registry, if one was written.
    energy:
        The energy-attribution ledger, if one was written.
    journal:
        Flight-recorder execution-journal rows (plain dicts), if any
        were written.
    """

    segments: list[Segment] = dataclasses.field(default_factory=list)
    samples: dict[str, list[BatterySample]] = dataclasses.field(default_factory=dict)
    events: list[TelemetryEvent] = dataclasses.field(default_factory=list)
    spans: list[SpanRecord] = dataclasses.field(default_factory=list)
    metrics: MetricsRegistry | None = None
    energy: EnergyLedger | None = None
    journal: list[dict[str, t.Any]] = dataclasses.field(default_factory=list)


def _jsonl_records(
    trace: TraceRecorder | None,
    monitors: t.Mapping[str, BatteryMonitor] | None,
    events: EventLog | None,
    spans: t.Sequence[SpanRecord] | None,
    metrics: MetricsRegistry | None,
    energy: EnergyLedger | None = None,
    journal: t.Sequence[t.Mapping[str, t.Any]] | None = None,
) -> t.Iterator[dict[str, t.Any]]:
    if trace is not None:
        for segment in trace.all_segments():
            yield {"type": "segment", **segment.as_dict()}
    if monitors:
        for node in monitors:
            for sample in monitors[node].samples:
                yield {"type": "battery_sample", "node": node, **sample.as_dict()}
    if events is not None:
        for event in events.records:
            yield {"type": "event", **event.as_dict()}
    if spans:
        for span in spans:
            yield {"type": "span", **span.as_dict()}
    if metrics is not None:
        yield {"type": "metrics", **metrics.as_dict()}
    if energy is not None and energy:
        yield {"type": "energy_ledger", **energy.as_dict()}
    if journal:
        for row in journal:
            yield {"type": "exec_item", **dict(row)}


def write_jsonl(
    path: str | pathlib.Path,
    *,
    trace: TraceRecorder | None = None,
    monitors: t.Mapping[str, BatteryMonitor] | None = None,
    events: EventLog | None = None,
    spans: t.Sequence[SpanRecord] | None = None,
    metrics: MetricsRegistry | None = None,
    energy: EnergyLedger | None = None,
    journal: t.Sequence[t.Mapping[str, t.Any]] | None = None,
) -> pathlib.Path:
    """Write any subset of a run's telemetry as tagged JSONL lines.

    ``journal`` rows (flight-recorder execution journal — dicts from
    :meth:`~repro.obs.store.RunRegistry.list_journal` or
    :func:`~repro.obs.flight.journal_to_rows`) are tagged
    ``exec_item``. Note that canonical cross-mode journal exports go
    through :func:`repro.obs.flight.write_journal` instead, which
    strips telemetry fields; this exporter keeps whatever it is given.
    """
    path = pathlib.Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        for record in _jsonl_records(
            trace, monitors, events, spans, metrics, energy, journal
        ):
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> TelemetryBundle:
    """Reload a :func:`write_jsonl` file into typed objects.

    Raises
    ------
    ValueError
        On an unknown record type — a silent skip would hide data loss.
    """
    bundle = TelemetryBundle()
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "segment":
                bundle.segments.append(Segment.from_dict(record))
            elif kind == "battery_sample":
                node = record.pop("node")
                bundle.samples.setdefault(node, []).append(
                    BatterySample.from_dict(record)
                )
            elif kind == "event":
                bundle.events.append(TelemetryEvent.from_dict(record))
            elif kind == "span":
                bundle.spans.append(SpanRecord.from_dict(record))
            elif kind == "metrics":
                bundle.metrics = MetricsRegistry.from_dict(record)
            elif kind == "energy_ledger":
                bundle.energy = EnergyLedger.from_dict(record)
            elif kind == "exec_item":
                bundle.journal.append(record)
            else:
                raise ValueError(f"unknown telemetry record type: {kind!r}")
    return bundle


# ---------------------------------------------------------------------------
# flat rows (for CSV via repro.analysis.export.write_rows)
# ---------------------------------------------------------------------------

#: Column orders for the flat-row views below. CSV exporters pass
#: these explicitly so an *empty* run (zero segments / zero events)
#: still writes a header-only file rather than an empty one.
SEGMENT_COLUMNS = (
    "actor", "start", "end", "activity", "frequency_mhz", "current_ma", "detail",
)
EVENT_COLUMNS = ("kind", "ts", "actor", "data")
METRIC_COLUMNS = ("metric", "kind", "value")
LEDGER_COLUMNS = ("node", "mode", "bucket", "charge_mas", "charge_mah", "time_s")


def segments_to_rows(trace: TraceRecorder) -> list[dict[str, t.Any]]:
    """Trace segments as flat dict rows (:data:`SEGMENT_COLUMNS`)."""
    return [segment.as_dict() for segment in trace.all_segments()]


def events_to_rows(events: EventLog) -> list[dict[str, t.Any]]:
    """Telemetry events as flat dict rows (:data:`EVENT_COLUMNS`).

    The per-kind payload is heterogeneous, so it lands in one ``data``
    column as compact JSON rather than exploding into sparse columns.
    """
    return [
        {
            "kind": event.kind,
            "ts": event.ts,
            "actor": event.actor,
            "data": json.dumps(event.data, sort_keys=True, separators=(",", ":")),
        }
        for event in events.records
    ]


def metrics_to_rows(metrics: MetricsRegistry) -> list[dict[str, t.Any]]:
    """Registry contents as flat table rows (:data:`METRIC_COLUMNS`)."""
    return metrics.as_rows()


def ledger_to_rows(energy: EnergyLedger) -> list[dict[str, t.Any]]:
    """Energy-attribution buckets as flat rows (:data:`LEDGER_COLUMNS`).

    One row per ``(node, mode, bucket)`` triple, sorted — the CSV twin
    of the ledger's JSONL record, with the mAh conversion precomputed
    so spreadsheets line up against the paper's battery units directly.
    """
    return [
        {
            "node": row.node,
            "mode": row.mode,
            "bucket": row.bucket,
            "charge_mas": row.charge_mas,
            "charge_mah": row.charge_mah,
            "time_s": row.time_s,
        }
        for row in energy.rows()
    ]


def write_collapsed_stacks(
    path: str | pathlib.Path, lines: t.Iterable[str]
) -> pathlib.Path:
    """Write collapsed-stack (flamegraph) lines, one per stack.

    Takes the output of :func:`repro.obs.causal.collapsed_stacks`; the
    resulting file loads directly in ``flamegraph.pl`` or speedscope.
    """
    path = pathlib.Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

def _track_ids(
    trace: TraceRecorder | None, events: EventLog | None
) -> dict[str, int]:
    """actor -> tid, first-seen order across trace then events."""
    tids: dict[str, int] = {}
    if trace is not None:
        for actor in trace.actors:
            tids.setdefault(actor, len(tids))
    if events is not None:
        for actor in events.actors():
            tids.setdefault(actor, len(tids))
    return tids


def chrome_trace(
    *,
    trace: TraceRecorder | None = None,
    events: EventLog | None = None,
    spans: t.Sequence[SpanRecord] | None = None,
    monitors: t.Mapping[str, BatteryMonitor] | None = None,
    label: str = "repro",
) -> dict[str, t.Any]:
    """Build a Chrome trace-event JSON object from run telemetry.

    Process 0 ("simulation") holds one track per actor: activity
    segments as complete ("X") slices, telemetry events as instants
    ("i"), battery state-of-charge as counter ("C") series. Process 1
    ("profiling") holds wall-clock spans, rebased so the earliest span
    starts at t=0.
    """
    out: list[dict[str, t.Any]] = []
    tids = _track_ids(trace, events)

    out.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"{label} simulation"},
        }
    )
    for actor, tid in tids.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": actor},
            }
        )

    if trace is not None:
        for segment in trace.all_segments():
            out.append(
                {
                    "name": segment.activity,
                    "cat": "activity",
                    "ph": "X",
                    "ts": segment.start * _US,
                    "dur": segment.duration * _US,
                    "pid": 0,
                    "tid": tids[segment.actor],
                    "args": {
                        "frequency_mhz": segment.frequency_mhz,
                        "current_ma": segment.current_ma,
                        "detail": segment.detail,
                    },
                }
            )

    if events is not None:
        for event in events.records:
            out.append(
                {
                    "name": event.kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event.ts * _US,
                    "pid": 0,
                    "tid": tids.get(event.actor, 0),
                    "args": dict(event.data),
                }
            )

    if monitors:
        for node in sorted(monitors):
            for sample in monitors[node].samples:
                out.append(
                    {
                        "name": f"charge {node}",
                        "cat": "battery",
                        "ph": "C",
                        "ts": sample.time_s * _US,
                        "pid": 0,
                        "tid": tids.get(node, 0),
                        "args": {"fraction": sample.charge_fraction},
                    }
                )

    if spans:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": f"{label} profiling"},
            }
        )
        epoch = min(span.start_s for span in spans)
        for span in spans:
            out.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": (span.start_s - epoch) * _US,
                    "dur": span.duration_s * _US,
                    "pid": 1,
                    "tid": 0,
                    "args": dict(span.tags),
                }
            )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | pathlib.Path,
    *,
    trace: TraceRecorder | None = None,
    events: EventLog | None = None,
    spans: t.Sequence[SpanRecord] | None = None,
    monitors: t.Mapping[str, BatteryMonitor] | None = None,
    label: str = "repro",
) -> pathlib.Path:
    """Write :func:`chrome_trace` output as a ``chrome://tracing`` file."""
    path = pathlib.Path(path)
    payload = chrome_trace(
        trace=trace, events=events, spans=spans, monitors=monitors, label=label
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")
    return path
