"""The structured event bus: typed telemetry records with a null sink.

The paper's entire evidence chain is instrumentation — Itsy's on-board
power monitor plus the timing/power traces of Figs. 2, 3, 7 and 9.
:class:`EventLog` is the machine-readable generalization: every layer
of the testbed (sim kernel, links, nodes, pipeline protocols) publishes
:class:`TelemetryEvent` records into one ordered log, timestamped in
*simulated* seconds so identical seeds produce identical logs.

Null-sink contract
------------------
Emitters guard every publication with ``if obs:`` — a disabled log (or
``None``) is falsy, so the cost of leaving instrumentation wired into a
hot loop is one truthiness check. The tier-1 overhead test pins this
to <5% of the wall time of a short experiment.

Event kinds are dotted strings, namespaced by layer:

=====================  ====================================================
kind                   emitted by
=====================  ====================================================
``kernel.run``         :class:`repro.sim.kernel.Simulator` (run loop exit)
``kernel.process``     :class:`repro.sim.kernel.Simulator` (process start)
``link.xfer``          :class:`repro.hw.link.SerialLink` (rendezvous match)
``link.stall``         :class:`repro.hw.node.ItsyNode` (blocked rendezvous)
``dvs.switch``         :class:`repro.hw.node.ItsyNode` (level change)
``battery.draw``       :class:`repro.hw.battery.monitor.BatteryMonitor`
``battery.dead``       :class:`repro.hw.node.ItsyNode`
``frame.emit``         :class:`repro.pipeline.engine.PipelineEngine`
``frame.result``       :class:`repro.pipeline.engine.PipelineEngine`
``proc.block``         :class:`repro.pipeline.engine.PipelineEngine`
``recovery.migrate``   :class:`repro.pipeline.engine.PipelineEngine`
``rotation.reconfig``  :class:`repro.pipeline.engine.PipelineEngine`
``ff.epoch``           :class:`repro.sim.fastforward.FastForwardController`
``log.truncated``      :class:`EventLog` (terminal marker, see :meth:`~EventLog.seal`)
=====================  ====================================================

``ff.epoch`` is the coalesced record of one fast-forward jump
(``mode="fast"`` runs only): the frames, periods, per-node drain, and
per-sender link busy time that analytic epoch skipping removed from the
event-by-event stream. Monitors in :mod:`repro.obs.checks` fold these
back into their counts so verdicts stay well-defined in fast mode.
"""

from __future__ import annotations

import dataclasses
import typing as t

__all__ = ["TelemetryEvent", "EventLog", "NULL_LOG"]


@dataclasses.dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured telemetry record.

    Attributes
    ----------
    kind:
        Dotted event type (``"link.xfer"``, ``"dvs.switch"``, ...).
    ts:
        Simulated time of the event in seconds.
    actor:
        Name of the node/link/process the event belongs to ("" if none).
    data:
        JSON-serializable details (payload sizes, levels, frame ids...).
    """

    kind: str
    ts: float
    actor: str = ""
    data: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable dict form (see :func:`from_dict`)."""
        return {
            "kind": self.kind,
            "ts": self.ts,
            "actor": self.actor,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "TelemetryEvent":
        """Rebuild an event from :meth:`as_dict` output (bit-identical)."""
        return cls(
            kind=payload["kind"],
            ts=payload["ts"],
            actor=payload.get("actor", ""),
            data=dict(payload.get("data", {})),
        )


class EventLog:
    """Ordered, bounded collection of :class:`TelemetryEvent` records.

    Parameters
    ----------
    enabled:
        ``False`` makes the log a null sink: it is falsy and
        :meth:`emit` is a no-op, so wired-in instrumentation costs one
        branch per site.
    max_events:
        Hard cap on stored records; further emissions are counted in
        :attr:`dropped` instead of stored, bounding memory on very long
        runs.

    Notes
    -----
    Truthiness is the null-sink check: ``bool(log)`` is ``enabled``, so
    emitters write ``if obs: obs.emit(...)`` and pay nothing when
    telemetry is off. (Hot-loop emitters normalize a falsy log to
    ``None`` at construction so the per-emit branch is a C-level
    ``None`` test, not a Python-level ``__bool__`` call.) The log
    records *simulated* time only — no wall-clock field exists — which
    is what makes event logs comparable across ``--jobs 1`` and
    ``--jobs 4`` runs.

    Streaming subscribers (:meth:`attach`) observe every published
    event online, *including* events the storage cap drops — a monitor
    that checks invariants over a very long run must not go blind when
    the log fills. Taps are live-run machinery: they are not pickled
    with the log and not part of its serialized form.

    Internally, emissions are buffered as raw field tuples and only
    materialized into :class:`TelemetryEvent` objects when the log is
    *read* (``records``, iteration, queries, serialization) — frozen
    dataclass construction is the single largest cost of full telemetry
    on a hot run, and most recorded events are never individually
    inspected. Attaching a tap forces eager construction, since taps
    must observe real events online.
    """

    __slots__ = ("enabled", "max_events", "_records", "_pending", "dropped", "_taps")

    def __init__(self, enabled: bool = True, max_events: int = 1_000_000):
        self.enabled = enabled
        self.max_events = max_events
        self._records: list[TelemetryEvent] = []
        self._pending: list[tuple[str, float, str, dict[str, t.Any]]] = []
        self.dropped = 0
        self._taps: list[t.Any] = []

    @property
    def records(self) -> list[TelemetryEvent]:
        """All stored events, materializing any lazily-buffered ones."""
        if self._pending:
            self._flush()
        return self._records

    @records.setter
    def records(self, value: list[TelemetryEvent]) -> None:
        self._records = value
        self._pending = []

    def _flush(self) -> None:
        append = self._records.append
        for kind, ts, actor, data in self._pending:
            append(TelemetryEvent(kind, ts, actor, data))
        self._pending.clear()

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self._records) + len(self._pending)

    def __iter__(self) -> t.Iterator[TelemetryEvent]:
        return iter(self.records)

    def emit(self, kind: str, ts: float, actor: str = "", **data: t.Any) -> None:
        """Publish one event (no-op when disabled; counted when full)."""
        if not self.enabled:
            return
        taps = self._taps
        if taps:
            event = TelemetryEvent(kind, ts, actor, data)
            if len(self._records) + len(self._pending) < self.max_events:
                if self._pending:
                    self._flush()
                self._records.append(event)
            else:
                self.dropped += 1
            for tap in taps:
                tap.observe(event)
            return
        if len(self._records) + len(self._pending) < self.max_events:
            self._pending.append((kind, ts, actor, data))
        else:
            self.dropped += 1

    def record(self, event: TelemetryEvent) -> None:
        """Publish an already-built event (same gating as :meth:`emit`)."""
        if not self.enabled:
            return
        if len(self._records) + len(self._pending) < self.max_events:
            if self._pending:
                self._flush()
            self._records.append(event)
        else:
            self.dropped += 1
        if self._taps:
            for tap in self._taps:
                tap.observe(event)

    def seal(self, ts: float) -> None:
        """Make a hit storage cap visible as a terminal record.

        A full log silently counts further emissions in :attr:`dropped`;
        consumers reading only the stored records would mistake the
        truncated stream for a complete one. Sealing appends one
        ``log.truncated`` event carrying the drop count (bypassing the
        cap — one record of overhead), so replayed monitors can return
        *inconclusive* verdicts and summaries can flag the gap.

        No-op when nothing was dropped; re-sealing refreshes the
        terminal record in place instead of appending another. Attached
        taps are *not* notified: a live tap observed every published
        event (including the dropped ones), so its view is complete —
        the terminal record exists for readers of the stored log, whose
        view is not.
        """
        if not self.enabled or not self.dropped:
            return
        data = {"dropped": self.dropped}
        if self._pending and self._pending[-1][0] == "log.truncated":
            self._pending[-1] = ("log.truncated", ts, "", data)
            return
        if not self._pending and self._records and self._records[-1].kind == "log.truncated":
            self._records[-1] = TelemetryEvent("log.truncated", ts, "", data)
            return
        self._pending.append(("log.truncated", ts, "", data))

    # -- streaming subscribers -------------------------------------------
    def attach(self, tap: t.Any) -> t.Any:
        """Subscribe ``tap`` (anything with ``observe(event)``) to the bus.

        Every subsequently published event is forwarded to the tap
        online, even events the storage cap drops. Returns the tap, so
        ``monitor = log.attach(FrameDeadlineMonitor(...))`` reads
        naturally.
        """
        if not hasattr(tap, "observe"):
            raise TypeError(f"tap {tap!r} has no observe(event) method")
        self._taps.append(tap)
        return tap

    def detach(self, tap: t.Any) -> None:
        """Unsubscribe a previously attached tap (no-op if absent)."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # -- queries ---------------------------------------------------------
    def of_kind(self, kind: str) -> list[TelemetryEvent]:
        """All records with exactly this kind."""
        return [e for e in self.records if e.kind == kind]

    def counts_by_kind(self) -> dict[str, int]:
        """kind -> number of records, sorted by kind (deterministic).

        Reads the lazy buffer directly — summarizing a run must not
        force every buffered event to materialize.
        """
        counts: dict[str, int] = {}
        for event in self._records:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        for kind, _ts, _actor, _data in self._pending:
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def actors(self) -> list[str]:
        """Distinct actors in first-seen order (excluding "")."""
        seen: dict[str, None] = {}
        for event in self._records:
            if event.actor and event.actor not in seen:
                seen[event.actor] = None
        for _kind, _ts, actor, _data in self._pending:
            if actor and actor not in seen:
                seen[actor] = None
        return list(seen)

    def clear(self) -> None:
        """Drop all records (the cap and enabled flag are unchanged)."""
        self._records.clear()
        self._pending.clear()
        self.dropped = 0

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload that :meth:`from_dict` restores bit-identically."""
        return {
            "enabled": self.enabled,
            "max_events": self.max_events,
            "dropped": self.dropped,
            "records": [e.as_dict() for e in self.records],
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "EventLog":
        """Rebuild a log (records included) from :meth:`as_dict` output."""
        log = cls(
            enabled=payload.get("enabled", True),
            max_events=payload.get("max_events", 1_000_000),
        )
        log.records = [TelemetryEvent.from_dict(r) for r in payload.get("records", [])]
        log.dropped = payload.get("dropped", 0)
        return log

    # -- pickling ---------------------------------------------------------
    # Taps are live-run subscribers (monitors holding arbitrary state);
    # a log shipped home from a worker or a cache payload carries only
    # its records.
    def __getstate__(self) -> tuple:
        return (self.enabled, self.max_events, self.records, self.dropped)

    def __setstate__(self, state: tuple) -> None:
        self.enabled, self.max_events, self.records, self.dropped = state
        self._taps = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<EventLog {state} n={len(self)} dropped={self.dropped}>"


#: Shared always-off log for call sites that want an object, not None.
NULL_LOG = EventLog(enabled=False, max_events=0)
