"""The run registry: persistent, queryable records of every experiment.

The paper's evidence is longitudinal — eight configurations compared by
battery lifetime (Fig. 10) — yet a simulation run's telemetry normally
evaporates with the process. :class:`RunRegistry` is the persistence
layer above :mod:`repro.obs`: every ``run_experiment`` /
``run_paper_suite`` invocation can deposit a :class:`RunRecord`
(config fingerprint, version/git metadata, metrics snapshot, summary
scalars, event-log digest) into an SQLite database, from which runs can
be listed, inspected, and diffed against each other or against paper
expectations long after the process exited.

Determinism contract
--------------------
A record is derived *only* from the run payload — the same data that
round-trips through worker pickling and the content-addressed result
cache — never from wall clocks or scheduling. Identical configurations
therefore produce byte-identical records whether executed serially,
fanned over worker processes, or replayed from the cache, and
:attr:`RunRecord.run_id` (a digest over fingerprint + results) makes
re-registration a no-op instead of a duplicate row.

The registry file defaults to ``.repro-runs.sqlite`` in the working
directory (override with ``REPRO_RUNS_DB`` or ``--db``); deleting the
file — or ``repro runs reset`` — clears all history.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import sqlite3
import subprocess
import typing as t

import repro
from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.experiments import ExperimentRun

__all__ = [
    "DEFAULT_DB",
    "RunRecord",
    "RunRegistry",
    "build_run_record",
    "diff_records",
    "git_revision",
]

#: Default registry location (overridable via the REPRO_RUNS_DB
#: environment variable, which the CLI honours).
DEFAULT_DB = ".repro-runs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    label        TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    version      TEXT NOT NULL,
    git_sha      TEXT,
    n_events     INTEGER NOT NULL,
    event_digest TEXT,
    summary      TEXT NOT NULL,
    metrics      TEXT NOT NULL,
    seq          INTEGER NOT NULL
)
"""


def _canonical_json(payload: t.Any) -> str:
    """Key-sorted, separator-stable JSON; the hashed/stored form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """The working tree's commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One registered run.

    Attributes
    ----------
    run_id:
        Content digest over (label, fingerprint, summary, metrics,
        event_digest) — identical configuration and results hash to the
        identical id, so replays deduplicate.
    label:
        Experiment label ("1A", "2C", ...).
    fingerprint:
        Digest of the full effective ``run_experiment`` configuration
        (defaults applied), independent of jobs/cache settings.
    version, git_sha:
        Code provenance (package version; commit sha when available).
    n_events, event_digest:
        Size and digest of the structured event log (None/0 when the
        run carried no telemetry) — enough to *compare* event streams
        across runs without storing them.
    summary:
        Scalar outcomes: lifetime, frames, deadline misses, per-node
        final charge, end reason...
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry` snapshot
        (``as_dict`` form).
    """

    run_id: str
    label: str
    fingerprint: str
    version: str
    git_sha: str | None
    n_events: int
    event_digest: str | None
    summary: dict[str, t.Any]
    metrics: dict[str, t.Any]

    def as_row(self) -> dict[str, t.Any]:
        """Flat list-view row (id prefix, label, headline scalars)."""
        return {
            "run_id": self.run_id[:12],
            "label": self.label,
            "T_hours": self.summary.get("t_hours"),
            "frames": self.summary.get("frames"),
            "late": self.summary.get("late_results"),
            "events": self.n_events,
            "end": self.summary.get("end_reason"),
        }


def build_run_record(
    run: "ExperimentRun",
    fingerprint: str,
    version: str | None = None,
    git_sha: str | None = None,
) -> RunRecord:
    """Derive the registry record for one executed experiment.

    Every field comes from the run payload (which round-trips through
    worker pickling and the result cache bit-identically), so serial,
    parallel, and cache-replayed executions of the same configuration
    produce the same record.
    """
    version = version if version is not None else repro.__version__
    summary: dict[str, t.Any] = {
        "label": run.spec.label,
        "t_hours": run.t_hours,
        "frames": run.frames,
        "n_nodes": run.spec.n_nodes,
        "tnorm_hours": run.t_hours / run.spec.n_nodes,
        "deadline_s": run.spec.deadline_s,
        "death_times_s": dict(sorted(run.death_times_s.items())),
    }
    p = run.pipeline
    if p is not None:
        summary.update(
            end_reason=p.end_reason,
            end_time_s=p.end_time_s,
            late_results=p.late_results,
            max_lateness_s=p.max_lateness_s,
            delivered_mah=dict(sorted(p.delivered_mah.items())),
            migrations=len(p.migrations),
            level_switches=sum(p.level_switches.values()),
            stage_stalls=sum(p.stage_stalls.values()),
            link_transactions=p.total_link_transactions,
            link_bytes=p.total_link_bytes,
            events_processed=p.events_processed,
        )
    else:
        summary.update(end_reason="all-dead", late_results=0)

    metrics: dict[str, t.Any] = {}
    n_events = 0
    event_digest: str | None = None
    if run.obs is not None:
        metrics = run.obs.metrics.as_dict()
        if run.obs.events:
            events_json = _canonical_json(run.obs.events.as_dict())
            event_digest = hashlib.sha256(events_json.encode("utf-8")).hexdigest()
            n_events = len(run.obs.events)

    run_id = hashlib.sha256(
        _canonical_json(
            [run.spec.label, fingerprint, summary, metrics, event_digest]
        ).encode("utf-8")
    ).hexdigest()
    return RunRecord(
        run_id=run_id,
        label=run.spec.label,
        fingerprint=fingerprint,
        version=version,
        git_sha=git_sha,
        n_events=n_events,
        event_digest=event_digest,
        summary=summary,
        metrics=metrics,
    )


class RunRegistry:
    """SQLite-backed store of :class:`RunRecord` rows.

    Connections are opened per operation, so one registry object can be
    shared freely and the database can be inspected concurrently with
    standard SQLite tooling. Records are append-only and keyed by
    content (``run_id``): re-registering an identical run is a no-op,
    which is what keeps the registry byte-identical across ``--jobs``
    settings and cache replays.
    """

    def __init__(self, path: str | os.PathLike = DEFAULT_DB):
        self.path = pathlib.Path(path)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        conn.execute(_SCHEMA)
        return conn

    # -- writes ----------------------------------------------------------
    def record(self, record: RunRecord) -> bool:
        """Persist one record; returns True if it was newly inserted."""
        with self._connect() as conn:
            cur = conn.execute("SELECT COALESCE(MAX(seq), 0) + 1 FROM runs")
            next_seq = cur.fetchone()[0]
            cur = conn.execute(
                "INSERT OR IGNORE INTO runs "
                "(run_id, label, fingerprint, version, git_sha, n_events, "
                " event_digest, summary, metrics, seq) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_id,
                    record.label,
                    record.fingerprint,
                    record.version,
                    record.git_sha,
                    record.n_events,
                    record.event_digest,
                    _canonical_json(record.summary),
                    _canonical_json(record.metrics),
                    next_seq,
                ),
            )
            return cur.rowcount == 1

    def record_run(self, run: "ExperimentRun", fingerprint: str) -> RunRecord:
        """Build and persist the record for one run; returns it."""
        record = build_run_record(run, fingerprint, git_sha=git_revision())
        self.record(record)
        return record

    def reset(self) -> int:
        """Delete every registered run; returns the number removed."""
        if not self.path.exists():
            return 0
        with self._connect() as conn:
            cur = conn.execute("DELETE FROM runs")
            return cur.rowcount

    # -- reads -----------------------------------------------------------
    @staticmethod
    def _from_row(row: tuple) -> RunRecord:
        (run_id, label, fingerprint, version, git_sha,
         n_events, event_digest, summary, metrics) = row
        return RunRecord(
            run_id=run_id,
            label=label,
            fingerprint=fingerprint,
            version=version,
            git_sha=git_sha,
            n_events=n_events,
            event_digest=event_digest,
            summary=json.loads(summary),
            metrics=json.loads(metrics),
        )

    _COLUMNS = (
        "run_id, label, fingerprint, version, git_sha, "
        "n_events, event_digest, summary, metrics"
    )

    def list_runs(
        self,
        label: str | None = None,
        limit: int | None = None,
        fingerprint: str | None = None,
        offset: int = 0,
    ) -> list[RunRecord]:
        """Registered runs, most recent first.

        ``label`` and ``fingerprint`` filter to one experiment and/or
        one exact configuration (fingerprints distinguish e.g. full
        from quarter-capacity batteries of the same label).
        ``limit``/``offset`` paginate the filtered, newest-first list
        (sqlite requires a LIMIT for OFFSET, so a bare offset is
        applied against an unbounded limit).
        """
        query = f"SELECT {self._COLUMNS} FROM runs"
        clauses: list[str] = []
        params: list[t.Any] = []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if fingerprint is not None:
            clauses.append("fingerprint = ?")
            params.append(fingerprint)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY seq DESC"
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        if limit is not None or offset:
            query += " LIMIT ?"
            params.append(-1 if limit is None else limit)
        if offset:
            query += " OFFSET ?"
            params.append(offset)
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return [self._from_row(r) for r in conn.execute(query, params)]

    def get(self, run_id_prefix: str) -> RunRecord:
        """The unique record whose id starts with ``run_id_prefix``.

        Raises
        ------
        ConfigurationError
            If no record matches, or the prefix is ambiguous.
        """
        if not run_id_prefix:
            raise ConfigurationError("empty run id")
        matches: list[RunRecord] = []
        if self.path.exists():
            with self._connect() as conn:
                rows = conn.execute(
                    f"SELECT {self._COLUMNS} FROM runs "
                    "WHERE run_id LIKE ? ORDER BY seq",
                    (run_id_prefix.replace("%", "") + "%",),
                )
                matches = [self._from_row(r) for r in rows]
        if not matches:
            raise ConfigurationError(f"no registered run matches {run_id_prefix!r}")
        if len(matches) > 1:
            ids = ", ".join(m.run_id[:12] for m in matches)
            raise ConfigurationError(
                f"run id {run_id_prefix!r} is ambiguous ({ids})"
            )
        return matches[0]

    def latest(
        self, label: str, fingerprint: str | None = None
    ) -> RunRecord | None:
        """The most recently registered run of one experiment label."""
        runs = self.list_runs(label=label, limit=1, fingerprint=fingerprint)
        return runs[0] if runs else None

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def dump_rows(self) -> list[tuple]:
        """Every row, fully materialized, in insertion order.

        The registry's determinism tests compare these dumps across
        execution modes; any wall-clock or scheduling leak into the
        stored content would show up here.
        """
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return list(conn.execute("SELECT * FROM runs ORDER BY seq"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunRegistry {self.path} n={len(self)}>"


# ---------------------------------------------------------------------------
# regression diffing
# ---------------------------------------------------------------------------

def _scalar_items(record: RunRecord) -> dict[str, float]:
    """Flat name -> numeric value view of a record (summary + metrics)."""
    out: dict[str, float] = {}
    for name, value in record.summary.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[name] = float(value)
    for counter in record.metrics.get("counters", []):
        out[f"counter:{counter['name']}"] = float(counter["value"])
    for gauge in record.metrics.get("gauges", []):
        if gauge["value"] is not None:
            out[f"gauge:{gauge['name']}"] = float(gauge["value"])
    return out


def diff_records(
    a: RunRecord,
    b: RunRecord,
    threshold_pct: float = 0.0,
) -> list[dict[str, t.Any]]:
    """Per-metric deltas between two registered runs.

    Returns one row per scalar present in either record, with absolute
    and relative deltas; rows whose relative change exceeds
    ``threshold_pct`` are flagged ``regression`` (direction-agnostic —
    the caller decides which direction is bad per metric). Rows are
    name-sorted for deterministic rendering.
    """
    va, vb = _scalar_items(a), _scalar_items(b)
    rows: list[dict[str, t.Any]] = []
    for name in sorted(set(va) | set(vb)):
        x, y = va.get(name), vb.get(name)
        delta = None if x is None or y is None else y - x
        rel = None
        if delta is not None and x not in (None, 0.0):
            rel = 100.0 * delta / abs(x)
        rows.append(
            {
                "metric": name,
                "a": x,
                "b": y,
                "delta": delta,
                "rel_pct": None if rel is None else round(rel, 3),
                "regression": (
                    rel is not None
                    and threshold_pct > 0
                    and abs(rel) > threshold_pct
                ),
            }
        )
    return rows
