"""The run registry: persistent, queryable records of every experiment.

The paper's evidence is longitudinal — eight configurations compared by
battery lifetime (Fig. 10) — yet a simulation run's telemetry normally
evaporates with the process. :class:`RunRegistry` is the persistence
layer above :mod:`repro.obs`: every ``run_experiment`` /
``run_paper_suite`` invocation can deposit a :class:`RunRecord`
(config fingerprint, version/git metadata, metrics snapshot, summary
scalars, event-log digest) into an SQLite database, from which runs can
be listed, inspected, and diffed against each other or against paper
expectations long after the process exited.

Determinism contract
--------------------
A record is derived *only* from the run payload — the same data that
round-trips through worker pickling and the content-addressed result
cache — never from wall clocks or scheduling. Identical configurations
therefore produce byte-identical records whether executed serially,
fanned over worker processes, or replayed from the cache, and
:attr:`RunRecord.run_id` (a digest over fingerprint + results) makes
re-registration a no-op instead of a duplicate row.

The registry file defaults to ``.repro-runs.sqlite`` in the working
directory (override with ``REPRO_RUNS_DB`` or ``--db``); deleting the
file — or ``repro runs reset`` — clears all history.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import sqlite3
import subprocess
import time
import typing as t

import repro
from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.experiments import ExperimentRun

__all__ = [
    "DEFAULT_DB",
    "RunRecord",
    "ExploreRecord",
    "RunRegistry",
    "build_run_record",
    "build_explore_record",
    "diff_records",
    "git_revision",
]

#: Default registry location (overridable via the REPRO_RUNS_DB
#: environment variable, which the CLI honours).
DEFAULT_DB = ".repro-runs.sqlite"

# ``created_at`` is housekeeping only — it powers ``runs gc
# --older-than`` and never enters record content, digests, or
# determinism dumps (wall clocks must not leak into anything compared
# across execution modes).
_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    label        TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    version      TEXT NOT NULL,
    git_sha      TEXT,
    n_events     INTEGER NOT NULL,
    event_digest TEXT,
    summary      TEXT NOT NULL,
    metrics      TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    created_at   REAL
)
"""

_EXPLORE_SCHEMA = """
CREATE TABLE IF NOT EXISTS explore_sessions (
    session_id  TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    version     TEXT NOT NULL,
    git_sha     TEXT,
    n_configs   INTEGER NOT NULL,
    rung        TEXT NOT NULL,
    rungs       TEXT NOT NULL,
    frontier    TEXT NOT NULL,
    cursor      TEXT,
    seq         INTEGER NOT NULL,
    created_at  REAL
)
"""

# The flight recorder's execution journal (see :mod:`repro.obs.flight`).
# The first eight columns are record *content* — deterministic across
# serial/parallel/cache-replay executions and the only columns the
# determinism dumps compare; the rest are honest telemetry (wall
# clocks, worker ids, RSS) that naturally differ per execution.
_JOURNAL_SCHEMA = """
CREATE TABLE IF NOT EXISTS exec_journal (
    journal_id   TEXT PRIMARY KEY,
    map_id       TEXT NOT NULL,
    map_ordinal  INTEGER NOT NULL,
    idx          INTEGER NOT NULL,
    key          TEXT,
    outcome      TEXT NOT NULL,
    stage        TEXT,
    error        TEXT,
    status       TEXT NOT NULL,
    worker       TEXT,
    attempts     INTEGER NOT NULL,
    wall_s       REAL NOT NULL,
    cpu_s        REAL NOT NULL,
    peak_rss_kb  INTEGER NOT NULL,
    seq          INTEGER NOT NULL,
    created_at   REAL
)
"""

# Live fleet progress: one REPLACE'd row per fleet label holding the
# latest FleetSnapshot JSON — the plane ``repro top`` attaches to.
# Pure telemetry (never compared across modes).
_PROGRESS_SCHEMA = """
CREATE TABLE IF NOT EXISTS exec_progress (
    label       TEXT PRIMARY KEY,
    snapshot    TEXT NOT NULL,
    updated_at  REAL NOT NULL
)
"""


def _canonical_json(payload: t.Any) -> str:
    """Key-sorted, separator-stable JSON; the hashed/stored form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """The working tree's commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One registered run.

    Attributes
    ----------
    run_id:
        Content digest over (label, fingerprint, summary, metrics,
        event_digest) — identical configuration and results hash to the
        identical id, so replays deduplicate.
    label:
        Experiment label ("1A", "2C", ...).
    fingerprint:
        Digest of the full effective ``run_experiment`` configuration
        (defaults applied), independent of jobs/cache settings.
    version, git_sha:
        Code provenance (package version; commit sha when available).
    n_events, event_digest:
        Size and digest of the structured event log (None/0 when the
        run carried no telemetry) — enough to *compare* event streams
        across runs without storing them.
    summary:
        Scalar outcomes: lifetime, frames, deadline misses, per-node
        final charge, end reason...
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry` snapshot
        (``as_dict`` form).
    created_at:
        Registration wall-clock (epoch seconds), populated on records
        read back from a registry. Housekeeping/display only — it never
        enters ``run_id``, determinism dumps, or record equality (a
        reloaded record compares equal to the one that was stored).
    """

    run_id: str
    label: str
    fingerprint: str
    version: str
    git_sha: str | None
    n_events: int
    event_digest: str | None
    summary: dict[str, t.Any]
    metrics: dict[str, t.Any]
    created_at: float | None = dataclasses.field(default=None, compare=False)

    def as_row(self) -> dict[str, t.Any]:
        """Flat list-view row (id prefix, label, headline scalars)."""
        return {
            "run_id": self.run_id[:12],
            "label": self.label,
            "T_hours": self.summary.get("t_hours"),
            "frames": self.summary.get("frames"),
            "late": self.summary.get("late_results"),
            "events": self.n_events,
            "end": self.summary.get("end_reason"),
        }


def build_run_record(
    run: "ExperimentRun",
    fingerprint: str,
    version: str | None = None,
    git_sha: str | None = None,
) -> RunRecord:
    """Derive the registry record for one executed experiment.

    Every field comes from the run payload (which round-trips through
    worker pickling and the result cache bit-identically), so serial,
    parallel, and cache-replayed executions of the same configuration
    produce the same record.
    """
    version = version if version is not None else repro.__version__
    summary: dict[str, t.Any] = {
        "label": run.spec.label,
        "t_hours": run.t_hours,
        "frames": run.frames,
        "n_nodes": run.spec.n_nodes,
        "tnorm_hours": run.t_hours / run.spec.n_nodes,
        "deadline_s": run.spec.deadline_s,
        "death_times_s": dict(sorted(run.death_times_s.items())),
    }
    p = run.pipeline
    if p is not None:
        summary.update(
            end_reason=p.end_reason,
            end_time_s=p.end_time_s,
            late_results=p.late_results,
            max_lateness_s=p.max_lateness_s,
            delivered_mah=dict(sorted(p.delivered_mah.items())),
            migrations=len(p.migrations),
            level_switches=sum(p.level_switches.values()),
            stage_stalls=sum(p.stage_stalls.values()),
            link_transactions=p.total_link_transactions,
            link_bytes=p.total_link_bytes,
            events_processed=p.events_processed,
        )
    else:
        summary.update(end_reason="all-dead", late_results=0)

    metrics: dict[str, t.Any] = {}
    n_events = 0
    event_digest: str | None = None
    if run.obs is not None:
        metrics = run.obs.metrics.as_dict()
        if run.obs.events:
            events_json = _canonical_json(run.obs.events.as_dict())
            event_digest = hashlib.sha256(events_json.encode("utf-8")).hexdigest()
            n_events = len(run.obs.events)

    run_id = hashlib.sha256(
        _canonical_json(
            [run.spec.label, fingerprint, summary, metrics, event_digest]
        ).encode("utf-8")
    ).hexdigest()
    return RunRecord(
        run_id=run_id,
        label=run.spec.label,
        fingerprint=fingerprint,
        version=version,
        git_sha=git_sha,
        n_events=n_events,
        event_digest=event_digest,
        summary=summary,
        metrics=metrics,
    )


@dataclasses.dataclass(frozen=True)
class ExploreRecord:
    """One explore-session snapshot (a rung boundary or the final frontier).

    The halving scheduler streams its progress by registering one of
    these after every completed rung; ``rung`` names the latest rung and
    ``rungs``/``frontier`` carry the cumulative deterministic state.
    ``cursor`` is the scheduler's resume state (promoted set + scores)
    as of this snapshot — pure content, what ``repro explore --resume``
    replays. ``session_id`` is a content digest, so replaying the same
    exploration (serial, parallel, or from cache) deduplicates instead
    of appending.
    """

    session_id: str
    fingerprint: str
    version: str
    git_sha: str | None
    n_configs: int
    rung: str
    rungs: list[dict[str, t.Any]]
    frontier: list[dict[str, t.Any]]
    cursor: dict[str, t.Any] | None = None

    def as_row(self) -> dict[str, t.Any]:
        """Flat list-view row for the CLI."""
        return {
            "session_id": self.session_id[:12],
            "configs": self.n_configs,
            "rung": self.rung,
            "rungs": len(self.rungs),
            "frontier": len(self.frontier),
        }


def build_explore_record(
    fingerprint: str,
    n_configs: int,
    rung: str,
    rungs: t.Sequence[dict[str, t.Any]],
    frontier: t.Sequence[dict[str, t.Any]] = (),
    version: str | None = None,
    git_sha: str | None = None,
    cursor: dict[str, t.Any] | None = None,
) -> ExploreRecord:
    """Derive the registry record for one explore-session snapshot.

    Like :func:`build_run_record`, every identity-bearing field is
    content — the session id digests the configuration fingerprint plus
    the deterministic rung/frontier/cursor state, never wall clocks —
    so all execution modes produce byte-identical records. A ``None``
    cursor digests exactly as records did before cursors existed, so
    pre-cursor session ids remain stable.
    """
    rungs = [dict(r) for r in rungs]
    frontier = [dict(f) for f in frontier]
    identity: list[t.Any] = [fingerprint, n_configs, rung, rungs, frontier]
    if cursor is not None:
        cursor = dict(cursor)
        identity.append(cursor)
    session_id = hashlib.sha256(
        _canonical_json(identity).encode("utf-8")
    ).hexdigest()
    return ExploreRecord(
        session_id=session_id,
        fingerprint=fingerprint,
        version=version if version is not None else repro.__version__,
        git_sha=git_sha,
        n_configs=n_configs,
        rung=rung,
        rungs=rungs,
        frontier=frontier,
        cursor=cursor,
    )


class RunRegistry:
    """SQLite-backed store of :class:`RunRecord` rows.

    Connections are opened per operation, so one registry object can be
    shared freely and the database can be inspected concurrently with
    standard SQLite tooling. Records are append-only and keyed by
    content (``run_id``): re-registering an identical run is a no-op,
    which is what keeps the registry byte-identical across ``--jobs``
    settings and cache replays.
    """

    def __init__(self, path: str | os.PathLike = DEFAULT_DB):
        self.path = pathlib.Path(path)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        conn.execute(_SCHEMA)
        conn.execute(_EXPLORE_SCHEMA)
        conn.execute(_JOURNAL_SCHEMA)
        conn.execute(_PROGRESS_SCHEMA)
        # Databases created before the created_at column existed gain it
        # in place; content columns are untouched, so old ids stay valid.
        columns = {row[1] for row in conn.execute("PRAGMA table_info(runs)")}
        if "created_at" not in columns:
            conn.execute("ALTER TABLE runs ADD COLUMN created_at REAL")
        # Likewise for the explore resume cursor: pre-cursor databases
        # gain a NULL column; old session ids (digested without a
        # cursor) stay valid because a None cursor stays out of digests.
        explore_columns = {
            row[1]
            for row in conn.execute("PRAGMA table_info(explore_sessions)")
        }
        if "cursor" not in explore_columns:
            conn.execute("ALTER TABLE explore_sessions ADD COLUMN cursor TEXT")
        return conn

    # -- writes ----------------------------------------------------------
    def record(self, record: RunRecord) -> bool:
        """Persist one record; returns True if it was newly inserted."""
        with self._connect() as conn:
            cur = conn.execute("SELECT COALESCE(MAX(seq), 0) + 1 FROM runs")
            next_seq = cur.fetchone()[0]
            cur = conn.execute(
                "INSERT OR IGNORE INTO runs "
                "(run_id, label, fingerprint, version, git_sha, n_events, "
                " event_digest, summary, metrics, seq, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_id,
                    record.label,
                    record.fingerprint,
                    record.version,
                    record.git_sha,
                    record.n_events,
                    record.event_digest,
                    _canonical_json(record.summary),
                    _canonical_json(record.metrics),
                    next_seq,
                    time.time(),
                ),
            )
            return cur.rowcount == 1

    def record_explore(self, record: ExploreRecord) -> bool:
        """Persist one explore snapshot; True if newly inserted."""
        with self._connect() as conn:
            cur = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM explore_sessions"
            )
            next_seq = cur.fetchone()[0]
            cur = conn.execute(
                "INSERT OR IGNORE INTO explore_sessions "
                "(session_id, fingerprint, version, git_sha, n_configs, "
                " rung, rungs, frontier, cursor, seq, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.session_id,
                    record.fingerprint,
                    record.version,
                    record.git_sha,
                    record.n_configs,
                    record.rung,
                    _canonical_json(record.rungs),
                    _canonical_json(record.frontier),
                    None
                    if record.cursor is None
                    else _canonical_json(record.cursor),
                    next_seq,
                    time.time(),
                ),
            )
            return cur.rowcount == 1

    def record_run(self, run: "ExperimentRun", fingerprint: str) -> RunRecord:
        """Build and persist the record for one run; returns it."""
        record = build_run_record(run, fingerprint, git_sha=git_revision())
        self.record(record)
        return record

    def reset(self) -> int:
        """Delete every registered run; returns the number removed."""
        if not self.path.exists():
            return 0
        with self._connect() as conn:
            removed = conn.execute("DELETE FROM runs").rowcount
            conn.execute("DELETE FROM explore_sessions")
            conn.execute("DELETE FROM exec_journal")
            conn.execute("DELETE FROM exec_progress")
            return removed

    def gc(
        self,
        keep_last: int | None = None,
        older_than_days: float | None = None,
        label: str | None = None,
    ) -> int:
        """Trim the registry; returns the number of rows removed.

        ``keep_last`` keeps only the N most recent runs (per the
        insertion sequence; scoped to one label when ``label`` is
        given) and the N most recent explore sessions. ``older_than_days``
        removes rows whose ``created_at`` is older than the cutoff —
        rows from databases that predate the timestamp column have no
        ``created_at`` and are treated as arbitrarily old. The two
        criteria compose (a row is removed if either applies).
        """
        if keep_last is None and older_than_days is None:
            raise ConfigurationError(
                "gc needs keep_last and/or older_than_days"
            )
        if keep_last is not None and keep_last < 0:
            raise ConfigurationError(f"keep_last must be >= 0, got {keep_last}")
        if older_than_days is not None and older_than_days < 0:
            raise ConfigurationError(
                f"older_than_days must be >= 0, got {older_than_days}"
            )
        if not self.path.exists():
            return 0
        removed = 0
        with self._connect() as conn:
            if keep_last is not None:
                if label is not None:
                    removed += conn.execute(
                        "DELETE FROM runs WHERE label = ? AND seq NOT IN "
                        "(SELECT seq FROM runs WHERE label = ? "
                        "ORDER BY seq DESC LIMIT ?)",
                        (label, label, keep_last),
                    ).rowcount
                else:
                    removed += conn.execute(
                        "DELETE FROM runs WHERE seq NOT IN "
                        "(SELECT seq FROM runs ORDER BY seq DESC LIMIT ?)",
                        (keep_last,),
                    ).rowcount
                    removed += conn.execute(
                        "DELETE FROM explore_sessions WHERE seq NOT IN "
                        "(SELECT seq FROM explore_sessions "
                        "ORDER BY seq DESC LIMIT ?)",
                        (keep_last,),
                    ).rowcount
            if older_than_days is not None:
                cutoff = time.time() - older_than_days * 86400.0
                clause = "created_at IS NULL OR created_at < ?"
                if label is not None:
                    removed += conn.execute(
                        f"DELETE FROM runs WHERE label = ? AND ({clause})",
                        (label, cutoff),
                    ).rowcount
                else:
                    removed += conn.execute(
                        f"DELETE FROM runs WHERE {clause}", (cutoff,)
                    ).rowcount
                    removed += conn.execute(
                        f"DELETE FROM explore_sessions WHERE {clause}",
                        (cutoff,),
                    ).rowcount
        return removed

    # -- reads -----------------------------------------------------------
    @staticmethod
    def _from_row(row: tuple) -> RunRecord:
        (run_id, label, fingerprint, version, git_sha,
         n_events, event_digest, summary, metrics) = row[:9]
        return RunRecord(
            run_id=run_id,
            label=label,
            fingerprint=fingerprint,
            version=version,
            git_sha=git_sha,
            n_events=n_events,
            event_digest=event_digest,
            summary=json.loads(summary),
            metrics=json.loads(metrics),
            created_at=row[9] if len(row) > 9 else None,
        )

    _COLUMNS = (
        "run_id, label, fingerprint, version, git_sha, "
        "n_events, event_digest, summary, metrics"
    )

    # Read queries additionally surface created_at for display (e.g.
    # ``repro runs list``); content dumps never include it.
    _READ_COLUMNS = _COLUMNS + ", created_at"

    def list_runs(
        self,
        label: str | None = None,
        limit: int | None = None,
        fingerprint: str | None = None,
        offset: int = 0,
    ) -> list[RunRecord]:
        """Registered runs, most recent first.

        ``label`` and ``fingerprint`` filter to one experiment and/or
        one exact configuration (fingerprints distinguish e.g. full
        from quarter-capacity batteries of the same label).
        ``limit``/``offset`` paginate the filtered, newest-first list
        (sqlite requires a LIMIT for OFFSET, so a bare offset is
        applied against an unbounded limit).
        """
        query = f"SELECT {self._READ_COLUMNS} FROM runs"
        clauses: list[str] = []
        params: list[t.Any] = []
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        if fingerprint is not None:
            clauses.append("fingerprint = ?")
            params.append(fingerprint)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY seq DESC"
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        if limit is not None or offset:
            query += " LIMIT ?"
            params.append(-1 if limit is None else limit)
        if offset:
            query += " OFFSET ?"
            params.append(offset)
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return [self._from_row(r) for r in conn.execute(query, params)]

    def get(self, run_id_prefix: str) -> RunRecord:
        """The unique record whose id starts with ``run_id_prefix``.

        Raises
        ------
        ConfigurationError
            If no record matches, or the prefix is ambiguous.
        """
        if not run_id_prefix:
            raise ConfigurationError("empty run id")
        matches: list[RunRecord] = []
        if self.path.exists():
            with self._connect() as conn:
                rows = conn.execute(
                    f"SELECT {self._READ_COLUMNS} FROM runs "
                    "WHERE run_id LIKE ? ORDER BY seq",
                    (run_id_prefix.replace("%", "") + "%",),
                )
                matches = [self._from_row(r) for r in rows]
        if not matches:
            raise ConfigurationError(f"no registered run matches {run_id_prefix!r}")
        if len(matches) > 1:
            ids = ", ".join(m.run_id[:12] for m in matches)
            raise ConfigurationError(
                f"run id {run_id_prefix!r} is ambiguous ({ids})"
            )
        return matches[0]

    def latest(
        self, label: str, fingerprint: str | None = None
    ) -> RunRecord | None:
        """The most recently registered run of one experiment label."""
        runs = self.list_runs(label=label, limit=1, fingerprint=fingerprint)
        return runs[0] if runs else None

    def __len__(self) -> int:
        if not self.path.exists():
            return 0
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def list_explore_sessions(
        self,
        limit: int | None = None,
        session_id_prefix: str | None = None,
    ) -> list[ExploreRecord]:
        """Registered explore snapshots, most recent first."""
        if not self.path.exists():
            return []
        query = (
            "SELECT session_id, fingerprint, version, git_sha, n_configs, "
            "rung, rungs, frontier, cursor FROM explore_sessions"
        )
        params: list[t.Any] = []
        if session_id_prefix is not None:
            query += " WHERE session_id LIKE ?"
            params.append(session_id_prefix.replace("%", "") + "%")
        query += " ORDER BY seq DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        with self._connect() as conn:
            return [
                ExploreRecord(
                    session_id=row[0],
                    fingerprint=row[1],
                    version=row[2],
                    git_sha=row[3],
                    n_configs=row[4],
                    rung=row[5],
                    rungs=json.loads(row[6]),
                    frontier=json.loads(row[7]),
                    cursor=None if row[8] is None else json.loads(row[8]),
                )
                for row in conn.execute(query, params)
            ]

    def latest_explore_cursor(
        self, fingerprint: str | None = None, session_id_prefix: str | None = None
    ) -> ExploreRecord | None:
        """The newest cursor-bearing snapshot to resume from.

        Filter by exploration ``fingerprint`` (the usual ``--resume
        latest`` path: same CLI arguments, newest cursor wins) or by a
        ``session_id`` prefix (resume one specific snapshot). Snapshots
        without cursors — pre-cursor databases — never match.
        """
        if not self.path.exists():
            return None
        for record in self.list_explore_sessions(
            session_id_prefix=session_id_prefix
        ):
            if record.cursor is None:
                continue
            if fingerprint is not None and record.fingerprint != fingerprint:
                continue
            return record
        return None

    def dump_rows(self) -> list[tuple]:
        """Every content column of every row, in insertion order.

        The registry's determinism tests compare these dumps across
        execution modes; any wall-clock or scheduling leak into the
        stored content would show up here. ``created_at`` is excluded
        by construction — it is housekeeping for ``gc``, not content.
        """
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return list(
                conn.execute(
                    f"SELECT {self._COLUMNS}, seq FROM runs ORDER BY seq"
                )
            )

    def dump_explore_rows(self) -> list[tuple]:
        """Explore-session content columns, in insertion order.

        The cursor is content (promoted indices and scores, no wall
        clocks), so it belongs to the determinism comparison surface —
        a resumed session must reproduce it byte-for-byte.
        """
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return list(
                conn.execute(
                    "SELECT session_id, fingerprint, version, git_sha, "
                    "n_configs, rung, rungs, frontier, cursor, seq "
                    "FROM explore_sessions ORDER BY seq"
                )
            )

    # -- flight-recorder journal / progress ------------------------------
    def record_journal(self, records: t.Sequence[t.Any]) -> int:
        """Persist flight-recorder item records; returns rows inserted.

        ``records`` are :class:`~repro.obs.flight.ItemRecord` objects
        (anything with ``.journal_id`` and ``.as_dict()`` works).
        Insertion is keyed by the content-derived ``journal_id``, so
        replaying the same sweep — serial, parallel, or from cache —
        deduplicates instead of appending, exactly like run records.
        """
        if not records:
            return 0
        inserted = 0
        now = time.time()
        with self._connect() as conn:
            cur = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM exec_journal"
            )
            next_seq = cur.fetchone()[0]
            for record in records:
                row = record.as_dict()
                cur = conn.execute(
                    "INSERT OR IGNORE INTO exec_journal "
                    "(journal_id, map_id, map_ordinal, idx, key, outcome, "
                    " stage, error, status, worker, attempts, wall_s, "
                    " cpu_s, peak_rss_kb, seq, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        row["journal_id"],
                        row["map_id"],
                        row["map_ordinal"],
                        row["index"],
                        row["key"],
                        row["outcome"],
                        row["stage"],
                        row["error"],
                        row["status"],
                        row["worker"],
                        row["attempts"],
                        row["wall_s"],
                        row["cpu_s"],
                        row["peak_rss_kb"],
                        next_seq,
                        now,
                    ),
                )
                if cur.rowcount == 1:
                    inserted += 1
                    next_seq += 1
        return inserted

    def list_journal(
        self,
        map_id: str | None = None,
        outcome: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, t.Any]]:
        """Journal rows as dicts, ordered by (map_ordinal, idx)."""
        if not self.path.exists():
            return []
        query = (
            "SELECT journal_id, map_id, map_ordinal, idx, key, outcome, "
            "stage, error, status, worker, attempts, wall_s, cpu_s, "
            "peak_rss_kb FROM exec_journal"
        )
        clauses: list[str] = []
        params: list[t.Any] = []
        if map_id is not None:
            clauses.append("map_id = ?")
            params.append(map_id)
        if outcome is not None:
            clauses.append("outcome = ?")
            params.append(outcome)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY map_ordinal, idx"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        names = (
            "journal_id", "map_id", "map_ordinal", "index", "key",
            "outcome", "stage", "error", "status", "worker", "attempts",
            "wall_s", "cpu_s", "peak_rss_kb",
        )
        with self._connect() as conn:
            return [
                dict(zip(names, row)) for row in conn.execute(query, params)
            ]

    def dump_journal_rows(self) -> list[tuple]:
        """Journal *content* columns in deterministic (ordinal, idx)
        order — the across-modes comparison surface; telemetry columns
        (status/worker/timings) are honest per-execution measurements
        and are excluded, like ``created_at`` on runs."""
        if not self.path.exists():
            return []
        with self._connect() as conn:
            return list(
                conn.execute(
                    "SELECT journal_id, map_id, map_ordinal, idx, key, "
                    "outcome, stage, error FROM exec_journal "
                    "ORDER BY map_ordinal, idx"
                )
            )

    def record_progress(self, label: str, snapshot: t.Mapping[str, t.Any]) -> None:
        """Upsert the live fleet snapshot for one fleet label."""
        with self._connect() as conn:
            conn.execute(
                "REPLACE INTO exec_progress (label, snapshot, updated_at) "
                "VALUES (?, ?, ?)",
                (label, _canonical_json(dict(snapshot)), time.time()),
            )

    def latest_progress(
        self, label: str | None = None
    ) -> tuple[dict[str, t.Any], float] | None:
        """The most recent fleet snapshot (payload, updated_at epoch).

        With no ``label``, the most recently updated fleet wins — the
        common ``repro top`` case of one sweep running at a time.
        """
        if not self.path.exists():
            return None
        query = "SELECT snapshot, updated_at FROM exec_progress"
        params: list[t.Any] = []
        if label is not None:
            query += " WHERE label = ?"
            params.append(label)
        query += " ORDER BY updated_at DESC LIMIT 1"
        with self._connect() as conn:
            row = conn.execute(query, params).fetchone()
        if row is None:
            return None
        return json.loads(row[0]), row[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunRegistry {self.path} n={len(self)}>"


# ---------------------------------------------------------------------------
# regression diffing
# ---------------------------------------------------------------------------

def _scalar_items(record: RunRecord) -> dict[str, float]:
    """Flat name -> numeric value view of a record (summary + metrics)."""
    out: dict[str, float] = {}
    for name, value in record.summary.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[name] = float(value)
    for counter in record.metrics.get("counters", []):
        out[f"counter:{counter['name']}"] = float(counter["value"])
    for gauge in record.metrics.get("gauges", []):
        if gauge["value"] is not None:
            out[f"gauge:{gauge['name']}"] = float(gauge["value"])
    return out


def diff_records(
    a: RunRecord,
    b: RunRecord,
    threshold_pct: float = 0.0,
) -> list[dict[str, t.Any]]:
    """Per-metric deltas between two registered runs.

    Returns one row per scalar present in either record, with absolute
    and relative deltas; rows whose relative change exceeds
    ``threshold_pct`` are flagged ``regression`` (direction-agnostic —
    the caller decides which direction is bad per metric). Rows are
    name-sorted for deterministic rendering.
    """
    va, vb = _scalar_items(a), _scalar_items(b)
    rows: list[dict[str, t.Any]] = []
    for name in sorted(set(va) | set(vb)):
        x, y = va.get(name), vb.get(name)
        delta = None if x is None or y is None else y - x
        rel = None
        if delta is not None and x not in (None, 0.0):
            rel = 100.0 * delta / abs(x)
        rows.append(
            {
                "metric": name,
                "a": x,
                "b": y,
                "delta": delta,
                "rel_pct": None if rel is None else round(rel, 3),
                "regression": (
                    rel is not None
                    and threshold_pct > 0
                    and abs(rel) > threshold_pct
                ),
            }
        )
    return rows
