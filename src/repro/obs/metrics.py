"""Counters, gauges, and histograms with deterministic merging.

The registry absorbs the loose per-run counters the pipeline result
used to surface ad hoc (link transactions, stalls, level switches,
kernel events) and adds latency histograms populated by span-based
profiling hooks. Two properties drive the design:

- **Deterministic aggregation.** A sweep fans runs over worker
  processes; each run carries its own registry home and the caller
  merges them. Merging is commutative and associative for counters and
  histograms (sums of counts), and iteration is always name-sorted, so
  ``--jobs 4`` aggregates to exactly what ``--jobs 1`` produces.
- **Bounded memory.** Histograms never store observations — they keep
  count/total/min/max plus power-of-two bucket counts, so a histogram
  of a million frame latencies costs a few dozen integers.
"""

from __future__ import annotations

import math
import typing as t

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer/float count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Absorb another shard of the same counter (sum)."""
        self.value += other.value

    def as_dict(self) -> dict[str, t.Any]:
        return {"type": "counter", "name": self.name, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-written value (merge keeps the maximum, which is
    order-independent — the deterministic choice for shard merging)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float | None = None):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is None:
            return
        if self.value is None or other.value > self.value:
            self.value = other.value

    def as_dict(self) -> dict[str, t.Any]:
        return {"type": "gauge", "name": self.name, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    A sample ``v`` lands in bucket ``i`` where ``2**(i-1) * base < v <=
    2**i * base`` (bucket index 0 holds ``v <= base``; zeros and
    negatives count in a dedicated underflow bucket). ``base`` defaults
    to one microsecond, which gives ~40 buckets across nine decades of
    latency — plenty of resolution for percentile estimates while
    keeping the histogram a handful of integers.
    """

    __slots__ = ("name", "base", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, base: float = 1e-6):
        if base <= 0:
            raise ValueError(f"histogram {name}: base must be positive")
        self.name = name
        self.base = base
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index -> sample count; index -1 is the underflow
        #: bucket (v <= 0).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def _bucket_index(self, value: float) -> int:
        if value <= 0:
            return -1
        return max(0, math.ceil(math.log2(value / self.base)))

    def bucket_upper_bound(self, index: int) -> float:
        """Inclusive upper edge of bucket ``index`` (0.0 for underflow)."""
        return 0.0 if index < 0 else self.base * (2.0 ** index)

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of all samples, or None if empty."""
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> float | None:
        """Upper bound of the bucket containing the q-th percentile.

        ``q`` is in [0, 100]. The estimate is conservative (an upper
        bound within one bucket width, i.e. a factor of two).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return None
        target = math.ceil(self.count * q / 100.0) or 1
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return self.bucket_upper_bound(index)
        return self.bucket_upper_bound(max(self.buckets))  # pragma: no cover

    def merge(self, other: "Histogram") -> None:
        """Absorb another shard (bucket-wise sum; exact, order-free)."""
        if other.base != self.base:
            raise ValueError(
                f"cannot merge histograms with different bases: "
                f"{self.base} vs {other.base}"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def summary(self) -> dict[str, t.Any]:
        """Headline statistics for tables and reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "base": self.base,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            # JSON keys are strings; sort for stable output.
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean}>"


class MetricsRegistry:
    """A name-keyed collection of counters, gauges, and histograms.

    Instruments are created on first touch (``registry.counter("x")``)
    and iterated in sorted-name order so every rendering — tables, JSON
    exports, merge results — is deterministic.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ----------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created at zero on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created unset on first use)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, base: float = 1e-6) -> Histogram:
        """The histogram named ``name`` (created empty on first use)."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, base=base)
        return h

    # -- views -----------------------------------------------------------
    @property
    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    @property
    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    @property
    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def top_histograms(self, n: int = 5) -> list[Histogram]:
        """The ``n`` histograms with the most samples (ties by name)."""
        ranked = sorted(self.histograms, key=lambda h: (-h.count, h.name))
        return ranked[:n]

    def as_rows(self) -> list[dict[str, t.Any]]:
        """Flat table rows (counters and gauges first, then histograms)."""
        rows: list[dict[str, t.Any]] = []
        for c in self.counters:
            rows.append({"metric": c.name, "kind": "counter", "value": c.value})
        for g in self.gauges:
            rows.append({"metric": g.name, "kind": "gauge", "value": g.value})
        for h in self.histograms:
            rows.append(
                {
                    "metric": h.name,
                    "kind": "histogram",
                    "value": (
                        f"n={h.count} mean={h.mean:.4g} "
                        f"p50={h.percentile(50):.4g} p99={h.percentile(99):.4g}"
                    ),
                }
            )
        return rows

    # -- merging ----------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Absorb ``other``'s shards into this registry; returns self.

        Commutative up to gauge semantics (max) and exact for counters
        and histograms, so per-worker registries aggregate identically
        in any order.
        """
        for name in sorted(other._counters):
            self.counter(name).merge(other._counters[name])
        for name in sorted(other._gauges):
            self.gauge(name).merge(other._gauges[name])
        for name in sorted(other._histograms):
            shard = other._histograms[name]
            self.histogram(name, base=shard.base).merge(shard)
        return self

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload; :meth:`from_dict` restores it bit-identically."""
        return {
            "counters": [c.as_dict() for c in self.counters],
            "gauges": [g.as_dict() for g in self.gauges],
            "histograms": [h.as_dict() for h in self.histograms],
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "MetricsRegistry":
        registry = cls()
        for cd in payload.get("counters", []):
            registry.counter(cd["name"]).value = cd["value"]
        for gd in payload.get("gauges", []):
            registry.gauge(gd["name"]).value = gd["value"]
        for hd in payload.get("histograms", []):
            h = registry.histogram(hd["name"], base=hd.get("base", 1e-6))
            h.count = hd["count"]
            h.total = hd["total"]
            h.min = hd["min"]
            h.max = hd["max"]
            h.buckets = {int(k): v for k, v in hd.get("buckets", {}).items()}
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
