"""Zero-dependency live progress plane for the flight recorder.

Renders :class:`~repro.obs.flight.FleetSnapshot` data three ways:

- :func:`render_snapshot` — a plain-text dashboard block (per-phase
  bars, per-worker lanes, cache-hit rate, ETA) used by both the live
  view and ``repro top``.
- :class:`ProgressRenderer` — the ``progress=`` callback for a
  :class:`~repro.obs.flight.FlightRecorder`. On a TTY it redraws the
  dashboard in place (ANSI cursor movement only — no curses, no
  third-party bars); on a pipe it degrades to occasional plain lines,
  so ``repro explore --progress 2> log`` stays readable.
- :func:`fleet_timeline_svg` — the journal's full (telemetry) rows as
  an inline-SVG gantt of per-worker item spans for the HTML report's
  fleet timeline track.

Everything here is presentation over data the recorder already
maintains; nothing feeds back into execution or into any determinism
surface.
"""

from __future__ import annotations

import html
import sys
import time
import typing as t

from repro.obs.flight import FleetSnapshot

__all__ = [
    "format_eta",
    "render_bar",
    "render_snapshot",
    "ProgressRenderer",
    "fleet_timeline_svg",
]


def format_eta(seconds: float | None) -> str:
    """``1h02m``/``3m20s``/``12s`` rendering of a seconds estimate."""
    if seconds is None:
        return "--"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


def render_bar(done: int, total: int | None, width: int = 28) -> str:
    """``[#######....] 12/40`` — a fixed-width unicode-free bar."""
    if not total:
        return f"[{'?' * width}] {done}/?"
    frac = min(1.0, done / total)
    filled = int(round(frac * width))
    return f"[{'#' * filled}{'.' * (width - filled)}] {done}/{total}"


def _snap(snapshot: "FleetSnapshot | t.Mapping[str, t.Any]") -> FleetSnapshot:
    if isinstance(snapshot, FleetSnapshot):
        return snapshot
    return FleetSnapshot.from_dict(snapshot)


def render_snapshot(
    snapshot: "FleetSnapshot | t.Mapping[str, t.Any]",
    width: int = 78,
    max_workers: int = 12,
) -> str:
    """The dashboard block: header, phase bars, worker lanes, alerts."""
    s = _snap(snapshot)
    lines: list[str] = []
    state = "done" if s.finished else "running"
    rate = f"{s.rate_per_s:.1f}/s" if s.rate_per_s else "--"
    lines.append(
        f"fleet {s.label}  [{state}]  jobs={s.jobs}  "
        f"elapsed={format_eta(s.elapsed_s)}  eta={format_eta(s.eta_s)}  "
        f"rate={rate}"
    )
    hit_pct = 100.0 * s.cache_hit_rate
    lines.append(
        f"items {s.done}/{s.total}  executed={s.executed}  "
        f"cache-hits={s.cache_hits} ({hit_pct:.0f}%)  failed={s.failed}"
    )
    for phase in s.phases:
        mark = "x" if phase.get("finished") else ">"
        bar = render_bar(phase.get("done", 0), phase.get("total"))
        extra = ""
        if phase.get("failed"):
            extra = f"  !{phase['failed']} failed"
        note = phase.get("note")
        if note:
            extra += f"  ({note})"
        lines.append(f" {mark} {phase.get('name', '?'):<10} {bar}{extra}")
    workers = [w for w in s.workers if w.get("name") != "cache"]
    for w in workers[:max_workers]:
        name = w.get("name", "?")
        cur = w.get("current_index")
        busy = w.get("busy_s") or 0.0
        doing = f"item {cur}" if cur is not None else "idle"
        # A finished fleet has no stalls — idle-after-finish is normal
        # (and older persisted snapshots may have baked the flag in).
        stalled = (" [STALLED]"
                   if name in s.stalled_workers and not s.finished else "")
        lines.append(
            f"   {name:<8} {w.get('items_done', 0):>5} done  "
            f"{busy:>7.1f}s busy  {doing}{stalled}"
        )
    if len(workers) > max_workers:
        lines.append(f"   ... and {len(workers) - max_workers} more worker(s)")
    if s.stragglers and not s.finished:
        lines.append(
            f" ! stragglers (past p95 bound): items "
            + ", ".join(str(i) for i in s.stragglers)
        )
    return "\n".join(line[:width] for line in lines)


class ProgressRenderer:
    """A ``progress=`` callback that draws the live dashboard.

    Parameters
    ----------
    stream:
        Output stream (default stderr, keeping stdout machine-clean).
    mode:
        ``"auto"`` picks TTY in-place redraw when the stream is a
        terminal, plain throttled lines otherwise; ``"tty"``/``"plain"``
        force either.
    plain_interval_s:
        Minimum spacing between plain-mode lines.
    """

    def __init__(
        self,
        stream: t.TextIO | None = None,
        mode: str = "auto",
        plain_interval_s: float = 2.0,
    ):
        self.stream = stream if stream is not None else sys.stderr
        if mode == "auto":
            mode = "tty" if getattr(self.stream, "isatty", lambda: False)() else "plain"
        if mode not in ("tty", "plain"):
            raise ValueError(f"mode must be auto/tty/plain, got {mode!r}")
        self.mode = mode
        self.plain_interval_s = plain_interval_s
        self._drawn_lines = 0
        self._last_plain = -1e9
        self._last_done = -1
        self._done_printed = False

    def __call__(self, snapshot: "FleetSnapshot | t.Mapping[str, t.Any]") -> None:
        s = _snap(snapshot)
        if self.mode == "tty":
            self._draw_tty(s)
        else:
            self._draw_plain(s)

    def _draw_tty(self, s: FleetSnapshot) -> None:
        block = render_snapshot(s)
        if self._drawn_lines:
            # move up and clear the previous block, then redraw
            self.stream.write(f"\x1b[{self._drawn_lines}A")
        out = []
        for line in block.split("\n"):
            out.append("\x1b[2K" + line)
        self.stream.write("\n".join(out) + "\n")
        self._drawn_lines = block.count("\n") + 1
        self.stream.flush()

    def _draw_plain(self, s: FleetSnapshot) -> None:
        now = time.monotonic()
        changed = s.done != self._last_done
        due = now - self._last_plain >= self.plain_interval_s
        if s.finished:
            if self._done_printed:
                return
            self._done_printed = True
        elif not (changed and due):
            return
        self._last_plain = now
        self._last_done = s.done
        phase = s.phases[-1] if s.phases else {}
        self.stream.write(
            f"progress {s.label}: {s.done}/{s.total} "
            f"({phase.get('name', '?')} {phase.get('done', 0)}/"
            f"{phase.get('total') or '?'}) eta={format_eta(s.eta_s)} "
            f"hits={s.cache_hits} failed={s.failed}"
            + (" [done]" if s.finished else "")
            + "\n"
        )
        self.stream.flush()

    def close(self) -> None:
        """End the in-place block so subsequent output starts clean."""
        if self.mode == "tty" and self._drawn_lines:
            self.stream.write("\n")
            self.stream.flush()
            self._drawn_lines = 0


# ---------------------------------------------------------------------------
# HTML report integration: the fleet timeline track
# ---------------------------------------------------------------------------

_LANE_H = 18
_LANE_GAP = 4
_SVG_W = 900
_LABEL_W = 90


def fleet_timeline_svg(
    journal_rows: t.Sequence[t.Mapping[str, t.Any]],
    max_items: int = 2000,
) -> str:
    """Inline-SVG gantt of executed item spans, one lane per worker.

    Takes *full* journal rows (with the telemetry half — ``worker``,
    ``t_started``, ``t_finished``); content-only rows carry no timing
    and render as an empty note. Cache hits are zero-width and drawn as
    ticks. Rows beyond ``max_items`` (ordered as given) are dropped
    with a note — the report is a document, not a database.
    """
    timed = [
        r for r in journal_rows
        if r.get("t_finished") is not None and r.get("worker") is not None
    ]
    if not timed:
        return "<p>journal rows carry no telemetry (content-only export).</p>"
    dropped = max(0, len(timed) - max_items)
    timed = timed[:max_items]
    t_end = max(float(r["t_finished"]) for r in timed) or 1.0
    workers = sorted({str(r["worker"]) for r in timed})
    lane_of = {w: k for k, w in enumerate(workers)}
    height = len(workers) * (_LANE_H + _LANE_GAP) + 24
    scale = (_SVG_W - _LABEL_W - 10) / t_end
    parts = [
        f'<svg viewBox="0 0 {_SVG_W} {height}" '
        f'style="width:100%;max-width:{_SVG_W}px;font:10px monospace">'
    ]
    for w in workers:
        y = lane_of[w] * (_LANE_H + _LANE_GAP)
        parts.append(
            f'<text x="0" y="{y + 13}" fill="#555">{html.escape(w)}</text>'
        )
        parts.append(
            f'<rect x="{_LABEL_W}" y="{y}" width="{_SVG_W - _LABEL_W - 10}" '
            f'height="{_LANE_H}" fill="#f4f4f4"/>'
        )
    for r in timed:
        y = lane_of[str(r["worker"])] * (_LANE_H + _LANE_GAP)
        x0 = _LABEL_W + float(r.get("t_started") or 0.0) * scale
        x1 = _LABEL_W + float(r["t_finished"]) * scale
        wpx = max(1.0, x1 - x0)
        if r.get("outcome") == "failed":
            color = "#c0392b"
        elif r.get("status") == "cache_hit":
            color = "#8e44ad"
        else:
            color = "#2980b9"
        title = (
            f"item {r.get('index')} [{r.get('status')}] "
            f"wall={float(r.get('wall_s') or 0.0):.3f}s "
            f"cpu={float(r.get('cpu_s') or 0.0):.3f}s "
            f"rss={r.get('peak_rss_kb')}kb attempts={r.get('attempts')}"
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 2}" width="{wpx:.1f}" '
            f'height="{_LANE_H - 4}" fill="{color}" fill-opacity="0.8">'
            f"<title>{html.escape(title)}</title></rect>"
        )
    axis_y = len(workers) * (_LANE_H + _LANE_GAP) + 12
    parts.append(
        f'<text x="{_LABEL_W}" y="{axis_y}" fill="#555">0s</text>'
        f'<text x="{_SVG_W - 60}" y="{axis_y}" fill="#555">{t_end:.2f}s</text>'
    )
    parts.append("</svg>")
    if dropped:
        parts.append(f"<p>(+{dropped} item(s) beyond the {max_items} drawn)</p>")
    return "".join(parts)
