"""The energy-attribution ledger: who drew every mAh, and on what.

The paper's evidence is energy accounting — Fig. 6's per-block
compute/communication profile, Fig. 7's power breakdown, Fig. 10's
lifetime ordering — but those figures were built from *static* profiles.
:class:`EnergyLedger` rebuilds them from the simulation itself: every
piecewise-constant battery segment a node closes is attributed to a
``(node, mode, bucket)`` triple, where the bucket names the ATR block
during computation (``"fft"``, ``"target_detection"``, ...), ``"link"``
during communication, and ``"idle"`` otherwise.

Conservation invariant
----------------------
The ledger accumulates exactly the ``current_ma * dt_s`` products the
battery integrates in :meth:`KiBaM.draw
<repro.hw.battery.kibam.KiBaM.draw>`, so for every node::

    sum over buckets of charge_mas  ==  battery delivered mAs

up to float summation order. Fast-forward jumps advance the ledger
analytically with the same per-cycle products that
:meth:`~repro.hw.battery.kibam.KiBaM.advance_cycles` applies, so the
invariant holds in ``mode="fast"`` too; :func:`verify_conservation`
checks it to a relative tolerance (default 1e-6).

Everything here is derived from simulated time and deterministic
arithmetic, so ledgers are byte-identical across serial, parallel, and
cache-replayed executions, and :meth:`EnergyLedger.as_dict` /
:meth:`EnergyLedger.from_dict` round-trip bit-exactly through the run
payload like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import typing as t

__all__ = [
    "EnergyLedger",
    "LedgerRow",
    "ConservationCheck",
    "verify_conservation",
]

#: Default relative tolerance for the conservation invariant: the ledger
#: and the battery sum the same products in different orders.
CONSERVATION_REL_TOL = 1e-6


@dataclasses.dataclass(frozen=True)
class LedgerRow:
    """One attribution bucket of the ledger.

    Attributes
    ----------
    node:
        Node name the charge was drawn from.
    mode:
        Power mode string (``"computation"``, ``"communication"``, ...).
    bucket:
        Activity attribution: an ATR block name during computation,
        ``"link"`` during communication, ``"idle"`` otherwise.
    charge_mas:
        Charge drawn in milliamp-seconds.
    time_s:
        Simulated seconds spent in this bucket.
    """

    node: str
    mode: str
    bucket: str
    charge_mas: float
    time_s: float

    @property
    def charge_mah(self) -> float:
        """Charge in milliamp-hours (the paper's battery unit)."""
        return self.charge_mas / 3600.0

    @property
    def mean_current_ma(self) -> float:
        """Average draw while in this bucket."""
        return self.charge_mas / self.time_s if self.time_s > 0 else 0.0

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "node": self.node,
            "mode": self.mode,
            "bucket": self.bucket,
            "charge_mas": self.charge_mas,
            "time_s": self.time_s,
        }


@dataclasses.dataclass(frozen=True)
class ConservationCheck:
    """Conservation verdict for one node's battery.

    ``ok`` means the ledger total matches the battery's delivered
    charge within the relative tolerance.
    """

    node: str
    ledger_mah: float
    delivered_mah: float
    rel_error: float
    ok: bool

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "node": self.node,
            "ledger_mah": self.ledger_mah,
            "delivered_mah": self.delivered_mah,
            "rel_error": self.rel_error,
            "ok": self.ok,
        }


class EnergyLedger:
    """Accumulates per-``(node, mode, bucket)`` charge and time.

    The hot path is :meth:`add` — one call per closed battery segment —
    so the ledger is two flat dicts keyed by the attribution triple,
    nothing more. Reading (:meth:`rows`, :meth:`node_totals_mah`,
    serialization) sorts on demand.
    """

    __slots__ = ("_charge_mas", "_time_s")

    def __init__(self) -> None:
        self._charge_mas: dict[tuple[str, str, str], float] = {}
        self._time_s: dict[tuple[str, str, str], float] = {}

    def __len__(self) -> int:
        return len(self._charge_mas)

    def add(self, node: str, mode: str, bucket: str, current_ma: float, dt_s: float) -> None:
        """Attribute one piecewise-constant segment (exact simulation)."""
        key = (node, mode, bucket)
        charge = self._charge_mas
        charge[key] = charge.get(key, 0.0) + current_ma * dt_s
        times = self._time_s
        times[key] = times.get(key, 0.0) + dt_s

    def add_charge(self, node: str, mode: str, bucket: str, charge_mas: float, time_s: float) -> None:
        """Attribute pre-integrated charge (fast-forward epoch jumps)."""
        key = (node, mode, bucket)
        charge = self._charge_mas
        charge[key] = charge.get(key, 0.0) + charge_mas
        times = self._time_s
        times[key] = times.get(key, 0.0) + time_s

    # -- queries ---------------------------------------------------------
    def rows(self) -> list[LedgerRow]:
        """All buckets, sorted by (node, mode, bucket) — deterministic."""
        return [
            LedgerRow(*key, self._charge_mas[key], self._time_s[key])
            for key in sorted(self._charge_mas)
        ]

    def node_totals_mah(self) -> dict[str, float]:
        """node -> total attributed charge in mAh (sorted keys).

        Summed in sorted-key order so the float result is identical no
        matter what order the buckets were filled in.
        """
        totals: dict[str, float] = {}
        for key in sorted(self._charge_mas):
            node = key[0]
            totals[node] = totals.get(node, 0.0) + self._charge_mas[key]
        return {node: mas / 3600.0 for node, mas in totals.items()}

    def mode_totals_mah(self, node: str | None = None) -> dict[str, float]:
        """mode -> attributed mAh, optionally restricted to one node."""
        totals: dict[str, float] = {}
        for key in sorted(self._charge_mas):
            if node is not None and key[0] != node:
                continue
            mode = key[1]
            totals[mode] = totals.get(mode, 0.0) + self._charge_mas[key]
        return {mode: mas / 3600.0 for mode, mas in totals.items()}

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Fold another ledger's buckets into this one (returns self)."""
        for key, mas in other._charge_mas.items():
            self._charge_mas[key] = self._charge_mas.get(key, 0.0) + mas
            self._time_s[key] = self._time_s.get(key, 0.0) + other._time_s[key]
        return self

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload; :meth:`from_dict` restores it bit-identically.

        Entries are flat ``[node, mode, bucket, charge_mas, time_s]``
        lists in sorted key order, so two ledgers with equal contents
        serialize to equal canonical JSON regardless of insertion order.
        """
        return {
            "entries": [
                [key[0], key[1], key[2], self._charge_mas[key], self._time_s[key]]
                for key in sorted(self._charge_mas)
            ]
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "EnergyLedger":
        ledger = cls()
        for node, mode, bucket, charge_mas, time_s in payload.get("entries", []):
            ledger.add_charge(node, mode, bucket, charge_mas, time_s)
        return ledger

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(self._charge_mas.values()) / 3600.0
        return f"<EnergyLedger buckets={len(self)} total={total:.3f}mAh>"


def verify_conservation(
    ledger: EnergyLedger,
    delivered_mah: t.Mapping[str, float],
    rel_tol: float = CONSERVATION_REL_TOL,
) -> list[ConservationCheck]:
    """Prove the ledger against each battery's delivered total.

    Parameters
    ----------
    ledger:
        The run's energy ledger.
    delivered_mah:
        node -> delivered mAh, from :attr:`PipelineResult.delivered_mah
        <repro.pipeline.engine.PipelineResult.delivered_mah>` (or the
        batteries directly).
    rel_tol:
        Maximum allowed ``|ledger - delivered| / max(delivered, 1e-12)``.

    Returns one :class:`ConservationCheck` per node in ``delivered_mah``
    (sorted by name). A node with no attributed charge and no delivered
    charge passes trivially.
    """
    totals = ledger.node_totals_mah()
    checks: list[ConservationCheck] = []
    for node in sorted(delivered_mah):
        delivered = delivered_mah[node]
        attributed = totals.get(node, 0.0)
        scale = max(abs(delivered), 1e-12)
        rel = abs(attributed - delivered) / scale
        checks.append(
            ConservationCheck(
                node=node,
                ledger_mah=attributed,
                delivered_mah=delivered,
                rel_error=rel,
                ok=rel <= rel_tol,
            )
        )
    return checks
