"""Causal frame tracing: span trees and critical paths from event logs.

Every frame's journey through the pipeline is recorded as correlated
telemetry — ``frame.emit`` when the host hands it to stage 0,
``link.xfer`` for each serial transaction it rides (tagged with the
frame id), ``proc.block`` for each ATR block computed on it, and
``frame.result`` when the host sink accepts it. This module rebuilds
that journey *offline* from any :class:`~repro.obs.events.EventLog`:

- :func:`build_frame_trace` reconstructs one frame's ordered span list
  and extracts its **critical path** — a contiguous cover of
  ``[emitted, completed]`` where every second is attributed to
  ``compute``, ``comm-wire``, ``comm-startup`` (the PPP transaction
  setup cost), or ``queue-wait`` (the frame exists but nothing is
  moving or computing it).
- :func:`explain_frame` is the machine-readable form — what
  ``repro explain frame`` and the deadline-miss postmortems in
  ``repro check`` print.
- :func:`collapsed_stacks` emits Brendan-Gregg collapsed-stack lines
  (``frame;actor;span microseconds``) loadable by any flamegraph tool.

Frames skipped by fast-forward epoch coalescing have no per-event
records; tracing one raises :class:`~repro.errors.ReproError` naming
the ids that *are* traceable.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ReproError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventLog, TelemetryEvent

__all__ = [
    "FrameSpan",
    "FrameTrace",
    "build_frame_trace",
    "collapsed_stacks",
    "explain_frame",
    "frame_ids",
    "late_frame_ids",
    "render_frame_tree",
]

#: Critical-path categories, in display order.
CATEGORIES = ("compute", "comm-wire", "comm-startup", "queue-wait")


@dataclasses.dataclass(frozen=True)
class FrameSpan:
    """One attributed interval of a frame's journey.

    Attributes
    ----------
    name:
        Human label: a block name for compute, ``"a->b"`` for
        communication, ``"wait"`` for queue-wait gaps.
    actor:
        Node (or sender) the interval belongs to.
    category:
        One of :data:`CATEGORIES`.
    t0, t1:
        Simulated interval bounds.
    """

    name: str
    actor: str
    category: str
    t0: float
    t1: float

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "name": self.name,
            "actor": self.actor,
            "category": self.category,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration_s,
        }


@dataclasses.dataclass(frozen=True)
class FrameTrace:
    """One frame's reconstructed causal record.

    ``spans`` are the observed intervals (compute and communication,
    with each transaction split into its startup and wire portions);
    ``critical_path`` additionally fills every gap with a
    ``queue-wait`` span, so it covers ``[emitted_s, completed_s]``
    contiguously and its durations sum to ``latency_s``.
    """

    frame: int
    emitted_s: float
    completed_s: float | None
    latency_s: float | None
    late: bool
    spans: tuple[FrameSpan, ...]
    critical_path: tuple[FrameSpan, ...]

    def breakdown(self) -> dict[str, float]:
        """category -> critical-path seconds (all categories present)."""
        totals = {category: 0.0 for category in CATEGORIES}
        for span in self.critical_path:
            totals[span.category] += span.duration_s
        return totals

    def compute_blocks(self) -> dict[str, float]:
        """block name -> compute seconds (Fig. 6's PROC column)."""
        blocks: dict[str, float] = {}
        for span in self.spans:
            if span.category == "compute":
                blocks[span.name] = blocks.get(span.name, 0.0) + span.duration_s
        return blocks

    def transfers(self) -> dict[str, float]:
        """``"a->b"`` -> total transaction seconds (startup + wire)."""
        hops: dict[str, float] = {}
        for span in self.spans:
            if span.category in ("comm-wire", "comm-startup"):
                hops[span.name] = hops.get(span.name, 0.0) + span.duration_s
        return hops

    def as_dict(self) -> dict[str, t.Any]:
        """The machine-readable explanation (JSON-stable)."""
        return {
            "frame": self.frame,
            "emitted_s": self.emitted_s,
            "completed_s": self.completed_s,
            "latency_s": self.latency_s,
            "late": self.late,
            "breakdown_s": self.breakdown(),
            "compute_blocks_s": dict(sorted(self.compute_blocks().items())),
            "transfers_s": dict(sorted(self.transfers().items())),
            "critical_path": [span.as_dict() for span in self.critical_path],
        }


def frame_ids(log: "EventLog") -> list[int]:
    """All frame ids with per-event records, ascending.

    Fast-forward runs only carry events for the exactly-simulated
    frames (ramp-up, transition, and endgame); ids inside coalesced
    epochs are absent by construction.
    """
    ids: set[int] = set()
    for event in log.records:
        frame = event.data.get("frame")
        if frame is not None:
            ids.add(frame)
    return sorted(ids)


def late_frame_ids(log: "EventLog") -> list[int]:
    """Frames whose ``frame.result`` was flagged late, ascending."""
    return sorted(
        event.data["frame"]
        for event in log.records
        if event.kind == "frame.result" and event.data.get("late")
    )


def _frame_events(log: "EventLog", frame_id: int) -> list["TelemetryEvent"]:
    return [e for e in log.records if e.data.get("frame") == frame_id]


def build_frame_trace(log: "EventLog", frame_id: int) -> FrameTrace:
    """Reconstruct one frame's span list and critical path.

    Raises :class:`~repro.errors.ReproError` when the log has no events
    for the frame (wrong id, or the frame was coalesced away by
    fast-forward).
    """
    events = _frame_events(log, frame_id)
    if not events:
        available = frame_ids(log)
        hint = (
            f"traceable ids span {available[0]}..{available[-1]}"
            if available
            else "the log has no frame-correlated events at all"
        )
        raise ReproError(
            f"no events for frame {frame_id}: {hint} (frames coalesced by "
            "fast-forward epochs have no per-event records; rerun with "
            "mode='exact' or a bounded --frames)"
        )

    result = next((e for e in events if e.kind == "frame.result"), None)
    completed_s = result.ts if result is not None else None
    latency_s = result.data.get("latency_s") if result is not None else None
    late = bool(result.data.get("late")) if result is not None else False

    spans: list[FrameSpan] = []
    for event in events:
        if event.kind == "link.xfer":
            duration = event.data["duration_s"]
            startup = min(event.data.get("startup_s", 0.0), duration)
            name = f"{event.actor}->{event.data.get('to', '?')}"
            if startup > 0:
                spans.append(
                    FrameSpan(name, event.actor, "comm-startup", event.ts, event.ts + startup)
                )
            spans.append(
                FrameSpan(name, event.actor, "comm-wire", event.ts + startup, event.ts + duration)
            )
        elif event.kind == "proc.block":
            duration = event.data["duration_s"]
            spans.append(
                FrameSpan(
                    event.data.get("block", "proc"),
                    event.actor,
                    "compute",
                    event.ts - duration,
                    event.ts,
                )
            )
    spans.sort(key=lambda s: (s.t0, s.t1))

    # Emission time: frame.result carries the end-to-end latency, so
    # the true emission instant is recoverable even though frame.emit
    # fires only after the input transfer completes.
    if completed_s is not None and latency_s is not None:
        emitted_s = completed_s - latency_s
    elif spans:
        emitted_s = spans[0].t0
    else:
        emitted_s = events[0].ts

    # Critical path: walk the (linear) span chain and fill every gap
    # with queue-wait. A frame is in exactly one place at a time, so
    # overlaps only arise from float rounding; they are clipped.
    path: list[FrameSpan] = []
    cursor = emitted_s
    for span in spans:
        if span.t0 > cursor + 1e-12:
            path.append(FrameSpan("wait", span.actor, "queue-wait", cursor, span.t0))
            cursor = span.t0
        if span.t1 <= cursor:
            continue
        if span.t0 < cursor:
            span = dataclasses.replace(span, t0=cursor)
        path.append(span)
        cursor = span.t1
    if completed_s is not None and completed_s > cursor + 1e-12:
        path.append(FrameSpan("wait", "", "queue-wait", cursor, completed_s))

    return FrameTrace(
        frame=frame_id,
        emitted_s=emitted_s,
        completed_s=completed_s,
        latency_s=latency_s,
        late=late,
        spans=tuple(spans),
        critical_path=tuple(path),
    )


def explain_frame(log: "EventLog", frame_id: int) -> dict[str, t.Any]:
    """Machine-readable explanation of one frame (see ``repro explain``)."""
    return build_frame_trace(log, frame_id).as_dict()


def collapsed_stacks(traces: t.Iterable[FrameTrace]) -> list[str]:
    """Collapsed-stack (flamegraph) lines for a set of frame traces.

    One line per critical-path span:
    ``frame<ID>;<actor>;<category>;<name> <microseconds>`` — the format
    ``flamegraph.pl`` and speedscope ingest directly. Zero-duration
    spans are skipped (collapsed-stack counts must be positive).
    """
    lines: list[str] = []
    for trace in traces:
        for span in trace.critical_path:
            us = round(span.duration_s * 1e6)
            if us <= 0:
                continue
            actor = span.actor or "host"
            lines.append(
                f"frame{trace.frame};{actor};{span.category};{span.name} {us}"
            )
    return lines


def render_frame_tree(trace: FrameTrace) -> str:
    """ASCII span tree of one frame's critical path (CLI display)."""
    header = f"frame {trace.frame}"
    if trace.latency_s is not None:
        verdict = "LATE" if trace.late else "on time"
        header += f": latency {trace.latency_s:.3f}s ({verdict})"
    else:
        header += ": incomplete (no frame.result recorded)"
    lines = [header]
    path = trace.critical_path
    for i, span in enumerate(path):
        branch = "└─" if i == len(path) - 1 else "├─"
        where = f" on {span.actor}" if span.actor else ""
        lines.append(
            f"{branch} [{span.t0:11.3f} → {span.t1:11.3f}] "
            f"{span.category:<12} {span.name}{where} ({span.duration_s:.3f}s)"
        )
    totals = trace.breakdown()
    parts = ", ".join(f"{k} {v:.3f}s" for k, v in totals.items() if v > 0)
    lines.append(f"   breakdown: {parts}")
    return "\n".join(lines)
