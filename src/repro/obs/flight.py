"""The fleet flight recorder: durable item-level execution state.

The host hub is the one vantage point that can see the whole
distributed system, and :class:`~repro.exec.SweepExecutor` is our hub:
every sweep, suite, and exploration fans its work items through it.
This module records what the fleet actually did, at item granularity:

- **Execution journal** — every work item leaves one durable
  :class:`ItemRecord` tracing its lifecycle
  (``queued -> dispatched -> started -> finished | failed | cache_hit``)
  with wall-clock, CPU time, peak RSS, worker id, and attempt count.
  Records split into *content* (identity: map id, index, cache
  fingerprint, outcome — byte-identical across serial, ``--jobs N``,
  and cache-replay executions, just like run ids) and *telemetry*
  (timings, worker, RSS — honest measurements that naturally differ
  per execution). Canonical journal exports and registry content dumps
  carry only the content half.
- **Heartbeats** — parallel workers publish periodic beats over a
  side channel the parent drains while waiting on results; the serial
  path self-beats between items. From beats plus completions the
  recorder maintains per-worker lanes (items done, busy seconds,
  current item, beat age).
- **Online ETA** — a work-conserving estimate: mean completed-item
  cost times remaining items, divided by the active worker count,
  minus credit for elapsed in-flight work.
- **Straggler / stall detection** — in-flight items running longer
  than ``stall_factor`` x the p95 completed cost are flagged
  stragglers; workers silent past ``stall_after_s`` are flagged
  stalled. Both surface as :class:`~repro.obs.checks.Verdict` rows so
  ``repro check --fleet`` can assert fleet health.

With no recorder attached the executor takes its original code path —
one attribute check per ``map`` call — so the established <5%
null-sink overhead budget is untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import queue as queue_mod
import time
import typing as t

from repro.obs.checks import Verdict

__all__ = [
    "ItemRecord",
    "WorkerLane",
    "PhaseState",
    "FleetSnapshot",
    "FlightRecorder",
    "journal_to_rows",
    "write_journal",
    "read_journal",
    "journal_verdicts",
]

#: Content columns of a journal record, in canonical order. Everything
#: else on :class:`ItemRecord` is telemetry (wall clocks, worker ids,
#: RSS) and is excluded from canonical exports and determinism dumps.
JOURNAL_CONTENT_FIELDS = (
    "journal_id",
    "map_id",
    "map_ordinal",
    "index",
    "key",
    "outcome",
    "stage",
    "error",
)


def _canonical_json(payload: t.Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class ItemRecord:
    """One work item's terminal journal record.

    Content attributes (identity; deterministic across execution
    modes):

    map_id / map_ordinal:
        Which ``map`` call this item belonged to: a digest over the
        work function's qualified name, the item count, and the cache
        keys, plus the call's ordinal within the recorder session.
    index:
        The item's position in the map's input order.
    key:
        The item's cache fingerprint (None for uncacheable items).
    outcome:
        ``"ok"`` or ``"failed"`` — a cache hit is an ``"ok"`` outcome,
        because the decoded result is exactly what execution would have
        produced; executed-vs-replayed is transport, not identity.
    stage:
        Where a failure happened (``"worker"`` or ``"callback"``),
        None for successes.
    error:
        ``"ExcType: message"`` for failures (deterministic — derived
        from the exception, never from scheduling), None otherwise.

    Telemetry attributes (honest measurements; excluded from content):

    status:
        ``"executed"`` or ``"cache_hit"``.
    worker:
        Lane name (``"serial"`` or ``"w<pid>"``).
    attempts:
        Execution attempts this run (0 for cache hits; >1 after
        retries following a worker death or raise).
    t_queued / t_started / t_finished:
        Wall-clock offsets from the map start, seconds.
    wall_s / cpu_s:
        Item wall time and worker CPU time (user+system) consumed.
    peak_rss_kb:
        The executing process's peak resident set (``ru_maxrss``) at
        item completion — a high-water mark, monotone per worker.
    """

    map_id: str
    map_ordinal: int
    index: int
    key: str | None
    outcome: str
    stage: str | None = None
    error: str | None = None
    status: str = "executed"
    worker: str | None = None
    attempts: int = 0
    t_queued: float = 0.0
    t_started: float = 0.0
    t_finished: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_kb: int = 0

    @property
    def journal_id(self) -> str:
        """Content digest — identical across serial/parallel/replay."""
        return hashlib.sha256(
            _canonical_json(
                [
                    self.map_id,
                    self.map_ordinal,
                    self.index,
                    self.key,
                    self.outcome,
                    self.stage,
                    self.error,
                ]
            ).encode("utf-8")
        ).hexdigest()

    def content(self) -> dict[str, t.Any]:
        """The deterministic half, keyed by :data:`JOURNAL_CONTENT_FIELDS`."""
        return {
            "journal_id": self.journal_id,
            "map_id": self.map_id,
            "map_ordinal": self.map_ordinal,
            "index": self.index,
            "key": self.key,
            "outcome": self.outcome,
            "stage": self.stage,
            "error": self.error,
        }

    def as_dict(self) -> dict[str, t.Any]:
        """Full record — content plus telemetry."""
        return {
            **self.content(),
            "status": self.status,
            "worker": self.worker,
            "attempts": self.attempts,
            "t_queued": self.t_queued,
            "t_started": self.t_started,
            "t_finished": self.t_finished,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "ItemRecord":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


@dataclasses.dataclass
class WorkerLane:
    """Live state of one executor lane (a worker process, or "serial")."""

    name: str
    items_done: int = 0
    busy_s: float = 0.0
    current_index: int | None = None
    current_since: float | None = None
    last_beat: float | None = None

    def as_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PhaseState:
    """One named phase of a sweep (an explore rung, a suite, a sweep)."""

    name: str
    total: int | None = None
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed: int = 0
    finished: bool = False
    note: str | None = None

    def as_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FleetSnapshot:
    """A point-in-time view of the fleet, renderable and persistable."""

    label: str
    elapsed_s: float
    total: int
    done: int
    executed: int
    cache_hits: int
    failed: int
    eta_s: float | None
    rate_per_s: float | None
    jobs: int
    finished: bool
    phases: list[dict[str, t.Any]]
    workers: list[dict[str, t.Any]]
    stragglers: list[int]
    stalled_workers: list[str]

    def as_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "FleetSnapshot":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.done if self.done else 0.0


class _MapContext:
    """Parent-side bookkeeping for one in-flight ``map`` call."""

    __slots__ = (
        "map_id", "ordinal", "n", "keys", "t0",
        "queued_at", "started_at", "worker_of", "attempts",
    )

    def __init__(self, map_id: str, ordinal: int, n: int,
                 keys: t.Sequence[str | None] | None, t0: float):
        self.map_id = map_id
        self.ordinal = ordinal
        self.n = n
        self.keys = keys
        self.t0 = t0
        self.queued_at: dict[int, float] = {}
        self.started_at: dict[int, float] = {}
        self.worker_of: dict[int, str] = {}
        self.attempts: dict[int, int] = {}

    def key_of(self, index: int) -> str | None:
        if self.keys is None:
            return None
        return self.keys[index]


class FlightRecorder:
    """Fleet-level flight recorder for :class:`~repro.exec.SweepExecutor`.

    Attach one via ``SweepExecutor(flight=recorder)`` (or the
    ``flight=`` parameter on :func:`~repro.core.experiments.run_paper_suite`,
    :func:`~repro.batch.sweep.batch_sweep`, and
    :func:`~repro.explore.explore`). The executor drives the
    ``begin_map`` / ``item_*`` / ``end_map`` lifecycle; the recorder
    accumulates journal records, worker lanes, and phase progress, and
    optionally streams both into a :class:`~repro.obs.store.RunRegistry`
    (``exec_journal`` + ``exec_progress`` tables) so a concurrent
    ``repro top`` can attach.

    Parameters
    ----------
    label:
        Fleet label (shown by ``repro top``; keys the progress row).
    registry:
        Optional :class:`~repro.obs.store.RunRegistry` to persist the
        journal and progress snapshots into.
    progress:
        Optional callback receiving a :class:`FleetSnapshot` on every
        (throttled) update — the live dashboard hook.
    heartbeat_interval_s:
        Worker beat period, and the parent's queue-drain cadence.
    stall_factor / stall_min_s:
        An in-flight item is a straggler once its elapsed time exceeds
        ``max(stall_min_s, stall_factor * p95(completed costs))``.
    stall_after_s:
        A worker is stalled once its last beat is older than this.
    """

    def __init__(
        self,
        label: str = "sweep",
        registry: t.Any = None,
        progress: t.Callable[[FleetSnapshot], None] | None = None,
        heartbeat_interval_s: float = 0.5,
        stall_factor: float = 4.0,
        stall_min_s: float = 2.0,
        stall_after_s: float = 10.0,
        progress_interval_s: float = 0.25,
    ):
        self.label = label
        self.registry = registry
        self.progress = progress
        self.heartbeat_interval_s = heartbeat_interval_s
        self.stall_factor = stall_factor
        self.stall_min_s = stall_min_s
        self.stall_after_s = stall_after_s
        self.progress_interval_s = progress_interval_s
        self.records: list[ItemRecord] = []
        self.phases: list[PhaseState] = []
        self.workers: dict[str, WorkerLane] = {}
        self.jobs = 1
        self._t0 = time.perf_counter()
        self._maps = 0
        self._durations: list[float] = []
        self._flushed = 0
        self._last_emit = -1.0
        self._manager: t.Any = None
        self._finished = False

    # -- clock ----------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- phases ---------------------------------------------------------
    def phase(self, name: str, total: int | None = None) -> PhaseState:
        """Open a named phase (an explore rung, a suite, a sweep leg)."""
        if self.phases and not self.phases[-1].finished:
            self.phases[-1].finished = True
        state = PhaseState(name=name, total=total)
        self.phases.append(state)
        self._durations = []
        self._emit(force=True)
        return state

    def finish_phase(self, note: str | None = None) -> None:
        """Close the current phase (optionally annotating it)."""
        if self.phases and not self.phases[-1].finished:
            self.phases[-1].finished = True
            if note is not None:
                self.phases[-1].note = note
            self._emit(force=True)

    def _current_phase(self) -> PhaseState:
        if not self.phases or self.phases[-1].finished:
            self.phase("sweep")
        return self.phases[-1]

    # -- executor lifecycle hooks ---------------------------------------
    def begin_map(
        self,
        fn: t.Callable,
        n: int,
        keys: t.Sequence[str | None] | None,
        jobs: int = 1,
    ) -> _MapContext:
        """Open one ``map`` call; returns the context the hooks take."""
        self.jobs = max(self.jobs, jobs)
        name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
        map_id = hashlib.sha256(
            _canonical_json([name, n, list(keys) if keys is not None else None,
                             self._maps]).encode("utf-8")
        ).hexdigest()
        ctx = _MapContext(map_id, self._maps, n, keys, self._now())
        self._maps += 1
        phase = self._current_phase()
        if phase.total is None:
            phase.total = n
        return ctx

    def item_queued(self, ctx: _MapContext, index: int) -> None:
        ctx.queued_at[index] = self._now()

    def item_cache_hit(self, ctx: _MapContext, index: int) -> None:
        now = self._now()
        self.records.append(
            ItemRecord(
                map_id=ctx.map_id,
                map_ordinal=ctx.ordinal,
                index=index,
                key=ctx.key_of(index),
                outcome="ok",
                status="cache_hit",
                worker="cache",
                attempts=0,
                t_queued=ctx.queued_at.get(index, now),
                t_started=now,
                t_finished=now,
            )
        )
        phase = self._current_phase()
        phase.done += 1
        phase.cache_hits += 1
        self._emit()

    def item_dispatched(self, ctx: _MapContext, index: int, attempt: int) -> None:
        ctx.attempts[index] = attempt
        ctx.queued_at.setdefault(index, self._now())

    def item_started(self, ctx: _MapContext, index: int, worker: str,
                     attempt: int) -> None:
        now = self._now()
        ctx.started_at[index] = now
        ctx.worker_of[index] = worker
        ctx.attempts[index] = attempt
        lane = self._lane(worker)
        lane.current_index = index
        lane.current_since = now
        lane.last_beat = now
        self._emit()

    def item_finished(self, ctx: _MapContext, index: int,
                      measure: t.Mapping[str, t.Any]) -> None:
        self._terminal(ctx, index, "ok", None, None, measure)

    def item_failed(self, ctx: _MapContext, index: int, stage: str,
                    error: str, measure: t.Mapping[str, t.Any] | None = None) -> None:
        self._terminal(ctx, index, "failed", stage, error, measure or {})

    def _terminal(self, ctx: _MapContext, index: int, outcome: str,
                  stage: str | None, error: str | None,
                  measure: t.Mapping[str, t.Any]) -> None:
        now = self._now()
        worker = str(measure.get("worker") or ctx.worker_of.get(index, "serial"))
        wall_s = float(measure.get("wall_s", 0.0))
        started = ctx.started_at.get(index, now - wall_s)
        self.records.append(
            ItemRecord(
                map_id=ctx.map_id,
                map_ordinal=ctx.ordinal,
                index=index,
                key=ctx.key_of(index),
                outcome=outcome,
                stage=stage,
                error=error,
                status="executed",
                worker=worker,
                attempts=int(ctx.attempts.get(index, 1)),
                t_queued=ctx.queued_at.get(index, started),
                t_started=started,
                t_finished=now,
                wall_s=wall_s,
                cpu_s=float(measure.get("cpu_s", 0.0)),
                peak_rss_kb=int(measure.get("peak_rss_kb", 0)),
            )
        )
        if stage == "callback":
            # the item already settled (and was tallied) at execution
            # time; a callback failure only amends its outcome
            phase = self._current_phase()
            phase.failed += 1
            self._emit(force=True)
            return
        lane = self._lane(worker)
        lane.items_done += 1
        lane.busy_s += wall_s
        if lane.current_index == index:
            lane.current_index = None
            lane.current_since = None
        lane.last_beat = now
        phase = self._current_phase()
        phase.done += 1
        if outcome == "failed":
            phase.failed += 1
        else:
            phase.executed += 1
        if wall_s > 0.0:
            self._durations.append(wall_s)
        self._emit()

    def end_map(self, ctx: _MapContext) -> None:
        """Close one ``map`` call: flush the journal and progress."""
        self.flush()
        self._emit(force=True)

    def finish(self) -> None:
        """Mark the whole fleet done and flush everything."""
        self._finished = True
        self.finish_phase()
        self.flush()
        self._emit(force=True)

    def close(self) -> None:
        """Flush and release the heartbeat transport."""
        if not self._finished:
            self.finish()
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # pragma: no cover - teardown race
                pass
            self._manager = None

    # -- heartbeats ------------------------------------------------------
    def heartbeat_queue(self) -> t.Any:
        """A picklable queue parallel workers beat into (lazy Manager)."""
        if self._manager is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
        return self._manager.Queue()

    def drain_heartbeats(self, ctx: _MapContext, beats: t.Any) -> set[int]:
        """Fold any queued worker beats into the lane states.

        Returns the indices whose ``start`` beats were observed, so the
        executor can tell items that actually began running from items
        that only sat queued on a pool that later broke.
        """
        started: set[int] = set()
        if beats is None:
            return started
        now = self._now()
        while True:
            try:
                msg = beats.get_nowait()
            except (queue_mod.Empty, EOFError, OSError):
                break
            worker = str(msg.get("worker", "?"))
            lane = self._lane(worker)
            lane.last_beat = now
            index = msg.get("index")
            phase_tag = msg.get("phase")
            if phase_tag == "start" and index is not None:
                started.add(int(index))
                ctx.started_at.setdefault(int(index), now)
                ctx.worker_of[int(index)] = worker
                lane.current_index = int(index)
                lane.current_since = now
            elif phase_tag == "done":
                if lane.current_index == index:
                    lane.current_index = None
                    lane.current_since = None
            elif index is not None and lane.current_index is None:
                lane.current_index = int(index)
                lane.current_since = now
        self._emit()
        return started

    def self_beat(self, worker: str = "serial",
                  index: int | None = None) -> None:
        """Serial-path heartbeat (the parent is the only worker)."""
        lane = self._lane(worker)
        lane.last_beat = self._now()
        if index is not None:
            lane.current_index = index
            lane.current_since = self._now()
        self._emit()

    def _lane(self, name: str) -> WorkerLane:
        lane = self.workers.get(name)
        if lane is None:
            lane = self.workers[name] = WorkerLane(name=name)
        return lane

    # -- estimation ------------------------------------------------------
    def _p95(self) -> float | None:
        if len(self._durations) < 4:
            return None
        ordered = sorted(self._durations)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def eta_s(self) -> float | None:
        """Work-conserving remaining-time estimate for the current phase.

        ``remaining_items * mean(completed costs) / active_workers``,
        minus credit for elapsed in-flight time. None until at least
        one item cost is known or the phase total is unknown.
        """
        # Read-only: never _current_phase() here — snapshots taken after
        # the last phase closed must not spawn a fresh empty one.
        phase = (self.phases[-1]
                 if self.phases and not self.phases[-1].finished else None)
        if phase is None or phase.total is None or not self._durations:
            return None
        remaining = max(0, phase.total - phase.done)
        if remaining == 0:
            return 0.0
        mean = sum(self._durations) / len(self._durations)
        active = max(
            1,
            sum(1 for w in self.workers.values() if w.name != "cache"),
        )
        now = self._now()
        inflight_credit = sum(
            min(mean, now - w.current_since)
            for w in self.workers.values()
            if w.current_since is not None
        )
        return max(0.0, (remaining * mean - inflight_credit) / active)

    def stragglers(self) -> list[int]:
        """Item indices in flight past the p95-based straggler bound."""
        if self._finished:  # a finished fleet has nothing in flight
            return []
        p95 = self._p95()
        if p95 is None:
            return []
        bound = max(self.stall_min_s, self.stall_factor * p95)
        now = self._now()
        return sorted(
            w.current_index
            for w in self.workers.values()
            if w.current_index is not None
            and w.current_since is not None
            and now - w.current_since > bound
        )

    def stalled_workers(self) -> list[str]:
        """Workers whose last beat is older than ``stall_after_s``."""
        if self._finished:  # idle-after-finish is not a stall
            return []
        now = self._now()
        return sorted(
            name
            for name, w in self.workers.items()
            if name != "cache"
            and w.last_beat is not None
            and now - w.last_beat > self.stall_after_s
        )

    # -- snapshots / persistence ----------------------------------------
    def snapshot(self) -> FleetSnapshot:
        """The current fleet state, ready to render or persist."""
        done = sum(p.done for p in self.phases)
        executed = sum(p.executed for p in self.phases)
        cache_hits = sum(p.cache_hits for p in self.phases)
        failed = sum(p.failed for p in self.phases)
        total = sum(p.total or 0 for p in self.phases)
        elapsed = self._now()
        rate = done / elapsed if elapsed > 0 and done else None
        return FleetSnapshot(
            label=self.label,
            elapsed_s=elapsed,
            total=total,
            done=done,
            executed=executed,
            cache_hits=cache_hits,
            failed=failed,
            eta_s=None if self._finished else self.eta_s(),
            rate_per_s=rate,
            jobs=self.jobs,
            finished=self._finished,
            phases=[p.as_dict() for p in self.phases],
            workers=[
                self.workers[name].as_dict() for name in sorted(self.workers)
            ],
            stragglers=self.stragglers(),
            stalled_workers=self.stalled_workers(),
        )

    def flush(self) -> int:
        """Persist new journal records + a progress snapshot; returns
        the number of journal rows newly written."""
        if self.registry is None:
            return 0
        fresh = self.records[self._flushed:]
        written = 0
        if fresh:
            written = self.registry.record_journal(fresh)
        self._flushed = len(self.records)
        self.registry.record_progress(self.label, self.snapshot().as_dict())
        return written

    def _emit(self, force: bool = False) -> None:
        now = self._now()
        if not force and now - self._last_emit < self.progress_interval_s:
            return
        self._last_emit = now
        if self.registry is not None and (
            force or len(self.records) > self._flushed
        ):
            self.flush()
        if self.progress is not None:
            self.progress(self.snapshot())

    # -- verdicts --------------------------------------------------------
    def verdicts(self) -> list[Verdict]:
        """Fleet-health verdicts over the live recorder state."""
        rows = [r.as_dict() for r in self.records]
        out = journal_verdicts(
            rows, stall_factor=self.stall_factor, stall_min_s=self.stall_min_s
        )
        stalled = self.stalled_workers()
        out.append(
            Verdict(
                monitor="fleet-worker-stall",
                ok=not stalled,
                detail=(
                    f"workers silent past {self.stall_after_s:g}s: "
                    + ", ".join(stalled)
                    if stalled
                    else f"all {len(self.workers)} lane(s) beating within "
                    f"{self.stall_after_s:g}s"
                ),
                events_seen=len(self.workers),
                violations=len(stalled),
            )
        )
        return out

    # -- export ----------------------------------------------------------
    def export_journal(self, path: str | pathlib.Path,
                       full: bool = False) -> pathlib.Path:
        """Write the journal as JSONL (canonical content by default)."""
        return write_journal(path, self.records, full=full)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {self.label!r} records={len(self.records)} "
            f"workers={len(self.workers)} phases={len(self.phases)}>"
        )


# ---------------------------------------------------------------------------
# journal export / verdicts (work on records or plain dict rows)
# ---------------------------------------------------------------------------

def _row(record: "ItemRecord | t.Mapping[str, t.Any]",
         full: bool) -> dict[str, t.Any]:
    if isinstance(record, ItemRecord):
        return record.as_dict() if full else record.content()
    if full:
        return dict(record)
    return {name: record.get(name) for name in JOURNAL_CONTENT_FIELDS}


def journal_to_rows(
    records: t.Sequence["ItemRecord | t.Mapping[str, t.Any]"],
    full: bool = False,
) -> list[dict[str, t.Any]]:
    """Journal records as flat rows, sorted by (map_ordinal, index).

    The default (content-only) rows are byte-stable across serial,
    parallel, and cache-replayed executions; ``full=True`` adds the
    telemetry half (timings, worker ids, RSS), which is honest
    measurement and therefore differs per execution.
    """
    rows = [_row(r, full) for r in records]
    rows.sort(key=lambda r: (r.get("map_ordinal", 0), r.get("index", 0)))
    return rows


def write_journal(
    path: str | pathlib.Path,
    records: t.Sequence["ItemRecord | t.Mapping[str, t.Any]"],
    full: bool = False,
) -> pathlib.Path:
    """Write journal rows as JSONL (one canonical object per line)."""
    path = pathlib.Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        for row in journal_to_rows(records, full=full):
            fh.write(_canonical_json(row))
            fh.write("\n")
    return path


def read_journal(path: str | pathlib.Path) -> list[dict[str, t.Any]]:
    """Reload a :func:`write_journal` file into plain row dicts."""
    rows: list[dict[str, t.Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def journal_verdicts(
    rows: t.Sequence[t.Mapping[str, t.Any]],
    stall_factor: float = 4.0,
    stall_min_s: float = 2.0,
) -> list[Verdict]:
    """Fleet-health verdicts over journal rows (live or registry-read).

    - ``fleet-failures`` — fails if any item's outcome is ``failed``.
    - ``fleet-retries`` — always ok; reports items that needed more
      than one attempt (a dying worker that recovered on retry).
    - ``fleet-stragglers`` — fails if any executed item's wall time
      exceeds ``max(stall_min_s, stall_factor * p95)`` of the executed
      cost distribution (needs >= 8 samples to be meaningful; fewer
      yields a vacuous pass).
    """
    failed = [r for r in rows if r.get("outcome") == "failed"]
    out = [
        Verdict(
            monitor="fleet-failures",
            ok=not failed,
            detail=(
                f"{len(failed)} of {len(rows)} item(s) failed "
                f"(first: map {str(failed[0].get('map_id'))[:8]} "
                f"item {failed[0].get('index')}: {failed[0].get('error')})"
                if failed
                else f"all {len(rows)} item(s) completed"
            ),
            events_seen=len(rows),
            violations=len(failed),
        )
    ]
    retried = [r for r in rows if (r.get("attempts") or 0) > 1]
    out.append(
        Verdict(
            monitor="fleet-retries",
            ok=True,
            detail=(
                f"{len(retried)} item(s) needed retries "
                f"(max attempts {max(r['attempts'] for r in retried)})"
                if retried
                else "no item needed a retry"
            ),
            events_seen=len(rows),
        )
    )
    walls = sorted(
        float(r["wall_s"])
        for r in rows
        if r.get("status") == "executed" and float(r.get("wall_s") or 0.0) > 0.0
    )
    if len(walls) >= 8:
        p95 = walls[min(len(walls) - 1, int(0.95 * len(walls)))]
        bound = max(stall_min_s, stall_factor * p95)
        slow = [
            r for r in rows
            if r.get("status") == "executed"
            and float(r.get("wall_s") or 0.0) > bound
        ]
        out.append(
            Verdict(
                monitor="fleet-stragglers",
                ok=not slow,
                detail=(
                    f"{len(slow)} item(s) ran past {bound:.2f}s "
                    f"({stall_factor:g} x p95 {p95:.2f}s)"
                    if slow
                    else f"no item past {bound:.2f}s "
                    f"({stall_factor:g} x p95 {p95:.2f}s)"
                ),
                events_seen=len(walls),
                violations=len(slow),
            )
        )
    else:
        out.append(
            Verdict(
                monitor="fleet-stragglers",
                ok=True,
                detail=f"too few executed items ({len(walls)}) to "
                       "estimate a p95 cost",
                events_seen=len(walls),
            )
        )
    return out
