"""Unified telemetry: events, metrics, spans, and exporters.

``repro.obs`` is the zero-dependency observability layer the paper's
methodology implies: Itsy's on-board power monitor and the Figs. 2/3/9
timing diagrams are instrumentation, and this package turns our
reproduction's equivalents into structured, machine-readable data.

- :class:`~repro.obs.events.EventLog` — the structured event bus every
  layer publishes typed records into (behind a near-zero-cost null
  sink).
- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  mergeable histograms with deterministic aggregation across worker
  processes.
- :class:`~repro.obs.spans.Span` — ``with obs.span("fft", frame=i):``
  wall-clock profiling feeding per-block latency histograms.
- :mod:`~repro.obs.export` — JSONL (bit-identical round trips), CSV
  rows, and Chrome trace-event output loadable in ``chrome://tracing``
  / Perfetto.

:class:`Telemetry` bundles the three collectors behind one handle that
serializes to JSON (so sweep results carry telemetry through worker
pickling and the content-addressed cache) — which is what lifts the
PR-1 restriction that traced runs could be neither cached nor
parallelized.
"""

from __future__ import annotations

import typing as t

from repro.obs.checks import (
    ChargeMonotonicMonitor,
    FrameDeadlineMonitor,
    InvariantMonitor,
    LinkBusyFractionMonitor,
    RecoveryLatencyMonitor,
    RotationBalanceMonitor,
    Verdict,
    check_paper_ordering,
    paper_monitors,
    replay,
)
from repro.obs.benchdiff import (
    baseline_from_history,
    bench_diff,
    metric_direction,
    render_diff,
)
from repro.obs.causal import (
    FrameTrace,
    FrameSpan,
    build_frame_trace,
    collapsed_stacks,
    explain_frame,
    frame_ids,
    late_frame_ids,
)
from repro.obs.energy import (
    ConservationCheck,
    EnergyLedger,
    LedgerRow,
    verify_conservation,
)
from repro.obs.events import NULL_LOG, EventLog, TelemetryEvent
from repro.obs.flight import (
    FleetSnapshot,
    FlightRecorder,
    ItemRecord,
    journal_to_rows,
    journal_verdicts,
    read_journal,
    write_journal,
)
from repro.obs.export import (
    TelemetryBundle,
    chrome_trace,
    ledger_to_rows,
    metrics_to_rows,
    read_jsonl,
    segments_to_rows,
    write_chrome_trace,
    write_collapsed_stacks,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import (
    ProgressRenderer,
    fleet_timeline_svg,
    format_eta,
    render_snapshot,
)
from repro.obs.report import build_html_report, write_html_report
from repro.obs.spans import Span, SpanRecord
from repro.obs.store import RunRecord, RunRegistry, build_run_record, diff_records

__all__ = [
    "Telemetry",
    "RunRecord",
    "RunRegistry",
    "build_run_record",
    "diff_records",
    "Verdict",
    "InvariantMonitor",
    "FrameDeadlineMonitor",
    "ChargeMonotonicMonitor",
    "LinkBusyFractionMonitor",
    "RotationBalanceMonitor",
    "RecoveryLatencyMonitor",
    "replay",
    "paper_monitors",
    "check_paper_ordering",
    "EventLog",
    "TelemetryEvent",
    "NULL_LOG",
    "EnergyLedger",
    "LedgerRow",
    "ConservationCheck",
    "verify_conservation",
    "FrameTrace",
    "FrameSpan",
    "build_frame_trace",
    "collapsed_stacks",
    "explain_frame",
    "frame_ids",
    "late_frame_ids",
    "FlightRecorder",
    "FleetSnapshot",
    "ItemRecord",
    "journal_to_rows",
    "journal_verdicts",
    "read_journal",
    "write_journal",
    "bench_diff",
    "baseline_from_history",
    "metric_direction",
    "render_diff",
    "ProgressRenderer",
    "render_snapshot",
    "format_eta",
    "fleet_timeline_svg",
    "build_html_report",
    "write_html_report",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanRecord",
    "TelemetryBundle",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "segments_to_rows",
    "metrics_to_rows",
    "ledger_to_rows",
    "write_collapsed_stacks",
]


class Telemetry:
    """One run's telemetry: event log + metrics registry + spans.

    Parameters
    ----------
    events:
        ``False`` builds the event log as a null sink (falsy, no-op
        emit) while metrics and spans stay live — the cheap mode for
        long sweeps that only need aggregates.
    max_events:
        Event-log memory bound (see :class:`~repro.obs.events.EventLog`).

    Notes
    -----
    The object is picklable and JSON round-trippable
    (:meth:`as_dict` / :meth:`from_dict`), so a worker process can
    build one, fill it during a simulation, and ship it home inside
    the run result — deterministically, because the event log holds
    simulated time only. Span records hold wall-clock measurements and
    are therefore excluded from determinism comparisons.
    """

    def __init__(self, events: bool = True, max_events: int = 1_000_000):
        self.events = EventLog(enabled=events, max_events=max_events)
        self.metrics = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        #: Energy-attribution ledger (see :mod:`repro.obs.energy`);
        #: filled by the pipeline engine when the event bus is live.
        #: The ``events=False`` null sink skips attribution too — per-
        #: segment bucket work would break the near-free contract the
        #: tier-1 overhead test enforces.
        self.energy = EnergyLedger()

    def emit(self, kind: str, ts: float, actor: str = "", **data: t.Any) -> None:
        """Publish one event to the bus (no-op when events are off)."""
        self.events.emit(kind, ts, actor, **data)

    def span(self, name: str, **tags: t.Any) -> Span:
        """A context manager timing one region into ``span.<name>``."""
        return Span(name, tags, self.spans, self.metrics)

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload; :meth:`from_dict` restores it bit-identically."""
        return {
            "events": self.events.as_dict(),
            "metrics": self.metrics.as_dict(),
            "spans": [span.as_dict() for span in self.spans],
            "energy": self.energy.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "Telemetry":
        obs = cls()
        obs.events = EventLog.from_dict(payload.get("events", {}))
        obs.metrics = MetricsRegistry.from_dict(payload.get("metrics", {}))
        obs.spans = [SpanRecord.from_dict(s) for s in payload.get("spans", [])]
        obs.energy = EnergyLedger.from_dict(payload.get("energy", {}))
        return obs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Telemetry events={len(self.events)} metrics={len(self.metrics)} "
            f"spans={len(self.spans)}>"
        )
