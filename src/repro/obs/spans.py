"""Span-based profiling: timed regions feeding latency histograms.

A span is a named wall-clock interval::

    with obs.span("fft", frame=i):
        pipeline.stage_fft(regions)

On exit the span's duration lands in the metrics histogram
``span.<name>`` and the completed :class:`SpanRecord` is appended to
the telemetry's span list, from which the Chrome-trace exporter renders
profiling slices. Spans measure *wall* time (they profile real code —
ATR blocks, sweep stages), which is why span records live apart from
the :class:`~repro.obs.events.EventLog`: event logs are sim-time only
and deterministic; spans are honest measurements and are not.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

__all__ = ["SpanRecord", "Span"]


@dataclasses.dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed timed region.

    Attributes
    ----------
    name:
        Span label (block or stage name: ``"fft"``, ``"sweep.map"``...).
    start_s, end_s:
        Wall-clock bounds from :func:`time.perf_counter` (a monotonic
        clock with an arbitrary epoch — durations are meaningful,
        absolute values only order spans within one process).
    tags:
        JSON-serializable annotations (frame id, item index...).
    """

    name: str
    start_s: float
    end_s: float
    tags: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict[str, t.Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            start_s=payload["start_s"],
            end_s=payload["end_s"],
            tags=dict(payload.get("tags", {})),
        )


class Span:
    """Context manager timing one region (see module docstring).

    Built by :meth:`repro.obs.Telemetry.span`; not usually constructed
    directly. A span with neither a sink list nor a registry (telemetry
    disabled) skips even the clock reads.
    """

    __slots__ = ("name", "tags", "_sink", "_metrics", "_start")

    def __init__(
        self,
        name: str,
        tags: dict[str, t.Any],
        sink: list[SpanRecord] | None,
        metrics: "MetricsRegistry | None",
    ):
        self.name = name
        self.tags = tags
        self._sink = sink
        self._metrics = metrics
        self._start = 0.0

    def __enter__(self) -> "Span":
        if self._sink is not None or self._metrics is not None:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: t.Any) -> None:
        if self._sink is None and self._metrics is None:
            return
        end = time.perf_counter()
        if self._sink is not None:
            self._sink.append(
                SpanRecord(
                    name=self.name, start_s=self._start, end_s=end, tags=self.tags
                )
            )
        if self._metrics is not None:
            self._metrics.histogram(f"span.{self.name}").observe(end - self._start)
