"""Perf-regression gates over ``BENCH_substrate.json``.

``benchmarks/bench_report.py`` measures the substrate and appends each
run to an embedded ``history`` list; until now that trajectory was an
artifact, not a contract. This module turns it into an enforced gate:
:func:`bench_diff` compares a bench document against a baseline (an
explicit file, or the document's own most recent history entry),
classifies every scalar by direction (throughput up = good, wall time
down = good), and flags per-section regressions beyond a threshold.
``repro bench diff`` renders the table and exits nonzero on any
regression, which is what CI runs.

Direction is inferred from metric naming conventions already used
throughout the bench document; metrics with no recognisable direction
(workload sizes, counts) are reported but never gate.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

__all__ = [
    "metric_direction",
    "metric_scale",
    "scalar_sections",
    "baseline_from_history",
    "bench_diff",
    "render_diff",
]

#: Top-level keys that are provenance, not benchmark sections.
_META_KEYS = {"version", "python", "machine", "history"}

# Naming conventions, checked in order: throughput-style suffixes win
# over the generic ``_s`` (``events_per_s`` is higher-better even
# though it ends in ``_s``).
_HIGHER_SUFFIXES = ("_per_s", "_per_sec", "_per_second")
_HIGHER_TOKENS = ("speedup",)
_LOWER_SUFFIXES = ("_overhead_pct", "_bytes", "_s")
_LOWER_TOKENS = ("rel_err", "wall_s")

# Metrics that are themselves percentages or tiny ratios: comparing
# them *relatively* is pathological near zero (an overhead moving
# -0.7% -> 11.6% reads as +1784%), so they diff by absolute delta
# instead — their tight absolute bounds live in the CI overhead gate.
_ABSOLUTE_SUFFIXES = ("_overhead_pct",)
_ABSOLUTE_TOKENS = ("rel_err",)

#: Wall-clock metrics below this many seconds are reported but never
#: gated: a 10ms micro-timing doubling is scheduler jitter, not a
#: regression the relative threshold can meaningfully judge.
_MIN_GATED_SECONDS = 0.1


def _below_timing_floor(name: str, baseline: float | None) -> bool:
    lowered = name.lower()
    if not lowered.endswith("_s") or lowered.endswith(_HIGHER_SUFFIXES):
        return False
    return baseline is not None and abs(baseline) < _MIN_GATED_SECONDS


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` = which way is better; None = no gate."""
    lowered = name.lower()
    if lowered.endswith(_HIGHER_SUFFIXES) or any(
        tok in lowered for tok in _HIGHER_TOKENS
    ):
        return "higher"
    if lowered.endswith(_LOWER_SUFFIXES) or any(
        tok in lowered for tok in _LOWER_TOKENS
    ):
        return "lower"
    return None


def metric_scale(name: str) -> str:
    """``"relative"`` (percent change gates) or ``"absolute"`` (delta
    gates, for metrics that are already percentages/ratios)."""
    lowered = name.lower()
    if lowered.endswith(_ABSOLUTE_SUFFIXES) or any(
        tok in lowered for tok in _ABSOLUTE_TOKENS
    ):
        return "absolute"
    return "relative"


def scalar_sections(bench: t.Mapping[str, t.Any]) -> dict[str, dict[str, float]]:
    """``{section: {metric: value}}`` over top-level dict sections.

    Only scalar (non-bool numeric) leaves count; nested dicts inside a
    section (per-jobs scaling tables, per-experiment breakdowns) are
    deliberately skipped — the gate compares headline numbers, not
    every sub-table.
    """
    out: dict[str, dict[str, float]] = {}
    for section, payload in bench.items():
        if section in _META_KEYS or not isinstance(payload, dict):
            continue
        scalars = {
            name: float(value)
            for name, value in payload.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if scalars:
            out[section] = scalars
    return out


def baseline_from_history(bench: t.Mapping[str, t.Any]) -> dict[str, t.Any] | None:
    """The most recent embedded history entry, or None if there is none."""
    history = bench.get("history")
    if isinstance(history, list) and history:
        last = history[-1]
        if isinstance(last, dict):
            return last
    return None


def bench_diff(
    current: t.Mapping[str, t.Any],
    baseline: t.Mapping[str, t.Any],
    threshold_pct: float = 50.0,
) -> list[dict[str, t.Any]]:
    """Per-metric comparison rows, name-sorted, regressions flagged.

    A row regresses when its metric has a known direction and moved the
    *bad* way by more than ``threshold_pct`` — percent of the baseline
    for relative-scale metrics, absolute delta for metrics that are
    already percentages/ratios (see :func:`metric_scale`).
    Improvements and directionless metrics never regress; metrics
    present on only one side are reported with ``None`` on the other
    and never regress (section churn is not a perf failure).
    """
    if threshold_pct <= 0:
        raise ValueError(f"threshold_pct must be > 0, got {threshold_pct}")
    cur, base = scalar_sections(current), scalar_sections(baseline)
    rows: list[dict[str, t.Any]] = []
    for section in sorted(set(cur) | set(base)):
        c_sec, b_sec = cur.get(section, {}), base.get(section, {})
        for metric in sorted(set(c_sec) | set(b_sec)):
            c, b = c_sec.get(metric), b_sec.get(metric)
            direction = metric_direction(metric)
            scale = metric_scale(metric)
            rel = None
            if c is not None and b is not None:
                if scale == "absolute":
                    rel = c - b
                elif b != 0.0:
                    rel = 100.0 * (c - b) / abs(b)
            regression = False
            if (rel is not None and direction is not None
                    and not _below_timing_floor(metric, b)):
                bad = -rel if direction == "higher" else rel
                regression = bad > threshold_pct
            rows.append(
                {
                    "section": section,
                    "metric": metric,
                    "baseline": b,
                    "current": c,
                    "rel_pct": None if rel is None else round(rel, 2),
                    "direction": direction,
                    "scale": scale,
                    "regression": regression,
                }
            )
    return rows


def render_diff(rows: t.Sequence[t.Mapping[str, t.Any]],
                only_directional: bool = True) -> str:
    """A fixed-width text table of diff rows (regressions marked)."""
    shown = [
        r for r in rows if not only_directional or r["direction"] is not None
    ]
    if not shown:
        return "no comparable metrics"
    lines = [
        f"{'section':<24} {'metric':<28} {'baseline':>12} "
        f"{'current':>12} {'delta':>10}  verdict"
    ]
    for r in shown:
        b = "--" if r["baseline"] is None else f"{r['baseline']:g}"
        c = "--" if r["current"] is None else f"{r['current']:g}"
        unit = "pt" if r.get("scale") == "absolute" else "%"
        rel = ("--" if r["rel_pct"] is None
               else f"{r['rel_pct']:+.1f}{unit}")
        if r["regression"]:
            verdict = "REGRESSION"
        elif r["direction"] is None:
            verdict = "info"
        else:
            verdict = "ok"
        lines.append(
            f"{r['section']:<24} {r['metric']:<28} {b:>12} {c:>12} "
            f"{rel:>10}  {verdict}"
        )
    n_reg = sum(1 for r in rows if r["regression"])
    lines.append(
        f"-- {len(shown)} metric(s) compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)


def load_bench(path: str | pathlib.Path) -> dict[str, t.Any]:
    """Read a bench JSON document."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
