"""Model calibration against the paper's measured lifetimes.

The paper measured battery lifetimes on real hardware; our substitute
is a KiBaM battery plus a per-mode current model. Five of the measured
lifetimes serve as calibration anchors:

=====  =============================================  ========
label  duty cycle                                      target
=====  =============================================  ========
0A     continuous compute at 206.4 MHz                 3.4 h
0B     continuous compute at 103.2 MHz                 12.9 h
1      1.1 s compute @206.4 + 1.2 s I/O @206.4         6.13 h
1A     1.1 s compute @206.4 + 1.2 s I/O @59            7.6 h
2      Node2 of scheme 1: 0.25 s I/O + 1.88 s compute
       @103.2 + idle                                   14.1 h
=====  =============================================  ========

Free parameters (5): KiBaM ``capacity``, ``c``, ``k'``; the power
model's ``io_activity``; and the idle curve's 206.4 MHz endpoint. The
quoted Fig. 7 anchors (comm 40/110 mA, comp 130 mA, idle 30 mA @59)
stay fixed. Everything else the paper reports — experiments (2A), (2B),
(2C), the partitioning table, frame counts — is *predicted*, not
fitted.

The stored constants (:data:`repro.hw.battery.kibam.PAPER_KIBAM_PARAMETERS`,
:data:`repro.hw.power.PAPER_POWER_MODEL`) are the output of
:func:`calibrate_battery`; the regression tests re-run the fit from the
stored point and assert it is stationary.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

import numpy as np
from scipy.optimize import least_squares

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.errors import CalibrationError
from repro.hw.battery.kibam import KiBaM, KiBaMParameters, lifetime_seconds
from repro.hw.dvs import SA1100_TABLE, DVSTable
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import CurrentCurve, PowerMode, PowerModel
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "DutySegment",
    "Anchor",
    "CalibrationResult",
    "paper_anchors",
    "predicted_lifetime_hours",
    "calibrate_battery",
]


@dataclasses.dataclass(frozen=True)
class DutySegment:
    """One piecewise-constant leg of a repeating duty cycle."""

    mode: PowerMode
    level_mhz: float
    duration_s: float


@dataclasses.dataclass(frozen=True)
class Anchor:
    """A measured lifetime the model must reproduce."""

    label: str
    segments: tuple[DutySegment, ...]
    target_hours: float


def paper_anchors(
    profile: TaskProfile = PAPER_PROFILE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
) -> tuple[Anchor, ...]:
    """Build the five calibration anchors from first principles.

    Durations come from the task profile and the link timing — the same
    inputs the execution engine uses — so the calibration and the
    simulator cannot drift apart.
    """
    proc = profile.total_seconds_at_max
    recv = timing.nominal_duration(profile.input_bytes)
    send = timing.nominal_duration(profile.output_bytes)
    C, I, P = PowerMode.COMPUTATION, PowerMode.COMMUNICATION, PowerMode.IDLE

    # Node2 of partitioning scheme 1: blocks 1..end at 103.2 MHz.
    n2_proc = profile.segment_seconds(1, len(profile.blocks)) * 206.4 / 103.2
    n2_recv = timing.nominal_duration(profile.blocks[0].output_bytes)
    n2_send = timing.nominal_duration(profile.output_bytes)
    n2_idle = deadline_s - n2_recv - n2_proc - n2_send
    if n2_idle < 0:
        raise CalibrationError("scheme-1 Node2 schedule does not fit the deadline")

    return (
        Anchor("0A", (DutySegment(C, 206.4, proc),), 3.4),
        Anchor("0B", (DutySegment(C, 103.2, proc * 2.0),), 12.9),
        Anchor(
            "1",
            (
                DutySegment(I, 206.4, recv),
                DutySegment(C, 206.4, proc),
                DutySegment(I, 206.4, send),
            ),
            6.13,
        ),
        Anchor(
            "1A",
            (
                DutySegment(I, 59.0, recv),
                DutySegment(C, 206.4, proc),
                DutySegment(I, 59.0, send),
            ),
            7.6,
        ),
        Anchor(
            "2",
            (
                DutySegment(I, 103.2, n2_recv),
                DutySegment(C, 103.2, n2_proc),
                DutySegment(I, 103.2, n2_send),
                DutySegment(P, 103.2, n2_idle),
            ),
            14.1,
        ),
    )


def predicted_lifetime_hours(
    anchor: Anchor,
    battery_params: KiBaMParameters,
    power_model: PowerModel,
    table: DVSTable = SA1100_TABLE,
    max_hours: float = 400.0,
) -> float:
    """Battery lifetime under a repeating duty cycle (closed-form steps).

    Whole duty cycles are fast-forwarded with the exact affine cycle
    map (:meth:`KiBaM.advance_cycles`, O(log n) per jump) while the
    safety margin allows; the final approach to death walks segment by
    segment and solves the last partial segment exactly. Compared to
    the pure per-segment walk this is ~100-1000x faster over a
    paper-scale discharge, with ~1e-12 relative state error. The loop
    itself lives in :func:`repro.hw.battery.kibam.lifetime_seconds`,
    shared with the vectorized cohort stepper in :mod:`repro.batch`.
    """
    cell = KiBaM(battery_params)
    currents = [
        power_model.current_ma(seg.mode, table.level_at(seg.level_mhz))
        for seg in anchor.segments
    ]
    cycle = [
        (current, seg.duration_s)
        for seg, current in zip(anchor.segments, currents)
    ]
    death_s, _ = lifetime_seconds(cell, cycle, max_hours * SECONDS_PER_HOUR)
    if not math.isfinite(death_s):
        raise CalibrationError(
            f"anchor {anchor.label}: no death within {max_hours} h "
            "(current too low for this parameterization)"
        )
    return death_s / SECONDS_PER_HOUR


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Output of :func:`calibrate_battery`.

    Attributes
    ----------
    battery:
        Fitted KiBaM parameters.
    power_model:
        Power model with the fitted idle curve and io_activity.
    residuals_hours:
        Per-anchor (predicted - target), in anchor order.
    anchors:
        The anchors that were fitted.
    """

    battery: KiBaMParameters
    power_model: PowerModel
    residuals_hours: tuple[float, ...]
    anchors: tuple[Anchor, ...]

    @property
    def max_abs_residual_hours(self) -> float:
        """Worst absolute anchor error."""
        return max(abs(r) for r in self.residuals_hours)


def _build_power_model(
    idle_hi_ma: float, io_activity: float, table: DVSTable
) -> PowerModel:
    """The calibration's model family: fixed comm/comp, free idle top."""
    lo, hi = table.min, table.max
    return PowerModel(
        table,
        idle=CurrentCurve.through((lo, 30.0), (hi, idle_hi_ma)),
        communication=CurrentCurve.through((lo, 40.0), (hi, 110.0)),
        computation=CurrentCurve(
            static_ma=32.0,
            slope_ma_per_unit=(130.0 - 32.0) / hi.switching_activity,
        ),
        io_activity=io_activity,
    )


def calibrate_battery(
    anchors: t.Sequence[Anchor] | None = None,
    table: DVSTable = SA1100_TABLE,
    x0: t.Sequence[float] = (1251.19, 0.22628, 0.42188, 0.27185, 38.23),
    max_nfev: int | None = None,
) -> CalibrationResult:
    """Fit (capacity, c, k', io_activity, idle_hi) to the anchors.

    Starting from the stored solution, the fit converges in a handful
    of evaluations; pass a different ``x0`` to re-derive it from
    scratch (slower, same answer).
    """
    anchors = tuple(anchors) if anchors is not None else paper_anchors()

    def residuals(p: np.ndarray) -> list[float]:
        cap, c, kp, w, idle_hi = p
        params = KiBaMParameters(capacity_mah=cap, c=c, k_prime_per_hour=kp)
        pm = _build_power_model(idle_hi, w, table)
        return [
            predicted_lifetime_hours(a, params, pm, table) - a.target_hours
            for a in anchors
        ]

    fit = least_squares(
        residuals,
        x0=np.asarray(x0, dtype=float),
        bounds=([300.0, 0.05, 0.02, 0.0, 31.0], [4000.0, 0.95, 50.0, 1.0, 109.0]),
        max_nfev=max_nfev,
    )
    if not fit.success and max_nfev is None:
        raise CalibrationError(f"calibration failed to converge: {fit.message}")
    cap, c, kp, w, idle_hi = fit.x
    params = KiBaMParameters(capacity_mah=float(cap), c=float(c), k_prime_per_hour=float(kp))
    pm = _build_power_model(float(idle_hi), float(w), table)
    return CalibrationResult(
        battery=params,
        power_model=pm,
        residuals_hours=tuple(float(r) for r in fit.fun),
        anchors=anchors,
    )
