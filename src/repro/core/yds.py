"""The Yao-Demers-Shenker (YDS) optimal voltage schedule.

The paper's related work (§2) starts from "the initial scheduling model
... introduced by Yao et al": given jobs with arrival times, deadlines
and work, a variable-speed processor minimizes energy (convex in speed)
by running each *critical interval* — the window of maximum work
density — at exactly its density, recursively.

This module implements the classic algorithm and two bridges to the
paper's setting:

- :func:`discretize_to_table` splits each continuous-speed segment
  between the two adjacent SA-1100 operating points (the standard
  two-level emulation, energy-optimal for convex power);
- for the paper's periodic single-frame workload, YDS degenerates to a
  constant speed equal to
  :func:`repro.pipeline.schedule.required_frequency_mhz` — i.e. the
  paper's slowest-feasible policy *is* YDS-optimal for its workload,
  which the tests verify.

Speeds here are abstract work-units per second; for the Itsy, work is
"seconds at 206.4 MHz" and speed 1.0 means running at 206.4 MHz.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError, ScheduleError
from repro.hw.dvs import DVSTable, FrequencyLevel

__all__ = [
    "Job",
    "SpeedSegment",
    "yds_schedule",
    "schedule_energy",
    "peak_speed",
    "discretize_to_table",
]


@dataclasses.dataclass(frozen=True)
class Job:
    """One piece of work with a release time and a deadline.

    Attributes
    ----------
    name:
        Identifier carried into the schedule.
    arrival, deadline:
        Feasibility window, ``deadline > arrival``.
    work:
        Execution requirement at unit speed.
    """

    name: str
    arrival: float
    deadline: float
    work: float

    def __post_init__(self) -> None:
        if self.deadline <= self.arrival:
            raise ConfigurationError(
                f"job {self.name}: deadline must exceed arrival"
            )
        if self.work < 0:
            raise ConfigurationError(f"job {self.name}: negative work")


@dataclasses.dataclass(frozen=True)
class SpeedSegment:
    """One constant-speed piece of the optimal profile."""

    start: float
    end: float
    speed: float
    jobs: tuple[str, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        return self.speed * self.duration


def _critical_interval(jobs: t.Sequence[Job]) -> tuple[float, float, float, list[Job]]:
    """The window of maximum work density and the jobs inside it."""
    arrivals = sorted({j.arrival for j in jobs})
    deadlines = sorted({j.deadline for j in jobs})
    best: tuple[float, float, float, list[Job]] | None = None
    for t1 in arrivals:
        for t2 in deadlines:
            if t2 <= t1:
                continue
            inside = [j for j in jobs if j.arrival >= t1 and j.deadline <= t2]
            if not inside:
                continue
            density = sum(j.work for j in inside) / (t2 - t1)
            if best is None or density > best[2] + 1e-15:
                best = (t1, t2, density, inside)
    if best is None:  # pragma: no cover - guarded by caller
        raise ScheduleError("no critical interval found")
    return best


def yds_schedule(jobs: t.Sequence[Job]) -> list[SpeedSegment]:
    """The energy-optimal speed profile for ``jobs``.

    Returns constant-speed segments sorted by start time; zero-speed
    gaps are omitted. Each segment lists the jobs the critical-interval
    extraction assigned to it (executed EDF within the segment).
    """
    live = [j for j in jobs if j.work > 0]
    if not live:
        return []

    t1, t2, density, inside = _critical_interval(live)
    length = t2 - t1
    inside_names = {j.name for j in inside}

    # Compress the timeline by cutting [t1, t2] out, recurse on the rest.
    def compress(x: float) -> float:
        if x <= t1:
            return x
        if x >= t2:
            return x - length
        return t1

    rest = [
        Job(j.name, compress(j.arrival), compress(j.deadline), j.work)
        for j in live
        if j.name not in inside_names
    ]
    sub = yds_schedule(rest)

    # Expand the sub-schedule back, splitting any segment spanning t1.
    expanded: list[SpeedSegment] = []
    for seg in sub:
        if seg.end <= t1:
            expanded.append(seg)
        elif seg.start >= t1:
            expanded.append(
                SpeedSegment(seg.start + length, seg.end + length, seg.speed, seg.jobs)
            )
        else:
            expanded.append(SpeedSegment(seg.start, t1, seg.speed, seg.jobs))
            expanded.append(
                SpeedSegment(t2, seg.end + length, seg.speed, seg.jobs)
            )
    expanded.append(
        SpeedSegment(t1, t2, density, tuple(sorted(inside_names)))
    )
    expanded.sort(key=lambda s: s.start)
    return expanded


def peak_speed(segments: t.Sequence[SpeedSegment]) -> float:
    """The maximum speed the profile ever uses (0 for an empty profile)."""
    return max((s.speed for s in segments), default=0.0)


def schedule_energy(
    segments: t.Sequence[SpeedSegment], exponent: float = 3.0
) -> float:
    """Energy of a speed profile under the classic convex model P = s^e.

    With dynamic power cubic in speed (P ∝ f·V² and V ∝ f), energy per
    segment is ``duration * speed^exponent``. Useful for comparing
    profiles; absolute units are arbitrary.
    """
    if exponent < 1.0:
        raise ConfigurationError("power exponent must be >= 1 (convex)")
    return sum(s.duration * s.speed**exponent for s in segments)


def discretize_to_table(
    segments: t.Sequence[SpeedSegment],
    table: DVSTable,
    unit_speed_mhz: float | None = None,
) -> list[tuple[SpeedSegment, FrequencyLevel, FrequencyLevel, float]]:
    """Map continuous speeds onto real operating points.

    Each segment of speed ``s`` (in units where 1.0 = ``unit_speed_mhz``,
    default the table maximum) is emulated by the two adjacent DVS
    levels: run the faster level for fraction ``x`` and the slower for
    ``1 - x`` such that the average frequency matches — the standard
    two-speed emulation, optimal for convex power.

    Returns ``(segment, low_level, high_level, high_fraction)`` rows.

    Raises
    ------
    ScheduleError
        If any segment needs more than the fastest level.
    """
    unit = unit_speed_mhz or table.max.mhz
    rows = []
    for seg in segments:
        mhz = seg.speed * unit
        if mhz > table.max.mhz + 1e-9:
            raise ScheduleError(
                f"segment [{seg.start:g}, {seg.end:g}] needs {mhz:.1f} MHz "
                f"> max {table.max.mhz:g}"
            )
        high = table.ceil(mhz)
        low = table.floor(mhz)
        if high.mhz == low.mhz:
            fraction = 1.0
        else:
            fraction = (mhz - low.mhz) / (high.mhz - low.mhz)
        rows.append((seg, low, high, fraction))
    return rows
