"""Executable specifications of the paper's experiments (§6).

Eight experiments, keyed by the paper's labels:

=====  ====================================================  ===========
label  configuration                                          paper result
=====  ====================================================  ===========
0A     1 node, no I/O, 206.4 MHz                              3.4 h / 11.5K
0B     1 node, no I/O, 103.2 MHz                              12.9 h / 22.5K
1      baseline: 1 node + I/O, 206.4 MHz                      6.13 h / 9.6K
1A     DVS during I/O (59 MHz on the serial port)             7.6 h / 11.9K
2      2-node pipeline, scheme 1, 59 / 103.2 MHz              14.1 h / 22.1K
2A     (2) + DVS during I/O on Node2                          14.44 h / 22.6K
2B     (2A) + power-failure recovery, pinned 73.7 / 118 MHz   15.72 h / 24.5K
2C     (2A) + node rotation every 100 frames                  17.82 h / 27.9K
=====  ====================================================  ===========

Experiment (2B) pins the paper's *measured* operating points
(73.7/118 MHz): the paper does not give an overhead accounting that
derives Node1's 73.7 exactly (our protocol arithmetic yields 59), so
the spec reproduces the reported configuration and EXPERIMENTS.md
records the deviation. All other frequency choices are *derived* by the
policies from the frame-delay arithmetic and agree with the paper.
"""

from __future__ import annotations

import dataclasses
import os
import typing as t

import warnings

from repro.apps.atr.profile import PAPER_PROFILE, TaskProfile
from repro.core.metrics import ExperimentMetrics
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    DVSPolicy,
    PinnedLevelsPolicy,
    SlowestFeasiblePolicy,
)
from repro.errors import ConfigurationError
from repro.hw.battery import Battery, BatteryMonitor, PAPER_BATTERY
from repro.hw.dvs import SA1100_TABLE, DVSTable
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.node import ItsyNode
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.pipeline.engine import PipelineConfig, PipelineEngine, PipelineResult
from repro.pipeline.recovery import RecoveryConfig
from repro.pipeline.rotation import RotationController
from repro.obs import Telemetry
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from repro.sim import Simulator, TraceRecorder
from repro.units import seconds_to_hours

__all__ = [
    "PaperNumbers",
    "ExperimentSpec",
    "ExperimentRun",
    "PAPER_EXPERIMENTS",
    "run_experiment",
    "run_paper_suite",
    "summarize_runs",
    "experiment_fingerprint",
]


@dataclasses.dataclass(frozen=True)
class PaperNumbers:
    """What the paper measured, for side-by-side reporting."""

    t_hours: float
    frames: int
    rnorm_percent: float | None = None


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's full configuration.

    Attributes
    ----------
    label, description:
        Paper identifiers.
    io_enabled:
        False for the §6.1 no-I/O runs (local data, no network, no
        frame-delay constraint).
    no_io_level_mhz:
        Clock rate for a no-I/O run.
    cuts:
        Partition cut points (empty = single node).
    policy:
        DVS policy choosing the operating points.
    rotation_period:
        §5.5 rotation period in frames, or None.
    recovery:
        Enable the §5.4 recovery protocol.
    deadline_s, profile:
        Frame delay D and the task profile.
    paper:
        The paper's measured numbers for this experiment.
    """

    label: str
    description: str
    policy: DVSPolicy | None = None
    io_enabled: bool = True
    no_io_level_mhz: float | None = None
    cuts: tuple[int, ...] = ()
    rotation_period: int | None = None
    recovery: bool = False
    recovery_detect_timeout_s: float = 6.9
    acks_between_nodes_only: bool = False
    deadline_s: float = 2.3
    profile: TaskProfile = PAPER_PROFILE
    paper: PaperNumbers | None = None

    @property
    def n_nodes(self) -> int:
        """Pipeline depth implied by the cuts."""
        return 1 if not self.io_enabled else len(self.cuts) + 1


@dataclasses.dataclass
class ExperimentRun:
    """Outcome of executing one spec.

    Attributes
    ----------
    spec:
        What was run.
    frames:
        Completed workload F.
    t_hours:
        Absolute battery life T (last-progress time for pipelines,
        death time for no-I/O runs).
    death_times_s:
        Per-node battery death times.
    pipeline:
        The raw engine result for pipeline runs (None for no-I/O runs).
    trace:
        The run's trace recorder (per-run when ``trace=True`` was
        requested, the caller's when one was passed in).
    obs:
        The run's telemetry bundle (events + metrics + spans) when
        telemetry was requested.
    """

    spec: ExperimentSpec
    frames: int
    t_hours: float
    death_times_s: dict[str, float]
    pipeline: PipelineResult | None = None
    trace: TraceRecorder | None = None
    obs: Telemetry | None = None
    #: Kernel events dispatched by the run — populated for single-node
    #: no-I/O runs too, where there is no PipelineResult to carry it.
    sim_events: int = 0

    def metrics(self, baseline_hours: float | None = None) -> ExperimentMetrics:
        """The Fig. 10 metrics row (Rnorm needs the baseline lifetime)."""
        n = self.spec.n_nodes
        tnorm = self.t_hours / n
        rnorm = None
        if baseline_hours is not None and self.spec.io_enabled:
            rnorm = tnorm / baseline_hours
        return ExperimentMetrics(
            label=self.spec.label,
            frames=self.frames,
            n_nodes=n,
            t_hours=self.t_hours,
            tnorm_hours=tnorm,
            rnorm=rnorm,
        )


def _paper_specs() -> dict[str, ExperimentSpec]:
    dvs_io_baseline = DVSDuringIOPolicy(BaselinePolicy())
    dvs_io_slowest = DVSDuringIOPolicy(SlowestFeasiblePolicy())
    return {
        "0A": ExperimentSpec(
            label="0A",
            description="single node, no I/O, full speed 206.4 MHz",
            io_enabled=False,
            no_io_level_mhz=206.4,
            paper=PaperNumbers(t_hours=3.4, frames=11500),
        ),
        "0B": ExperimentSpec(
            label="0B",
            description="single node, no I/O, half speed 103.2 MHz",
            io_enabled=False,
            no_io_level_mhz=103.2,
            paper=PaperNumbers(t_hours=12.9, frames=22500),
        ),
        "1": ExperimentSpec(
            label="1",
            description="baseline: single node with I/O at 206.4 MHz",
            policy=BaselinePolicy(),
            paper=PaperNumbers(t_hours=6.13, frames=9600, rnorm_percent=100.0),
        ),
        "1A": ExperimentSpec(
            label="1A",
            description="DVS during I/O: 59 MHz on the serial port, 206.4 MHz compute",
            policy=dvs_io_baseline,
            paper=PaperNumbers(t_hours=7.6, frames=11900, rnorm_percent=124.0),
        ),
        "2": ExperimentSpec(
            label="2",
            description="distributed DVS by partitioning: scheme 1, 59 / 103.2 MHz",
            policy=SlowestFeasiblePolicy(),
            cuts=(1,),
            paper=PaperNumbers(t_hours=14.1, frames=22100, rnorm_percent=115.0),
        ),
        "2A": ExperimentSpec(
            label="2A",
            description="distributed DVS during I/O on the partitioned pipeline",
            policy=dvs_io_slowest,
            cuts=(1,),
            paper=PaperNumbers(t_hours=14.44, frames=22600, rnorm_percent=118.0),
        ),
        "2B": ExperimentSpec(
            label="2B",
            description=(
                "distributed DVS with power-failure recovery: acked transactions, "
                "timeout detection, migration; paper-pinned 73.7 / 118 MHz"
            ),
            policy=DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0])),
            cuts=(1,),
            recovery=True,
            paper=PaperNumbers(t_hours=15.72, frames=24500, rnorm_percent=128.0),
        ),
        "2C": ExperimentSpec(
            label="2C",
            description="distributed DVS with node rotation every 100 frames",
            policy=dvs_io_slowest,
            cuts=(1,),
            rotation_period=100,
            paper=PaperNumbers(t_hours=17.82, frames=27900, rnorm_percent=145.0),
        ),
    }


#: The paper's eight experiments, keyed by label.
PAPER_EXPERIMENTS: dict[str, ExperimentSpec] = _paper_specs()


def _fast_forward_no_io(
    sim: Simulator,
    node: ItsyNode,
    battery: Battery,
    power_model: PowerModel,
    table: DVSTable,
    level: t.Any,
    proc_s: float,
    log: t.Any,
) -> None:
    """Analytic jump for the §6.1 no-I/O runs.

    The duty cycle is degenerate — one computation segment per frame at
    constant current from t = 0 — so the steady state needs no
    detection: advance the battery n frame-cycles, warp the clock, and
    let exact simulation play the endgame to death. Applied before the
    kernel starts, while the node's first segment is still zero-length,
    so the warp lands exactly on a frame boundary.
    """
    from repro.hw.power import PowerMode
    from repro.sim.fastforward import FastForwardController, _battery_supports_cycles

    if not _battery_supports_cycles(battery):
        return
    scaled = table.scale_time(proc_s, level)
    current = power_model.current_ma(PowerMode.COMPUTATION, level)
    drain = current * scaled
    if drain <= 0.0 or scaled <= 0.0:
        return
    n = int(battery.available_mas / drain) - FastForwardController.DEATH_MARGIN_CYCLES
    if n < FastForwardController.MIN_EPOCHS:
        return
    battery.advance_cycles([(current, scaled)], n)
    span = n * scaled
    sim.warp(span)
    node.warp(span)
    node.frames_processed += n
    if node._ledger is not None:
        # The skipped cycles are pure computation segments; attribute
        # them with the same products advance_cycles integrated.
        node._ledger.add_charge(
            node.name, "computation", "proc", current * scaled * n, scaled * n
        )
    if log:
        log.emit(
            "ff.epoch",
            sim.now,
            node.name,
            frames=n,
            periods=n,
            period_s=scaled,
            t0=0.0,
            t1=span,
            late=0,
            drained_mah={node.name: drain * n / 3600.0},
            link_busy_s={},
        )


def _run_no_io(
    spec: ExperimentSpec,
    battery_factory: t.Callable[[], Battery],
    power_model: PowerModel,
    table: DVSTable,
    trace: TraceRecorder | None,
    obs: Telemetry | None = None,
    mode: str = "exact",
) -> ExperimentRun:
    """§6.1: compute frames back to back from local storage until death."""
    if spec.no_io_level_mhz is None:
        raise ConfigurationError(f"experiment {spec.label}: no_io_level_mhz required")
    log = obs.events if obs is not None and obs.events else None
    sim = Simulator(obs=log)
    battery = battery_factory()
    node = ItsyNode(
        sim,
        "node1",
        battery,
        power_model,
        table,
        trace=trace,
        obs=log,
        ledger=obs.energy if log is not None else None,
    )
    level = table.level_at(spec.no_io_level_mhz)
    proc_s = spec.profile.total_seconds_at_max

    def loop(node: ItsyNode) -> t.Generator:
        while True:
            yield from node.compute(proc_s, level, "proc")
            node.frames_processed += 1

    node.spawn(loop(node))
    if mode == "fast":
        _fast_forward_no_io(sim, node, battery, power_model, table, level, proc_s, log)
    sim.run()
    assert node.death_time_s is not None
    if obs is not None:
        m = obs.metrics
        m.counter("frames.completed").inc(node.frames_processed)
        m.counter("kernel.events").inc(sim.events_processed)
        m.gauge("sim.end_time_s").set(sim.now)
        m.gauge("node.delivered_mah.node1").set(battery.delivered_mah)
        if log is not None:
            log.seal(sim.now)
        if obs.events:
            for kind, n in obs.events.counts_by_kind().items():
                m.counter(f"events.{kind}").inc(n)
    return ExperimentRun(
        spec=spec,
        frames=node.frames_processed,
        t_hours=seconds_to_hours(node.death_time_s),
        death_times_s={"node1": node.death_time_s},
        pipeline=None,
        trace=trace,
        obs=obs,
        sim_events=sim.events_processed,
    )


def run_experiment(
    spec: ExperimentSpec,
    battery_factory: t.Callable[[], Battery] = PAPER_BATTERY,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    trace: TraceRecorder | bool | None = None,
    max_frames: int | None = None,
    monitor_interval_s: float | None = None,
    store_and_forward: bool = False,
    rotation_reconfig_s: float = 0.0,
    seed: int = 0,
    telemetry: bool | Telemetry = False,
    mode: str = "exact",
    registry: t.Any = None,
) -> ExperimentRun:
    """Execute one experiment spec on the simulated testbed.

    Parameters mirror the hardware substitutions: pass a different
    ``battery_factory`` (linear, Peukert) or ``power_model`` for the
    ablation studies; ``max_frames`` truncates the run (used when only
    a schedule trace is needed).

    ``trace=True`` records timing diagrams into a fresh per-run
    :class:`TraceRecorder` (picklable and cacheable; preferred over
    passing a shared recorder instance). ``telemetry=True`` attaches a
    fresh :class:`repro.obs.Telemetry` bundle: structured events,
    the metrics registry, and span profiling, all returned on
    ``ExperimentRun.obs``.

    ``registry`` (a :class:`repro.obs.RunRegistry` or a database path)
    persists the outcome as a :class:`repro.obs.RunRecord` keyed by the
    full effective configuration (see :func:`experiment_fingerprint`);
    the registry setting itself never affects fingerprints or cache
    keys.

    ``mode="fast"`` skips steady-state epochs analytically (see
    :mod:`repro.sim.fastforward`): frame counts match exact simulation
    and lifetimes agree to well under 0.1%, at a fraction of the wall
    time. ``mode`` is part of the cache key and registry fingerprint,
    so fast and exact results never alias. Incompatible with ``trace``
    (skipped epochs record no segments); stochastic timing or workload
    models silently fall back to exact simulation.
    """
    if mode not in ("exact", "fast"):
        raise ConfigurationError(f"mode must be 'exact' or 'fast', got {mode!r}")
    recorder: TraceRecorder | None
    if trace is True:
        recorder = TraceRecorder()
    elif trace is False:
        recorder = None
    else:
        recorder = trace
    obs: Telemetry | None
    if telemetry is True:
        obs = Telemetry()
    elif telemetry is False:
        obs = None
    else:
        obs = telemetry
    if mode == "fast" and recorder is not None:
        raise ConfigurationError(
            "trace recording requires mode='exact': fast-forward "
            "coalesces whole epochs, which have no segments to record"
        )
    reg_kwargs = dict(
        battery_factory=battery_factory,
        power_model=power_model,
        table=table,
        timing=timing,
        trace=trace,
        max_frames=max_frames,
        monitor_interval_s=monitor_interval_s,
        store_and_forward=store_and_forward,
        rotation_reconfig_s=rotation_reconfig_s,
        seed=seed,
        telemetry=telemetry,
        mode=mode,
    )
    if not spec.io_enabled:
        run = _run_no_io(
            spec, battery_factory, power_model, table, recorder, obs, mode=mode
        )
        if registry is not None:
            _register_run(registry, run, spec, reg_kwargs)
        return run
    if spec.policy is None:
        raise ConfigurationError(f"experiment {spec.label}: a policy is required")

    partition = Partition(spec.profile, spec.cuts)
    recovery = None
    overheads = [0.0] * partition.n_stages
    if spec.recovery:
        recovery = RecoveryConfig(
            detect_timeout_s=spec.recovery_detect_timeout_s,
            migrated_comp_level=table.max,
            migrated_io_level=table.min,
            acks_between_nodes_only=spec.acks_between_nodes_only,
        )

    plans = []
    for i, assignment in enumerate(partition.assignments):
        overhead = 0.0
        if recovery is not None:
            n_acked = (1 if i > 0 else 0) + (1 if i < partition.n_stages - 1 else 0)
            if not recovery.acks_between_nodes_only:
                n_acked += (1 if i == 0 else 0) + (1 if i == partition.n_stages - 1 else 0)
            overhead = recovery.per_frame_overhead_s(timing, n_acked)
        overheads[i] = overhead
        plans.append(
            plan_node(assignment, timing, spec.deadline_s, table, overhead_s=overhead)
        )
    roles = spec.policy.role_configs(plans, table)

    rotation = None
    if spec.rotation_period is not None:
        rotation = RotationController(
            period=spec.rotation_period,
            n_stages=partition.n_stages,
            reconfig_seconds=rotation_reconfig_s,
        )

    node_names = tuple(f"node{i + 1}" for i in range(partition.n_stages))
    config = PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=node_names,
        battery_factory=battery_factory,
        deadline_s=spec.deadline_s,
        timing=timing,
        power_model=power_model,
        dvs_table=table,
        rotation=rotation,
        recovery=recovery,
        max_frames=max_frames,
        trace=recorder,
        monitor_interval_s=monitor_interval_s,
        obs=obs,
        store_and_forward=store_and_forward,
        seed=seed,
        fast_forward=mode == "fast",
    )
    result = PipelineEngine(config).run()

    # The paper's T: completed workload times the frame delay, plus the
    # pipeline fill (§4.5). For truncated runs (max_frames) this is the
    # workload-equivalent lifetime, not a battery lifetime.
    t_hours = seconds_to_hours(
        result.frames_completed * spec.deadline_s
        + (partition.n_stages - 1) * spec.deadline_s
    )
    run = ExperimentRun(
        spec=spec,
        frames=result.frames_completed,
        t_hours=t_hours,
        death_times_s=result.death_times_s,
        pipeline=result,
        trace=recorder,
        obs=obs,
        sim_events=result.events_processed,
    )
    if registry is not None:
        _register_run(registry, run, spec, reg_kwargs)
    return run


def _run_payload(run: ExperimentRun) -> dict[str, t.Any]:
    """JSON-serializable payload for a cacheable run.

    Per-run trace recorders, battery monitors, and telemetry bundles
    all round-trip through their ``as_dict``/``from_dict`` forms, so
    traced and monitored runs cache and parallelize like any other.
    """
    payload: dict[str, t.Any] = {
        "frames": run.frames,
        "t_hours": run.t_hours,
        "death_times_s": dict(run.death_times_s),
        "pipeline": None,
        "trace": run.trace.as_dict() if run.trace is not None else None,
        "obs": run.obs.as_dict() if run.obs is not None else None,
        "sim_events": run.sim_events,
    }
    p = run.pipeline
    if p is not None:
        payload["pipeline"] = {
            "frames_completed": p.frames_completed,
            "result_times_s": list(p.result_times_s),
            "end_time_s": p.end_time_s,
            "end_reason": p.end_reason,
            "death_times_s": dict(p.death_times_s),
            "delivered_mah": dict(p.delivered_mah),
            "migrations": [[when, name] for when, name in p.migrations],
            "last_result_s": p.last_result_s,
            "late_results": p.late_results,
            "max_lateness_s": p.max_lateness_s,
            "frames_processed": dict(p.frames_processed),
            "level_switches": dict(p.level_switches),
            "link_transactions": dict(p.link_transactions),
            "link_bytes": dict(p.link_bytes),
            "stage_stalls": dict(p.stage_stalls),
            "events_processed": p.events_processed,
            "ff_jumps": p.ff_jumps,
            "ff_frames_skipped": p.ff_frames_skipped,
            "monitors": {
                name: mon.as_dict() for name, mon in sorted(p.monitors.items())
            },
        }
    return payload


def _run_from_payload(spec: ExperimentSpec, payload: dict[str, t.Any]) -> ExperimentRun:
    """Rebuild a run from :func:`_run_payload` output."""
    trace = None
    if payload.get("trace") is not None:
        trace = TraceRecorder.from_dict(payload["trace"])
    obs = None
    if payload.get("obs") is not None:
        obs = Telemetry.from_dict(payload["obs"])
    pipeline = None
    pd = payload["pipeline"]
    if pd is not None:
        monitors = {
            name: BatteryMonitor.from_dict(md)
            for name, md in (pd.get("monitors") or {}).items()
        }
        pipeline = PipelineResult(
            frames_completed=pd["frames_completed"],
            result_times_s=list(pd["result_times_s"]),
            end_time_s=pd["end_time_s"],
            end_reason=pd["end_reason"],
            death_times_s=dict(pd["death_times_s"]),
            delivered_mah=dict(pd["delivered_mah"]),
            migrations=[(when, name) for when, name in pd["migrations"]],
            monitors=monitors,
            trace=trace,
            obs=obs,
            last_result_s=pd["last_result_s"],
            late_results=pd["late_results"],
            max_lateness_s=pd["max_lateness_s"],
            frames_processed=dict(pd["frames_processed"]),
            level_switches=dict(pd["level_switches"]),
            link_transactions=dict(pd["link_transactions"]),
            link_bytes=dict(pd["link_bytes"]),
            stage_stalls=dict(pd["stage_stalls"]),
            events_processed=pd["events_processed"],
            ff_jumps=pd.get("ff_jumps", 0),
            ff_frames_skipped=pd.get("ff_frames_skipped", 0),
        )
    return ExperimentRun(
        spec=spec,
        frames=payload["frames"],
        t_hours=payload["t_hours"],
        death_times_s=dict(payload["death_times_s"]),
        pipeline=pipeline,
        trace=trace,
        obs=obs,
        sim_events=payload.get("sim_events", 0),
    )


def _suite_job(task: tuple[str, dict[str, t.Any]]) -> ExperimentRun:
    """Worker entry point for parallel suites (module-level: picklable)."""
    label, kwargs = task
    return run_experiment(PAPER_EXPERIMENTS[label], **kwargs)


def _experiment_key_parts(spec: ExperimentSpec, kwargs: dict[str, t.Any]) -> tuple:
    """The full effective configuration of one run_experiment call.

    Defaults are applied through the signature, so an explicit
    ``seed=0`` and an omitted seed hash identically.
    """
    import inspect

    bound = inspect.signature(run_experiment).bind(spec, **kwargs)
    bound.apply_defaults()
    arguments = dict(bound.arguments)
    arguments.pop("spec")
    # Where results are *recorded* is not part of what was computed:
    # registering a run must never change its fingerprint or cache key.
    arguments.pop("registry", None)
    # Bool requests for per-run recorders are part of the configuration
    # (they change the payload shape); shared instances never get here.
    arguments["trace"] = bool(arguments.get("trace"))
    arguments["telemetry"] = bool(arguments.get("telemetry"))
    return (spec, sorted(arguments.items()))


def experiment_fingerprint(
    spec: ExperimentSpec, kwargs: dict[str, t.Any] | None = None
) -> str:
    """Digest of one run_experiment configuration, defaults applied.

    This is the registry's notion of "same experiment": two invocations
    fingerprint identically iff every effective parameter (spec plus
    keyword arguments, with defaults filled in and per-run recorder
    requests normalized to booleans) matches. Unlike cache keys it is
    unsalted — the fingerprint identifies the *configuration*, while
    code-version provenance is recorded separately on the run record.
    """
    from repro.exec.cache import stable_key

    return stable_key(
        "run_experiment", _experiment_key_parts(spec, dict(kwargs or {}))
    )


def _register_run(
    registry: t.Any,
    run: ExperimentRun,
    spec: ExperimentSpec,
    kwargs: dict[str, t.Any],
) -> None:
    """Persist one run into a registry (accepts a registry or a path)."""
    from repro.obs.store import RunRegistry

    if isinstance(registry, (str, os.PathLike)):
        registry = RunRegistry(registry)
    registry.record_run(run, experiment_fingerprint(spec, kwargs))


def run_paper_suite(
    labels: t.Sequence[str] | None = None,
    jobs: int = 1,
    cache: t.Any = None,
    registry: t.Any = None,
    flight: t.Any = None,
    **kwargs: t.Any,
) -> dict[str, ExperimentRun]:
    """Run several paper experiments; kwargs pass through to run_experiment.

    Parameters
    ----------
    labels:
        Experiment labels (default: all eight).
    jobs:
        Worker processes to fan the experiments over. ``1`` (default)
        runs serially in-process; parallel results are bit-identical to
        serial because every experiment seeds its own randomness from
        its spec. ``trace=True``/``telemetry=True`` build per-run
        recorders inside each worker and parallelize normally.
    cache:
        ``None`` (default) disables caching; ``True`` uses a
        :class:`repro.exec.ResultCache` at ``.repro-cache``; or pass a
        configured :class:`~repro.exec.ResultCache`. Traced, monitored,
        and telemetry-carrying runs are cached too — their recorders
        round-trip through the payload. The only uncached path is a
        *shared* ``TraceRecorder``/``Telemetry`` instance passed in by
        the caller (deprecated: it forces serial execution because
        worker processes cannot append to the caller's object). Cached
        entries are keyed by the full configuration, so any parameter
        change is a miss.
    registry:
        Optional :class:`repro.obs.RunRegistry` (or database path).
        Every run is registered in label order, always in the parent
        process, from results that have round-tripped through the
        worker/cache payload — so serial, parallel, and cache-replayed
        suites deposit byte-identical registry contents.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`: each
        experiment becomes one journaled executor item with live
        progress (this routes even serial uncached suites through the
        executor so the journal is complete).
    """
    labels = list(labels) if labels is not None else list(PAPER_EXPERIMENTS)
    unknown = [lb for lb in labels if lb not in PAPER_EXPERIMENTS]
    if unknown:
        raise ConfigurationError(f"unknown experiment labels: {unknown}")

    trace = kwargs.get("trace")
    telemetry = kwargs.get("telemetry")
    shared_recorder = not isinstance(trace, (bool, type(None))) or not isinstance(
        telemetry, (bool, type(None))
    )
    if shared_recorder:
        warnings.warn(
            "passing a shared TraceRecorder/Telemetry instance to "
            "run_paper_suite forces serial, uncached execution; use "
            "trace=True / telemetry=True for per-run recorders that "
            "parallelize and cache",
            DeprecationWarning,
            stacklevel=2,
        )
        jobs = 1

    if jobs <= 1 and not cache and flight is None:
        runs = {lb: run_experiment(PAPER_EXPERIMENTS[lb], **kwargs) for lb in labels}
        if registry is not None:
            for lb in labels:
                _register_run(registry, runs[lb], PAPER_EXPERIMENTS[lb], kwargs)
        return runs

    from repro.exec import ResultCache, SweepExecutor

    if cache is True:
        cache = ResultCache()
    cacheable = not shared_recorder
    keys = None
    if cache and cacheable:
        keys = [
            cache.key_for(
                "run_experiment",
                _experiment_key_parts(PAPER_EXPERIMENTS[lb], kwargs),
            )
            for lb in labels
        ]
    on_result = None
    if registry is not None:
        def on_result(task: tuple[str, dict], run: ExperimentRun) -> None:
            _register_run(registry, run, PAPER_EXPERIMENTS[task[0]], kwargs)

    if flight is not None:
        flight.phase("suite", total=len(labels))
    executor = SweepExecutor(jobs=jobs, cache=cache or None, flight=flight)
    runs = executor.map(
        _suite_job,
        [(lb, kwargs) for lb in labels],
        keys=keys,
        encode=_run_payload,
        decode=lambda task, payload: _run_from_payload(
            PAPER_EXPERIMENTS[task[0]], payload
        ),
        on_result=on_result,
    )
    return dict(zip(labels, runs))


def summarize_runs(runs: dict[str, ExperimentRun]) -> list[ExperimentMetrics]:
    """Metrics rows for a suite, with Rnorm against the baseline run.

    The baseline is the run labelled "1"; if absent, Rnorm is omitted.
    """
    baseline = runs.get("1")
    baseline_hours = baseline.t_hours if baseline is not None else None
    rows = []
    for label in sorted(runs, key=_label_key):
        rows.append(runs[label].metrics(baseline_hours))
    return rows


def _label_key(label: str) -> tuple[int, str]:
    """Sort 0A, 0B, 1, 1A, 2, 2A, 2B, 2C in paper order."""
    head = label.rstrip("ABCDEFGH")
    try:
        return (int(head), label)
    except ValueError:
        return (99, label)
