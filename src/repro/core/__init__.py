"""The paper's contribution: distributed DVS techniques and their evaluation.

- :mod:`repro.core.policies` — DVS policies: run-at-max, slowest-
  feasible, DVS-during-I/O, pinned operating points.
- :mod:`repro.core.partitioning` — the Fig. 8 analysis: enumerate
  partitions, derive required frequencies, rank feasibility.
- :mod:`repro.core.metrics` — the §4.5 metrics: T(N), F(N), normalized
  battery life and ratios.
- :mod:`repro.core.calibration` — fits the battery and power models to
  the paper's measured anchor lifetimes.
- :mod:`repro.core.experiments` — executable specifications of the
  paper's eight experiments (0A, 0B, 1, 1A, 2, 2A, 2B, 2C).
"""

from repro.core.metrics import ExperimentMetrics, battery_life_hours, normalized_ratio
from repro.core.yds import Job, SpeedSegment, yds_schedule
from repro.core.partitioning import PartitionAnalysis, analyze_partitions, select_best
from repro.core.optimizer import Candidate, optimize_configuration
from repro.core.prediction import predict_first_death, predict_role_lifetime_hours
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    DVSPolicy,
    PinnedLevelsPolicy,
    SlowestFeasiblePolicy,
)
from repro.core.experiments import (
    PAPER_EXPERIMENTS,
    ExperimentRun,
    ExperimentSpec,
    run_experiment,
    run_paper_suite,
    summarize_runs,
)

__all__ = [
    "DVSPolicy",
    "BaselinePolicy",
    "SlowestFeasiblePolicy",
    "DVSDuringIOPolicy",
    "PinnedLevelsPolicy",
    "PartitionAnalysis",
    "analyze_partitions",
    "select_best",
    "ExperimentMetrics",
    "battery_life_hours",
    "normalized_ratio",
    "ExperimentSpec",
    "ExperimentRun",
    "PAPER_EXPERIMENTS",
    "run_experiment",
    "run_paper_suite",
    "summarize_runs",
    "Job",
    "SpeedSegment",
    "yds_schedule",
    "predict_first_death",
    "Candidate",
    "optimize_configuration",
    "predict_role_lifetime_hours",
]
