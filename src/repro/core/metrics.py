"""The paper's evaluation metrics (§4.5).

With N nodes (N batteries) completing F(N) frames at fixed frame delay
D before battery exhaustion:

- absolute battery life  ``T(N) = F(N) * D + (N - 1) * D``
  (the second term is the pipeline fill; negligible for the paper's
  thousands of frames but carried exactly here);
- normalized battery life  ``Tnorm(N) = T(N) / N`` — N batteries should
  buy N times the lifetime, anything less is an efficiency loss;
- normalized ratio  ``Rnorm(N) = Tnorm(N) / T(1)`` against the baseline.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.units import seconds_to_hours

__all__ = [
    "battery_life_hours",
    "normalized_battery_life_hours",
    "normalized_ratio",
    "ExperimentMetrics",
]


def battery_life_hours(frames: int, deadline_s: float, n_nodes: int) -> float:
    """Absolute battery life T(N) in hours, from completed frames."""
    if frames < 0:
        raise ConfigurationError(f"frames must be >= 0, got {frames}")
    if deadline_s <= 0:
        raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
    if n_nodes < 1:
        raise ConfigurationError(f"need at least one node, got {n_nodes}")
    return seconds_to_hours(frames * deadline_s + (n_nodes - 1) * deadline_s)


def normalized_battery_life_hours(
    frames: int, deadline_s: float, n_nodes: int
) -> float:
    """Tnorm(N) = T(N) / N, in hours."""
    return battery_life_hours(frames, deadline_s, n_nodes) / n_nodes


def normalized_ratio(tnorm_hours: float, baseline_hours: float) -> float:
    """Rnorm = Tnorm / T(1), as a fraction (1.0 = 100%)."""
    if baseline_hours <= 0:
        raise ConfigurationError("baseline lifetime must be positive")
    return tnorm_hours / baseline_hours


@dataclasses.dataclass(frozen=True)
class ExperimentMetrics:
    """The Fig. 10 row for one experiment.

    Attributes
    ----------
    label:
        Experiment id ("1", "1A", "2", ...).
    frames:
        Completed workload F.
    n_nodes:
        Number of nodes (= batteries).
    t_hours:
        Absolute battery life T.
    tnorm_hours:
        Normalized battery life T / N.
    rnorm:
        Normalized ratio vs the baseline (1.0 = 100%); None when no
        baseline applies (the no-I/O experiments 0A/0B).
    """

    label: str
    frames: int
    n_nodes: int
    t_hours: float
    tnorm_hours: float
    rnorm: float | None

    @classmethod
    def from_frames(
        cls,
        label: str,
        frames: int,
        deadline_s: float,
        n_nodes: int,
        baseline_hours: float | None = None,
    ) -> "ExperimentMetrics":
        """Build metrics from a frame count via the §4.5 formulas."""
        t = battery_life_hours(frames, deadline_s, n_nodes)
        tnorm = t / n_nodes
        rnorm = None
        if baseline_hours is not None:
            rnorm = normalized_ratio(tnorm, baseline_hours)
        return cls(
            label=label,
            frames=frames,
            n_nodes=n_nodes,
            t_hours=t,
            tnorm_hours=tnorm,
            rnorm=rnorm,
        )

    def as_row(self) -> dict[str, float | int | str | None]:
        """Flat dict for table rendering / CSV export."""
        return {
            "experiment": self.label,
            "nodes": self.n_nodes,
            "frames": self.frames,
            "T_hours": round(self.t_hours, 3),
            "Tnorm_hours": round(self.tnorm_hours, 3),
            "Rnorm_percent": None if self.rnorm is None else round(self.rnorm * 100, 1),
        }
