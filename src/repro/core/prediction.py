"""Closed-form lifetime prediction for steady-state pipelines.

In steady state every pipeline stage repeats the same frame-long duty
cycle — RECV, PROC, SEND, idle — so its battery lifetime has a
closed-form answer via the KiBaM constant-current steps, without
running the discrete-event engine at all. This module derives that
duty cycle from a stage's :class:`~repro.pipeline.engine.RoleConfig`
and predicts each node's death.

Two uses:

- **speed**: scanning hundreds of configurations (the optimizer and
  ablation sweeps) at microseconds each;
- **verification**: the integration tests assert the event-driven
  engine and this independent analytical path agree to a fraction of a
  percent — any bookkeeping bug in either shows up as disagreement.

The prediction is exact for failure-free, rotation-free steady state;
rotation, migration, and stochastic timing need the engine.
"""

from __future__ import annotations

import typing as t

from repro.core.calibration import Anchor, DutySegment, predicted_lifetime_hours
from repro.errors import ConfigurationError, ScheduleError
from repro.hw.battery.kibam import KiBaMParameters, PAPER_KIBAM_PARAMETERS
from repro.hw.dvs import SA1100_TABLE, DVSTable
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerMode, PowerModel
from repro.pipeline.engine import RoleConfig

__all__ = ["role_duty_cycle", "predict_role_lifetime_hours", "predict_first_death"]


def role_duty_cycle(
    role: RoleConfig,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    ack_overhead_s: float = 0.0,
) -> tuple[DutySegment, ...]:
    """The steady-state per-frame duty cycle of one pipeline stage.

    Mirrors the engine's power-mode sequence exactly: communication at
    the I/O level for RECV, ack overhead, and SEND; computation at the
    compute level for PROC; the remaining slack idles at the I/O level
    (where the engine parks the node after its last transaction).

    Raises
    ------
    ScheduleError
        If the busy time exceeds the frame delay (no steady state).
    """
    recv_s = timing.nominal_duration(role.assignment.recv_bytes)
    send_s = timing.nominal_duration(role.assignment.send_bytes)
    proc_s = role.assignment.proc_seconds_at_max * 206.4 / role.comp_level.mhz
    idle_s = deadline_s - recv_s - send_s - proc_s - ack_overhead_s
    if idle_s < -1e-9:
        raise ScheduleError(
            f"stage {role.assignment.index}: busy time exceeds the frame "
            f"delay by {-idle_s:.3f}s; no steady state exists"
        )
    segments = [
        DutySegment(PowerMode.COMMUNICATION, role.io_level.mhz, recv_s),
        DutySegment(PowerMode.COMPUTATION, role.comp_level.mhz, proc_s),
        DutySegment(PowerMode.COMMUNICATION, role.io_level.mhz, send_s + ack_overhead_s),
    ]
    if idle_s > 1e-12:
        segments.append(DutySegment(PowerMode.IDLE, role.io_level.mhz, idle_s))
    return tuple(s for s in segments if s.duration_s > 0)


def predict_role_lifetime_hours(
    role: RoleConfig,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    battery: KiBaMParameters = PAPER_KIBAM_PARAMETERS,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
    ack_overhead_s: float = 0.0,
) -> float:
    """Battery lifetime of one stage under its steady-state duty cycle."""
    anchor = Anchor(
        label=f"stage{role.assignment.index}",
        segments=role_duty_cycle(role, timing, deadline_s, ack_overhead_s),
        target_hours=0.0,
    )
    return predicted_lifetime_hours(anchor, battery, power_model, table)


def predict_first_death(
    roles: t.Sequence[RoleConfig],
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    battery: KiBaMParameters = PAPER_KIBAM_PARAMETERS,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
) -> tuple[int, float, dict[int, float]]:
    """Which stage's battery dies first, and when.

    Returns ``(stage_index, hours, per_stage_hours)``. This is the
    quantity that ends experiments (2)/(2A) — the paper's observation
    that the critical battery "decides the uptime of the whole system".
    """
    if not roles:
        raise ConfigurationError("need at least one role")
    lifetimes = {
        role.assignment.index: predict_role_lifetime_hours(
            role, timing, deadline_s, battery, power_model, table
        )
        for role in roles
    }
    first = min(lifetimes, key=lifetimes.__getitem__)
    return first, lifetimes[first], lifetimes
