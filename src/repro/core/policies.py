"""DVS policies: how a pipeline stage picks its operating points.

A policy turns per-stage :class:`~repro.pipeline.schedule.NodePlan`
objects into :class:`~repro.pipeline.engine.RoleConfig` operating
points (compute level, I/O level). The paper's techniques map onto
policies as:

=============================  ==========================================
paper configuration            policy
=============================  ==========================================
baseline (1)                   :class:`BaselinePolicy`
DVS during I/O (1A)            ``DVSDuringIOPolicy(BaselinePolicy())``
partitioning (2)               :class:`SlowestFeasiblePolicy`
dist. DVS during I/O (2A)      ``DVSDuringIOPolicy(SlowestFeasiblePolicy())``
recovery (2B)                  ``DVSDuringIOPolicy(PinnedLevelsPolicy(...))``
node rotation (2C)             ``DVSDuringIOPolicy(SlowestFeasiblePolicy())``
=============================  ==========================================

(In 2A the paper only lowers Node2's I/O level because Node1 already
runs at the minimum — ``DVSDuringIOPolicy`` reproduces that for free,
since lowering an already-minimal level is a no-op.)
"""

from __future__ import annotations

import abc
import typing as t

from repro.errors import ConfigurationError
from repro.hw.dvs import DVSTable, FrequencyLevel
from repro.pipeline.engine import RoleConfig
from repro.pipeline.schedule import NodePlan

__all__ = [
    "DVSPolicy",
    "BaselinePolicy",
    "SlowestFeasiblePolicy",
    "DVSDuringIOPolicy",
    "PinnedLevelsPolicy",
]


class DVSPolicy(abc.ABC):
    """Maps per-stage plans to operating points."""

    @abc.abstractmethod
    def role_configs(
        self, plans: t.Sequence[NodePlan], table: DVSTable
    ) -> tuple[RoleConfig, ...]:
        """Choose (comp_level, io_level) for every stage."""

    def describe(self) -> str:
        """Short human-readable label for reports."""
        return type(self).__name__


def _budget(plan: NodePlan) -> float:
    """PROC time available inside the frame: chosen-level PROC + slack."""
    return plan.schedule.proc_s + plan.schedule.slack_s


class BaselinePolicy(DVSPolicy):
    """Everything at the fastest level — the paper's experiment (1)."""

    def role_configs(self, plans, table):
        return tuple(
            RoleConfig(
                p.assignment,
                comp_level=table.max,
                io_level=table.max,
                proc_budget_s=_budget(p),
            )
            for p in plans
        )


class SlowestFeasiblePolicy(DVSPolicy):
    """Each stage at the slowest level meeting D; I/O at the same level.

    This is "distributed DVS by partitioning" (§5.3): the partition
    creates slack, the stage's clock is lowered until the slack is gone.
    """

    def role_configs(self, plans, table):
        return tuple(
            RoleConfig(
                p.assignment,
                comp_level=p.level,
                io_level=p.level,
                proc_budget_s=_budget(p),
            )
            for p in plans
        )


class DVSDuringIOPolicy(DVSPolicy):
    """Wrap another policy, dropping I/O periods to the minimum level.

    "DVS during I/O" (§5.2): communication delay is frequency-
    independent, so the CPU can sit at 59 MHz during transactions with
    no performance cost.
    """

    def __init__(self, inner: DVSPolicy):
        self.inner = inner

    def role_configs(self, plans, table):
        return tuple(
            RoleConfig(
                rc.assignment,
                comp_level=rc.comp_level,
                io_level=table.min,
                proc_budget_s=rc.proc_budget_s,
            )
            for rc in self.inner.role_configs(plans, table)
        )

    def describe(self) -> str:
        return f"{self.inner.describe()}+DVSDuringIO"


class PinnedLevelsPolicy(DVSPolicy):
    """Explicit per-stage compute levels (e.g. the paper's measured 2B points).

    Parameters
    ----------
    comp_mhz:
        One compute frequency per stage.
    io_mhz:
        Optional per-stage I/O frequencies; defaults to the compute
        frequency (wrap in :class:`DVSDuringIOPolicy` to force minimum).
    """

    def __init__(self, comp_mhz: t.Sequence[float], io_mhz: t.Sequence[float] | None = None):
        self.comp_mhz = tuple(comp_mhz)
        self.io_mhz = tuple(io_mhz) if io_mhz is not None else None
        if self.io_mhz is not None and len(self.io_mhz) != len(self.comp_mhz):
            raise ConfigurationError("io_mhz must match comp_mhz in length")

    def role_configs(self, plans, table):
        if len(plans) != len(self.comp_mhz):
            raise ConfigurationError(
                f"{len(self.comp_mhz)} pinned levels for {len(plans)} stages"
            )
        configs = []
        for i, plan in enumerate(plans):
            comp = table.level_at(self.comp_mhz[i])
            io = table.level_at(self.io_mhz[i]) if self.io_mhz is not None else comp
            configs.append(
                RoleConfig(
                    plan.assignment,
                    comp_level=comp,
                    io_level=io,
                    proc_budget_s=_budget(plan),
                )
            )
        return tuple(configs)

    def describe(self) -> str:
        return f"Pinned({', '.join(f'{m:g}' for m in self.comp_mhz)} MHz)"
