"""Partitioning analysis: the paper's Fig. 8, from first principles.

Enumerates every contiguous partition of the block chain onto N
pipeline stages, derives each stage's required frequency from the frame
delay and the (frequency-independent) communication times, and ranks
the feasible schemes. For the paper's parameters this reproduces
Fig. 8: scheme 1 — (Target Detection) on Node1, the rest on Node2 —
is the only scheme whose nodes both run in the lower half of the DVS
table, and scheme 3 is outright infeasible (~380 MHz required).
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.apps.atr.profile import TaskProfile
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import DVSTable, FrequencyLevel
from repro.hw.link import TransactionTiming
from repro.hw.power import PowerMode, PowerModel
from repro.pipeline.schedule import NodePlan, plan_node, required_frequency_mhz
from repro.pipeline.tasks import Partition, enumerate_partitions
from repro.units import bytes_to_kb

__all__ = ["StageAnalysis", "PartitionAnalysis", "analyze_partitions", "select_best", "estimate_average_current_ma"]


@dataclasses.dataclass(frozen=True)
class StageAnalysis:
    """One stage of one scheme: the Fig. 8 cells.

    Attributes
    ----------
    plan:
        The stage's plan when feasible, else None.
    required_mhz:
        Continuous frequency requirement (finite even when infeasible —
        that is the paper's "> 206.4 / 380 MHz" cell).
    comm_payload_kb:
        The stage's total communication payload per frame, in the
        paper's KB convention.
    """

    plan: NodePlan | None
    required_mhz: float
    comm_payload_kb: float

    @property
    def feasible(self) -> bool:
        """Whether a real operating point satisfies the deadline."""
        return self.plan is not None

    @property
    def level(self) -> FrequencyLevel | None:
        """The chosen operating point, if feasible."""
        return self.plan.level if self.plan else None


@dataclasses.dataclass(frozen=True)
class PartitionAnalysis:
    """A fully analyzed partitioning scheme (one Fig. 8 row)."""

    partition: Partition
    stages: tuple[StageAnalysis, ...]

    @property
    def feasible(self) -> bool:
        """All stages meet the frame delay on real hardware."""
        return all(s.feasible for s in self.stages)

    @property
    def total_payload_kb(self) -> float:
        """Sum of per-stage communication payloads."""
        return sum(s.comm_payload_kb for s in self.stages)

    @property
    def total_switching_activity(self) -> float:
        """Energy proxy: sum of chosen levels' f * V^2 (inf if infeasible)."""
        if not self.feasible:
            return float("inf")
        return sum(s.level.switching_activity for s in self.stages)  # type: ignore[union-attr]

    def as_row(self) -> dict[str, t.Any]:
        """Flat dict matching Fig. 8's columns."""
        row: dict[str, t.Any] = {"scheme": self.partition.describe()}
        for i, stage in enumerate(self.stages, start=1):
            if stage.feasible:
                row[f"node{i}_mhz"] = stage.level.mhz  # type: ignore[union-attr]
            else:
                row[f"node{i}_mhz"] = f"> {stage.required_mhz:.0f} (infeasible)"
            row[f"node{i}_payload_kb"] = round(stage.comm_payload_kb, 1)
        row["feasible"] = self.feasible
        return row


def analyze_partitions(
    profile: TaskProfile,
    n_stages: int,
    timing: TransactionTiming,
    deadline_s: float,
    table: DVSTable,
    overhead_s: float = 0.0,
) -> list[PartitionAnalysis]:
    """Analyze every contiguous ``n_stages``-way partition of ``profile``.

    Infeasible stages are kept (with their continuous frequency
    requirement) rather than dropped — Fig. 8 reports them.
    """
    analyses = []
    for partition in enumerate_partitions(profile, n_stages):
        stages = []
        for assignment in partition.assignments:
            required = required_frequency_mhz(
                assignment, timing, deadline_s, table, overhead_s
            )
            try:
                plan = plan_node(
                    assignment, timing, deadline_s, table, overhead_s
                )
            except InfeasiblePartitionError:
                plan = None
            stages.append(
                StageAnalysis(
                    plan=plan,
                    required_mhz=required,
                    comm_payload_kb=bytes_to_kb(assignment.comm_payload_bytes),
                )
            )
        analyses.append(PartitionAnalysis(partition=partition, stages=tuple(stages)))
    return analyses


def estimate_average_current_ma(
    analysis: PartitionAnalysis,
    power_model: PowerModel,
    deadline_s: float,
    dvs_during_io: bool = True,
    table: DVSTable | None = None,
) -> list[float]:
    """Estimated per-stage average battery current under a scheme.

    A static (pre-simulation) energy estimate: each stage's frame is
    comm at the I/O level, PROC at the chosen level, idle for the
    slack. Used to rank schemes by expected discharge rate — the
    quantity the paper shows actually governs uptime.

    Raises
    ------
    InfeasiblePartitionError
        If the scheme has an infeasible stage.
    """
    if not analysis.feasible:
        raise InfeasiblePartitionError(
            f"scheme {analysis.partition.describe()} is infeasible"
        )
    currents = []
    for stage in analysis.stages:
        plan = stage.plan
        assert plan is not None
        io_level = (table or power_model.table).min if dvs_during_io else plan.level
        i_comm = power_model.current_ma(PowerMode.COMMUNICATION, io_level)
        i_comp = power_model.current_ma(PowerMode.COMPUTATION, plan.level)
        i_idle = power_model.current_ma(PowerMode.IDLE, plan.level)
        sched = plan.schedule
        charge = (
            sched.comm_s * i_comm
            + sched.proc_s * i_comp
            + max(0.0, sched.slack_s) * i_idle
        )
        currents.append(charge / deadline_s)
    return currents


def select_best(
    analyses: t.Sequence[PartitionAnalysis],
    power_model: PowerModel | None = None,
    deadline_s: float | None = None,
    criterion: str = "energy",
) -> PartitionAnalysis:
    """Pick the best feasible scheme.

    Criteria:

    ``"energy"`` (default)
        Minimize total switching activity (sum of f * V^2 over the
        chosen levels) — the paper's §5.3 reasoning, where scheme 1
        wins because "both nodes are allowed to run at much lower
        clock rates".
    ``"max-current"``
        Minimize the *maximum* per-stage average current — the
        discharge rate of the critical battery, which §6.5 identifies
        as what actually "decides the uptime of the whole system".
        Requires ``power_model`` and ``deadline_s``. Interestingly,
        under DVS-during-I/O this criterion can prefer scheme 2 (its
        heavy node idles more); the ablation benches quantify the gap.

    Ties break toward less communication payload.

    Raises
    ------
    InfeasiblePartitionError
        If no scheme is feasible.
    """
    feasible = [a for a in analyses if a.feasible]
    if not feasible:
        raise InfeasiblePartitionError("no feasible partitioning scheme")
    if criterion not in ("energy", "max-current"):
        raise ValueError(f"unknown criterion {criterion!r}")
    if criterion == "max-current" and (power_model is None or deadline_s is None):
        raise ValueError("'max-current' needs power_model and deadline_s")

    def key(a: PartitionAnalysis) -> tuple[float, float]:
        if criterion == "max-current":
            currents = estimate_average_current_ma(a, power_model, deadline_s)
            return (max(currents), a.total_payload_kb)
        return (a.total_switching_activity, a.total_payload_kb)

    return min(feasible, key=key)
