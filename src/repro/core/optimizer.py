"""Configuration search: what *should* this system run?

The paper hand-picks its configurations (scheme 1, DVS during I/O,
rotate every 100 frames). With the analytical lifetime predictor
(:mod:`repro.core.prediction`) each candidate costs microseconds, so
the whole design space — every contiguous partition up to a given
depth, with and without DVS-during-I/O, with and without node rotation
— can simply be enumerated and ranked. This is the design tool the
paper's methodology implies but never builds.

Rotation is predicted analytically too: for any rotation period that is
short against the battery's diffusion time constant (hours), a rotating
node's discharge is indistinguishable from cycling through all roles'
duty cycles back to back, so the balanced lifetime is the death time
under the concatenated cycle. The integration tests check this against
the event-driven engine.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.apps.atr.profile import TaskProfile
from repro.core.calibration import Anchor, predicted_lifetime_hours
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    DVSPolicy,
    SlowestFeasiblePolicy,
)
from repro.core.prediction import role_duty_cycle
from repro.errors import ConfigurationError, InfeasiblePartitionError
from repro.hw.battery.kibam import KiBaMParameters, PAPER_KIBAM_PARAMETERS
from repro.hw.dvs import SA1100_TABLE, DVSTable
from repro.hw.link import PAPER_LINK_TIMING, TransactionTiming
from repro.hw.power import PAPER_POWER_MODEL, PowerModel
from repro.pipeline.engine import RoleConfig
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition, enumerate_partitions

__all__ = [
    "Candidate",
    "predict_rotation_lifetime_hours",
    "optimize_configuration",
    "resolve_roles",
    "duty_cycle_currents",
    "mean_current_ma",
]


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One evaluated configuration.

    Attributes
    ----------
    description:
        Human-readable label (scheme, policy, rotation).
    n_stages:
        Pipeline depth (= batteries used).
    cuts:
        Partition cut points.
    dvs_during_io:
        Whether I/O runs at the minimum level.
    rotation:
        Whether roles rotate (balanced discharge).
    lifetime_hours:
        Predicted absolute system lifetime T (first death without
        rotation; common death with).
    normalized_hours:
        T / N — the paper's efficiency metric.
    per_stage_hours:
        Stage lifetimes without rotation (informational).
    """

    description: str
    n_stages: int
    cuts: tuple[int, ...]
    dvs_during_io: bool
    rotation: bool
    lifetime_hours: float
    normalized_hours: float
    per_stage_hours: tuple[float, ...]


def predict_rotation_lifetime_hours(
    roles: t.Sequence[RoleConfig],
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    battery: KiBaMParameters = PAPER_KIBAM_PARAMETERS,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
) -> float:
    """Balanced lifetime under ideal role rotation.

    Every node cycles through all roles' duty cycles, so each battery
    sees the same concatenated load pattern and they exhaust together.
    Valid for rotation periods short against the battery's diffusion
    time constant (any reasonable period; the paper's 100 frames is
    four minutes against a ~2.4 h constant).
    """
    segments: list = []
    for role in roles:
        segments.extend(role_duty_cycle(role, timing, deadline_s))
    anchor = Anchor("rotation", tuple(segments), 0.0)
    return predicted_lifetime_hours(anchor, battery, power_model, table)


def resolve_roles(
    profile: TaskProfile,
    cuts: t.Sequence[int],
    policy: DVSPolicy,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    table: DVSTable = SA1100_TABLE,
) -> tuple[RoleConfig, ...]:
    """Partition ``profile`` at ``cuts`` and pick operating points.

    The structural half of a configuration — everything a duty cycle
    needs except the power model — resolved in one step so prescreen
    rungs can share it across configs that differ only in battery or
    ``io_activity``.

    Raises
    ------
    ConfigurationError
        For invalid cuts.
    InfeasiblePartitionError
        When some stage cannot meet the deadline at any level.
    """
    partition = Partition(profile, tuple(cuts))
    plans = [
        plan_node(a, timing, deadline_s, table) for a in partition.assignments
    ]
    return tuple(policy.role_configs(plans, table))


def duty_cycle_currents(
    segments: t.Sequence,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
) -> tuple[tuple[float, float], ...]:
    """A duty cycle as ``(current_mA, duration_s)`` steps.

    Resolves each :class:`~repro.core.calibration.DutySegment` through
    the power model — the same expression the batch sweep's cycle
    builder evaluates, so analytic prescreens, cohort cells, and the
    scalar predictor all draw identical currents.
    """
    return tuple(
        (
            power_model.current_ma(seg.mode, table.level_at(seg.level_mhz)),
            seg.duration_s,
        )
        for seg in segments
    )


def mean_current_ma(cycle: t.Sequence[tuple[float, float]]) -> float:
    """Duration-weighted average current of a ``(mA, s)`` cycle."""
    total = sum(dt for _, dt in cycle)
    if total <= 0:
        raise ConfigurationError("cycle needs a positive total duration")
    return sum(i * dt for i, dt in cycle) / total


def _policy_for(dvs_during_io: bool, single_stage: bool) -> DVSPolicy:
    base: DVSPolicy = BaselinePolicy() if single_stage else SlowestFeasiblePolicy()
    # A single node has no slack to slow down in the paper's setting,
    # but SlowestFeasible == Baseline there anyway; use slowest-feasible
    # uniformly so looser deadlines still benefit.
    base = SlowestFeasiblePolicy()
    return DVSDuringIOPolicy(base) if dvs_during_io else base


def optimize_configuration(
    profile: TaskProfile,
    max_stages: int = 2,
    timing: TransactionTiming = PAPER_LINK_TIMING,
    deadline_s: float = 2.3,
    battery: KiBaMParameters = PAPER_KIBAM_PARAMETERS,
    power_model: PowerModel = PAPER_POWER_MODEL,
    table: DVSTable = SA1100_TABLE,
    objective: str = "normalized",
) -> list[Candidate]:
    """Enumerate and rank every configuration in the design space.

    Parameters
    ----------
    objective:
        ``"normalized"`` ranks by T/N (the paper's efficiency metric),
        ``"absolute"`` by raw system lifetime T.

    Returns
    -------
    Candidates sorted best-first; infeasible partitions are skipped.

    Raises
    ------
    ConfigurationError
        For an unknown objective or empty design space.
    """
    if objective not in ("normalized", "absolute"):
        raise ConfigurationError(f"unknown objective {objective!r}")

    candidates: list[Candidate] = []
    for n_stages in range(1, max_stages + 1):
        for partition in enumerate_partitions(profile, n_stages):
            for dvs_io in (False, True):
                try:
                    plans = [
                        plan_node(a, timing, deadline_s, table)
                        for a in partition.assignments
                    ]
                except InfeasiblePartitionError:
                    continue
                roles = _policy_for(dvs_io, n_stages == 1).role_configs(
                    plans, table
                )
                per_stage = tuple(
                    predicted_lifetime_hours_for_role(
                        role, timing, deadline_s, battery, power_model, table
                    )
                    for role in roles
                )
                base_label = partition.describe() + (
                    " +DVS-I/O" if dvs_io else ""
                )
                first_death = min(per_stage)
                candidates.append(
                    Candidate(
                        description=base_label,
                        n_stages=n_stages,
                        cuts=partition.cuts,
                        dvs_during_io=dvs_io,
                        rotation=False,
                        lifetime_hours=first_death,
                        normalized_hours=first_death / n_stages,
                        per_stage_hours=per_stage,
                    )
                )
                if n_stages >= 2:
                    balanced = predict_rotation_lifetime_hours(
                        roles, timing, deadline_s, battery, power_model, table
                    )
                    candidates.append(
                        Candidate(
                            description=base_label + " +rotation",
                            n_stages=n_stages,
                            cuts=partition.cuts,
                            dvs_during_io=dvs_io,
                            rotation=True,
                            lifetime_hours=balanced,
                            normalized_hours=balanced / n_stages,
                            per_stage_hours=per_stage,
                        )
                    )
    if not candidates:
        raise ConfigurationError(
            "no feasible configuration in the design space (deadline too tight?)"
        )
    key = (
        (lambda c: c.normalized_hours)
        if objective == "normalized"
        else (lambda c: c.lifetime_hours)
    )
    return sorted(candidates, key=key, reverse=True)


def predicted_lifetime_hours_for_role(
    role: RoleConfig,
    timing: TransactionTiming,
    deadline_s: float,
    battery: KiBaMParameters,
    power_model: PowerModel,
    table: DVSTable,
) -> float:
    """One stage's steady-state lifetime (thin wrapper for the optimizer)."""
    anchor = Anchor(
        "stage", role_duty_cycle(role, timing, deadline_s), 0.0
    )
    return predicted_lifetime_hours(anchor, battery, power_model, table)
