"""Unit conventions and converters used throughout :mod:`repro`.

The library uses a single set of canonical units so quantities can be
combined without bookkeeping:

========================  =====================
quantity                  canonical unit
========================  =====================
time                      seconds (``s``)
battery lifetime (report) hours (``h``)
current                   milliamperes (``mA``)
charge                    milliampere-seconds (``mA*s``)
battery capacity (report) milliampere-hours (``mAh``)
data size                 bytes
bandwidth                 bits per second
frequency                 megahertz (``MHz``)
voltage                   volts (``V``)
========================  =====================

The paper quotes payloads in "KB"; its numbers are consistent with
decimal kilobytes against the measured 80 Kbps PPP rate, so ``KB``
here is 1000 bytes (see :func:`kb_to_bytes`).
"""

from __future__ import annotations

__all__ = [
    "SECONDS_PER_HOUR",
    "BITS_PER_BYTE",
    "hours_to_seconds",
    "seconds_to_hours",
    "mah_to_mas",
    "mas_to_mah",
    "kb_to_bytes",
    "bytes_to_kb",
    "kbps_to_bps",
    "transfer_seconds",
]

SECONDS_PER_HOUR = 3600.0
BITS_PER_BYTE = 8


def hours_to_seconds(hours: float) -> float:
    """Convert hours to canonical seconds."""
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert canonical seconds to hours (for reporting lifetimes)."""
    return seconds / SECONDS_PER_HOUR


def mah_to_mas(mah: float) -> float:
    """Convert a capacity in mAh to canonical mA*s."""
    return mah * SECONDS_PER_HOUR


def mas_to_mah(mas: float) -> float:
    """Convert canonical mA*s to mAh (for reporting capacities)."""
    return mas / SECONDS_PER_HOUR


def kb_to_bytes(kb: float) -> int:
    """Convert the paper's "KB" payload figures to bytes (1 KB = 1000 B)."""
    return int(round(kb * 1000))


def bytes_to_kb(nbytes: float) -> float:
    """Convert bytes to the paper's decimal-KB convention."""
    return nbytes / 1000.0


def kbps_to_bps(kbps: float) -> float:
    """Convert kilobits/second to bits/second."""
    return kbps * 1000.0


def transfer_seconds(payload_bytes: float, bandwidth_bps: float) -> float:
    """Pure wire time (no startup) to move ``payload_bytes`` at ``bandwidth_bps``.

    >>> round(transfer_seconds(10_100, 80_000), 3)   # Fig. 6 input frame
    1.01
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if payload_bytes < 0:
        raise ValueError(f"payload must be non-negative, got {payload_bytes}")
    return payload_bytes * BITS_PER_BYTE / bandwidth_bps
