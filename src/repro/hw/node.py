"""The node: one Itsy pocket computer.

A node bundles a DVS-capable CPU, a battery, and serial-link endpoints
behind a *power-mode state machine*. The paper's §4.4 taxonomy — idle /
communication / computation — maps one-to-one onto
:class:`~repro.hw.power.PowerMode`; the battery is integrated lazily
over the piecewise-constant segments between mode changes, and a death
timer is (re)scheduled on every change so battery exhaustion interrupts
the node at the exact simulated instant the available charge runs out.
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError, SimulationError
from repro.hw.battery import Battery, BatteryMonitor
from repro.hw.dvs import DVSTable, FrequencyLevel
from repro.hw.link import SerialLink, Transfer
from repro.hw.power import PowerMode, PowerModel
from repro.sim import Event, Process, Simulator, TraceRecorder

#: PowerMode -> display string, precomputed: segment closes and DVS
#: events need the string form, and enum __str__ is a measurable cost
#: on the per-segment path.
_MODE_STR = {m: str(m) for m in PowerMode}

__all__ = ["ItsyNode", "NodeDead"]


class NodeDead:
    """Interrupt cause delivered to a node's processes on battery death.

    Attributes
    ----------
    node:
        Name of the node that died.
    time_s:
        Simulated time of death.
    """

    def __init__(self, node: str, time_s: float):
        self.node = node
        self.time_s = time_s

    def __repr__(self) -> str:
        return f"NodeDead({self.node!r} at {self.time_s:.3f}s)"


class ItsyNode:
    """One battery-powered, DVS-capable pipeline node.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Actor name, used in traces and link endpoints.
    battery:
        The node's private battery (the paper's point is precisely that
        batteries are *not* shared).
    power_model:
        Mode/frequency -> current lookup.
    dvs_table:
        Available operating points.
    trace:
        Optional trace recorder (Figs. 2/3/9).
    monitor:
        Optional battery telemetry.
    obs:
        Optional telemetry event bus; the node publishes ``dvs.switch``
        (level changes), ``link.stall`` (blocked rendezvous) and
        ``battery.dead`` records.
    ledger:
        Optional :class:`~repro.obs.energy.EnergyLedger`; every closed
        battery segment is attributed to a ``(node, mode, bucket)``
        triple (block name / ``"link"`` / ``"idle"``).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        battery: Battery,
        power_model: PowerModel,
        dvs_table: DVSTable,
        trace: TraceRecorder | None = None,
        monitor: BatteryMonitor | None = None,
        obs: t.Any = None,
        ledger: t.Any = None,
    ):
        self.sim = sim
        self.name = name
        self.battery = battery
        self.power_model = power_model
        self.dvs_table = dvs_table
        self.trace = trace
        self.monitor = monitor
        # Falsy bus -> None: set_state/transfer guard every emit with
        # ``if self.obs is not None:`` in the hottest loops of the simulation, and a
        # None test is free where a disabled EventLog's __bool__ is not.
        self.obs = obs if obs else None
        #: Optional energy-attribution ledger (repro.obs.energy); None
        #: keeps the per-segment cost at one C-level test.
        self._ledger = ledger

        self.mode = PowerMode.IDLE
        self.level: FrequencyLevel = dvs_table.min
        self.activity = "idle"
        self._detail = ""
        self._segment_start = sim.now
        self._current_ma = power_model.current_ma(self.mode, self.level)

        #: Fires (once) with a :class:`NodeDead` when the battery dies.
        self.died: Event = sim.event()
        self.death_time_s: float | None = None
        # Earliest pending death-timer target (absolute sim time); inf
        # when no timer is outstanding. See _schedule_death_timer. The
        # timer event itself is kept alongside because identity — not
        # the armed-for timestamp — must decide whether a firing timer
        # is the earliest pending one: a fast-forward warp shifts
        # targets after timers are armed.
        self._armed_at = float("inf")
        self._armed_timer: Event | None = None
        self._current_cache: dict[tuple[PowerMode, FrequencyLevel], float] = {}
        self._attached: list[Process] = []
        self._open_offers: list[tuple[SerialLink, Event]] = []
        #: Completed frames this node has fully processed (diagnostics).
        self.frames_processed = 0
        #: DVS level changes performed (the paper treats them as free;
        #: the switch-cost ablation uses this to quantify that choice).
        self.level_switches = 0
        #: Rendezvous the node had to *wait* for (the link partner was
        #: not yet ready when this side offered). A perfectly balanced
        #: pipeline stalls only at the frame cadence; growing stalls
        #: indicate an upstream/downstream imbalance.
        self.io_stalls = 0
        #: Fast-forward instrumentation: when a list is installed here
        #: (see :mod:`repro.sim.fastforward`), every closed segment
        #: appends ``(current_ma, dt_s, mode, bucket)`` so the
        #: steady-state detector can compare whole duty-cycle windows
        #: and a jump can advance the energy ledger analytically. None
        #: (the default) costs one C-level test per segment.
        self._draw_log: list[tuple[float, float, str, str]] | None = None

        self._schedule_death_timer()

    # -- state inspection -------------------------------------------------
    @property
    def is_dead(self) -> bool:
        """True once the battery has been exhausted."""
        return self.mode is PowerMode.DEAD

    @property
    def current_ma(self) -> float:
        """Present battery current draw."""
        return self._current_ma

    def attach(self, process: Process) -> Process:
        """Register a process to be interrupted when this node dies."""
        self._attached.append(process)
        return process

    def spawn(self, generator: t.Generator, name: str | None = None) -> Process:
        """Start and attach a process in one call."""
        return self.attach(self.sim.process(generator, name=name or self.name))

    # -- the power-mode state machine ----------------------------------
    def set_state(
        self,
        mode: PowerMode,
        level: FrequencyLevel | None = None,
        activity: str | None = None,
        detail: str = "",
    ) -> None:
        """Transition to ``mode`` (and optionally a new DVS level) *now*.

        Integrates the battery over the segment just ended, records it
        in the trace, and reschedules the death timer for the new draw.
        """
        if self.is_dead:
            raise SimulationError(f"node {self.name!r} is dead; cannot set state")
        if level is None:
            level = self.level
        elif level is not self.level:
            # Membership is only worth checking for a genuinely new
            # level object: the current one was validated when set.
            if level not in self.dvs_table.levels:
                raise ConfigurationError(f"{level} is not in this node's DVS table")
            self.level_switches += 1
            if self.obs is not None:
                self.obs.emit(
                    "dvs.switch",
                    self.sim.now,
                    self.name,
                    from_mhz=self.level.mhz,
                    to_mhz=level.mhz,
                    mode=_MODE_STR[mode],
                )
        self._close_segment()
        self.mode = mode
        self.level = level
        self.activity = activity if activity is not None else _MODE_STR[mode]
        self._detail = detail
        key = (mode, level)
        current = self._current_cache.get(key)
        if current is None:
            current = self._current_cache[key] = self.power_model.current_ma(mode, level)
        self._current_ma = current
        self._schedule_death_timer()

    def _segment_bucket(self) -> str:
        """Attribution bucket of the *current* (closing) segment.

        Computation segments carry the ATR block name (the ``"proc"``
        detail is ``"<block> f<frame>"``; the frame suffix is stripped
        so buckets repeat identically across periods — a requirement of
        fast-forward window matching); other computation activities
        (``"reconfig"``, ``"wake"``) keep their activity name.
        Communication is ``"link"``, everything else ``"idle"``.
        """
        mode = self.mode
        if mode is PowerMode.COMPUTATION:
            activity = self.activity
            if activity == "proc":
                block = self._detail.rpartition(" f")[0]
                return block if block else "proc"
            return activity
        if mode is PowerMode.COMMUNICATION:
            return "link"
        return "idle"

    def _close_segment(self) -> None:
        """Integrate battery/trace over [segment_start, now]."""
        now = self.sim.now
        dt = now - self._segment_start
        if dt > 0:
            self.battery.draw(self._current_ma, dt)
            ledger = self._ledger
            if self._draw_log is not None or ledger is not None:
                bucket = self._segment_bucket()
                if self._draw_log is not None:
                    self._draw_log.append(
                        (self._current_ma, dt, _MODE_STR[self.mode], bucket)
                    )
                if ledger is not None:
                    ledger.add(
                        self.name, _MODE_STR[self.mode], bucket, self._current_ma, dt
                    )
            if self.monitor is not None:
                self.monitor.observe(now, self._current_ma, dt, _MODE_STR[self.mode])
            if self.trace is not None:
                self.trace.add(
                    self.name,
                    self._segment_start,
                    now,
                    self.activity,
                    frequency_mhz=self.level.mhz,
                    current_ma=self._current_ma,
                    detail=self._detail,
                )
        self._segment_start = now

    def warp(self, delta: float) -> None:
        """Shift this node's absolute-time bookkeeping after a time warp.

        Called by the fast-forward engine *after* the battery has been
        advanced analytically and :meth:`Simulator.warp` has shifted the
        clock and the pending schedule (including any outstanding death
        timers, which move with the heap). The open segment keeps its
        elapsed portion; ``_armed_at`` tracks its (shifted) timer; and
        the death timer is re-armed because the drained battery's bound
        is now much tighter than whatever was pending before the jump —
        without the re-arm, death inside the first post-jump epoch could
        be missed.
        """
        self._segment_start += delta
        if self._armed_at != float("inf"):
            self._armed_at += delta
        self._schedule_death_timer()

    # -- death handling -----------------------------------------------------
    def _schedule_death_timer(self) -> None:
        """Arm a one-shot callback no later than battery exhaustion.

        Timers are *lazy*: one is armed only when the new draw could
        kill the node before the earliest already-pending timer fires
        (``_armed_at``). State changes far from death therefore cost no
        timer events at all — a timer that fires early simply re-checks
        the battery under the then-current draw and re-arms. Safety
        invariant: whenever the node can die, some pending timer fires
        at or before ``_segment_start + time_to_death_lower_bound()``,
        which never exceeds the true death instant.
        """
        bound = self.battery.time_to_death_lower_bound(self._current_ma)
        if bound == float("inf"):
            return
        target = self._segment_start + bound
        if target >= self._armed_at:
            return  # a pending timer already fires soon enough
        self._arm_death_timer(target)

    def _arm_death_timer(self, target: float) -> None:
        self._armed_at = target
        timer = self.sim.timeout(max(0.0, target - self.sim.now))
        self._armed_timer = timer
        timer.add_callback(self._on_death_timer)

    def _on_death_timer(self, event: Event) -> None:
        if event is self._armed_timer:
            self._armed_at = float("inf")
            self._armed_timer = None
        if self.is_dead:
            return
        # Battery state is lazily integrated: it is current as of
        # _segment_start. Re-check the cheap bound first — a lazily
        # armed timer often fires early because the draw dropped after
        # it was armed — and root-solve only when the bound says death
        # is due under the present draw.
        bound = self.battery.time_to_death_lower_bound(self._current_ma)
        target = self._segment_start + bound
        if target > self.sim.now + 1e-9:
            if target < self._armed_at:
                self._arm_death_timer(target)
            return
        exact = self.battery.time_to_death(self._current_ma)
        death_at = self._segment_start + exact
        if death_at > self.sim.now + 1e-9:
            if death_at < self._armed_at:
                self._arm_death_timer(death_at)
            return
        self._die()

    def fail_at(self, time_s: float) -> None:
        """Schedule a forced failure at absolute simulated time ``time_s``.

        Fault injection for testing the §5.4 recovery protocol with a
        failure cause other than battery exhaustion (a crash, a pulled
        battery): the node dies at exactly that instant, with whatever
        charge remains stranded.
        """
        if time_s < self.sim.now:
            raise SimulationError(
                f"cannot schedule a failure in the past ({time_s} < {self.sim.now})"
            )
        timer = self.sim.timeout(time_s - self.sim.now)
        timer.add_callback(lambda _event: None if self.is_dead else self._die())

    def _die(self) -> None:
        """Common death path: close accounting, notify, cancel offers."""
        self._close_segment()
        self.mode = PowerMode.DEAD
        self.activity = "dead"
        self._current_ma = 0.0
        self.death_time_s = self.sim.now
        # Withdraw pending link offers so live peers cannot rendezvous
        # with a corpse.
        for link, offer in self._open_offers:
            link.cancel(offer)
        self._open_offers.clear()
        if self.obs is not None:
            self.obs.emit(
                "battery.dead",
                self.sim.now,
                self.name,
                delivered_mah=self.battery.delivered_mah,
            )
        cause = NodeDead(self.name, self.sim.now)
        self.died.succeed(cause)
        for process in self._attached:
            if process.is_alive:
                process.interrupt(cause)

    # -- behaviour helpers (generators for process bodies) ---------------
    def compute(
        self,
        seconds_at_max: float,
        level: FrequencyLevel,
        activity: str = "proc",
        detail: str = "",
    ) -> t.Generator:
        """Run ``seconds_at_max`` (profiled at f_max) of work at ``level``.

        Yields inside a process body::

            yield from node.compute(0.162, level)
        """
        scaled = self.dvs_table.scale_time(seconds_at_max, level)
        self.set_state(PowerMode.COMPUTATION, level, activity, detail)
        yield self.sim.timeout(scaled)
        self.set_state(PowerMode.IDLE, level, "idle")

    def transfer(
        self,
        link: SerialLink,
        grant: Event,
        io_level: FrequencyLevel,
        activity: str,
        detail: str = "",
        frame: int | None = None,
    ) -> t.Generator:
        """Complete one link transaction, managing power modes.

        The node idles (at its current level) while waiting for the
        rendezvous, switches to COMMUNICATION at ``io_level`` for the
        transaction itself, then returns to IDLE. Returns the
        :class:`~repro.hw.link.Transfer`. ``frame`` tags the resulting
        ``link.stall`` event when the caller knows which frame the
        rendezvous serves (send sides do; receive sides are waiting for
        a frame they have not seen yet).
        """
        self._open_offers.append((link, grant))
        if not grant.triggered:
            self.io_stalls += 1
            if self.obs is not None:
                if frame is None:
                    self.obs.emit(
                        "link.stall", self.sim.now, self.name, activity=activity
                    )
                else:
                    self.obs.emit(
                        "link.stall",
                        self.sim.now,
                        self.name,
                        activity=activity,
                        frame=frame,
                    )
        self.set_state(PowerMode.IDLE, self.level, "wait", detail)
        try:
            transfer: Transfer = yield grant
        finally:
            try:
                self._open_offers.remove((link, grant))
            except ValueError:
                pass  # already cleared by death handling
        self.set_state(PowerMode.COMMUNICATION, io_level, activity, detail)
        yield transfer.done
        self.set_state(PowerMode.IDLE, io_level, "idle")
        return transfer

    def transfer_or_timeout(
        self,
        link: SerialLink,
        grant: Event,
        io_level: FrequencyLevel,
        activity: str,
        timeout_s: float,
        detail: str = "",
        frame: int | None = None,
    ) -> t.Generator:
        """Like :meth:`transfer`, but give up after ``timeout_s`` waiting.

        Returns the :class:`~repro.hw.link.Transfer`, or ``None`` if the
        rendezvous did not start within the timeout (the offer is then
        withdrawn). This is the primitive the §5.4 failure-detection
        protocol is built on.
        """
        self._open_offers.append((link, grant))
        if not grant.triggered:
            self.io_stalls += 1
            if self.obs is not None:
                if frame is None:
                    self.obs.emit(
                        "link.stall", self.sim.now, self.name, activity=activity
                    )
                else:
                    self.obs.emit(
                        "link.stall",
                        self.sim.now,
                        self.name,
                        activity=activity,
                        frame=frame,
                    )
        self.set_state(PowerMode.IDLE, self.level, "wait", detail)
        timer = self.sim.timeout(timeout_s)
        try:
            yield self.sim.any_of([grant, timer])
        finally:
            try:
                self._open_offers.remove((link, grant))
            except ValueError:
                pass  # already cleared by death handling
        if not grant.triggered:
            link.cancel(grant)
            return None
        transfer: Transfer = grant.value
        self.set_state(PowerMode.COMMUNICATION, io_level, activity, detail)
        yield transfer.done
        self.set_state(PowerMode.IDLE, io_level, "idle")
        return transfer

    def comm_delay(
        self, seconds: float, io_level: FrequencyLevel, activity: str = "ack", detail: str = ""
    ) -> t.Generator:
        """Spend fixed time in COMMUNICATION mode without a link partner.

        Models protocol exchanges with the mains-powered host (whose
        side of the transaction costs it nothing we account for), e.g.
        acknowledgment transactions in the recovery protocol.
        """
        if seconds <= 0:
            return
        self.set_state(PowerMode.COMMUNICATION, io_level, activity, detail)
        yield self.sim.timeout(seconds)
        self.set_state(PowerMode.IDLE, io_level, "idle")

    def idle_for(self, seconds: float, level: FrequencyLevel | None = None) -> t.Generator:
        """Idle at ``level`` (default: current) for a fixed time."""
        self.set_state(PowerMode.IDLE, level or self.level, "idle")
        yield self.sim.timeout(seconds)

    def sleep_for(self, seconds: float, wake_latency_s: float = 0.0) -> t.Generator:
        """Deep-sleep for ``seconds``, then pay the wake-up latency.

        Sleep draws the power model's flat ``sleep_ma``; the wake-up
        (PLL restart, DRAM exit from self-refresh) is charged at the
        computation current of the current level. The Itsy platform
        supports this mode; the paper's experiments idle instead — the
        sleep-in-slack extension measures the difference.
        """
        if seconds <= 0:
            return
        self.set_state(PowerMode.SLEEP, self.level, "sleep")
        yield self.sim.timeout(seconds)
        if wake_latency_s > 0:
            self.set_state(PowerMode.COMPUTATION, self.level, "wake")
            yield self.sim.timeout(wake_latency_s)
        self.set_state(PowerMode.IDLE, self.level, "idle")

    def reconfigure(self, seconds: float, detail: str = "") -> t.Generator:
        """Spend ``seconds`` reloading code during a rotation (§5.5).

        Modelled at computation power: the node is refreshing its code
        memory, not sleeping.
        """
        if seconds <= 0:
            return
        self.set_state(PowerMode.COMPUTATION, self.level, "reconfig", detail)
        yield self.sim.timeout(seconds)
        self.set_state(PowerMode.IDLE, self.level, "idle")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ItsyNode {self.name!r} {self.mode} @ {self.level}>"
