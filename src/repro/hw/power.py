"""Per-mode battery-current model (the paper's Fig. 7).

The Itsy draws three distinct current levels depending on what it is
doing — *idle*, *communication*, *computation* — each rising with the
DVS operating point. Fig. 7 plots these three curves over the 11
frequency levels; the text quotes enough anchor points to pin them:

- curves "range from 30 mA to 130 mA" (§4.4);
- communication: 110 mA at 206.4 MHz, 40 mA at 59 MHz (§6.3),
  55 mA at 103.2 MHz (§6.5);
- computation "always dominates" and peaks at 130 mA;
- idle bottoms out at 30 mA at 59 MHz.

Each curve is affine in the CMOS dynamic-power proxy ``f * V^2``:

    I_mode(level) = static_ma + dynamic_ma_per_unit * f * V^2

which reproduces all quoted anchors (the 103.2 MHz comm point comes out
at 53.5 mA against the quoted ~55 mA) and interpolates the full table.

Effective I/O current
---------------------
The measured comm curve is *peak transfer* draw. During an I/O period
the CPU mostly waits on the ~80 Kbps serial port, so the effective
current sits near the idle curve. :class:`PowerModel` exposes an
``io_activity`` factor in [0, 1] interpolating between idle and comm
current; its calibrated value (see :mod:`repro.core.calibration`) is
~0.27, consistent with an 80 Kbps port serviced by a >59 MHz CPU.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as t

from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE, DVSTable, FrequencyLevel

__all__ = ["PowerMode", "CurrentCurve", "PowerModel", "PAPER_POWER_MODEL"]


class PowerMode(enum.Enum):
    """Operating mode of a node, in the paper's taxonomy (§4.4)."""

    IDLE = "idle"
    COMMUNICATION = "communication"
    COMPUTATION = "computation"
    #: Deep sleep (clock stopped, DRAM in self-refresh). The Itsy
    #: platform supports it; the paper's experiments never use it —
    #: the sleep-in-slack extension quantifies what it would buy.
    SLEEP = "sleep"
    #: Node whose battery is exhausted; draws nothing.
    DEAD = "dead"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class CurrentCurve:
    """Affine current model ``I = static_ma + slope * f * V^2``.

    Attributes
    ----------
    static_ma:
        Frequency-independent draw (leakage, peripherals), mA.
    slope_ma_per_unit:
        Dynamic draw per MHz*V^2, mA.
    """

    static_ma: float
    slope_ma_per_unit: float

    def current_ma(self, level: FrequencyLevel) -> float:
        """Current at the given operating point, in mA."""
        return self.static_ma + self.slope_ma_per_unit * level.switching_activity

    @classmethod
    def through(
        cls, low: tuple[FrequencyLevel, float], high: tuple[FrequencyLevel, float]
    ) -> "CurrentCurve":
        """Fit the affine curve through two (level, current) anchors."""
        (lv_a, i_a), (lv_b, i_b) = low, high
        da, db = lv_a.switching_activity, lv_b.switching_activity
        if abs(db - da) < 1e-12:
            raise ConfigurationError("anchor levels must differ")
        slope = (i_b - i_a) / (db - da)
        return cls(static_ma=i_a - slope * da, slope_ma_per_unit=slope)


class PowerModel:
    """Battery-current lookup for a node: mode x frequency -> mA.

    Parameters
    ----------
    table:
        The DVS table the curves are defined over.
    idle, communication, computation:
        The three per-mode curves.
    io_activity:
        Fraction in [0, 1] interpolating *effective* I/O-period current
        between the idle curve (0) and the peak communication curve (1).
    sleep_ma:
        Frequency-independent deep-sleep draw. The Itsy hardware
        reports ~1-9 mW in sleep; 1 mA at the 4 V pack is a
        conservative default.
    """

    def __init__(
        self,
        table: DVSTable,
        idle: CurrentCurve,
        communication: CurrentCurve,
        computation: CurrentCurve,
        io_activity: float = 1.0,
        sleep_ma: float = 1.0,
    ):
        if not 0.0 <= io_activity <= 1.0:
            raise ConfigurationError(
                f"io_activity must be in [0, 1], got {io_activity}"
            )
        if sleep_ma < 0:
            raise ConfigurationError(f"sleep current must be >= 0: {sleep_ma}")
        self.table = table
        self.curves: dict[PowerMode, CurrentCurve] = {
            PowerMode.IDLE: idle,
            PowerMode.COMMUNICATION: communication,
            PowerMode.COMPUTATION: computation,
        }
        self.io_activity = io_activity
        self.sleep_ma = sleep_ma

    # -- queries -----------------------------------------------------------
    def current_ma(self, mode: PowerMode, level: FrequencyLevel) -> float:
        """Current draw in ``mode`` at ``level``.

        ``COMMUNICATION`` returns the *effective* I/O-period current
        (idle + io_activity * (comm_peak - idle)); use
        :meth:`peak_current_ma` for the raw Fig. 7 curve. ``DEAD``
        draws 0.
        """
        if mode is PowerMode.DEAD:
            return 0.0
        if mode is PowerMode.SLEEP:
            return self.sleep_ma
        if mode is PowerMode.COMMUNICATION:
            idle = self.curves[PowerMode.IDLE].current_ma(level)
            peak = self.curves[PowerMode.COMMUNICATION].current_ma(level)
            return idle + self.io_activity * (peak - idle)
        return self.curves[mode].current_ma(level)

    def peak_current_ma(self, mode: PowerMode, level: FrequencyLevel) -> float:
        """The raw Fig. 7 curve value (no io_activity adjustment)."""
        if mode is PowerMode.DEAD:
            return 0.0
        if mode is PowerMode.SLEEP:
            return self.sleep_ma
        return self.curves[mode].current_ma(level)

    def replace(self, **kwargs: t.Any) -> "PowerModel":
        """Return a copy with some attributes replaced (e.g. io_activity)."""
        return PowerModel(
            table=kwargs.get("table", self.table),
            idle=kwargs.get("idle", self.curves[PowerMode.IDLE]),
            communication=kwargs.get(
                "communication", self.curves[PowerMode.COMMUNICATION]
            ),
            computation=kwargs.get("computation", self.curves[PowerMode.COMPUTATION]),
            io_activity=kwargs.get("io_activity", self.io_activity),
            sleep_ma=kwargs.get("sleep_ma", self.sleep_ma),
        )

    # -- Fig. 7 reproduction ------------------------------------------------
    def figure7_rows(self) -> list[dict[str, float]]:
        """The Fig. 7 table: one row per frequency level.

        Each row carries the frequency, voltage, and the three *peak*
        per-mode currents (what the paper's power monitor plots).
        """
        rows = []
        for level in self.table:
            rows.append(
                {
                    "freq_mhz": level.mhz,
                    "volts": level.volts,
                    "idle_ma": self.peak_current_ma(PowerMode.IDLE, level),
                    "communication_ma": self.peak_current_ma(
                        PowerMode.COMMUNICATION, level
                    ),
                    "computation_ma": self.peak_current_ma(
                        PowerMode.COMPUTATION, level
                    ),
                }
            )
        return rows


def _paper_model() -> PowerModel:
    """Build the Fig. 7 model from the paper's quoted anchors."""
    tbl = SA1100_TABLE
    lo, mid, hi = tbl.level_at(59.0), tbl.level_at(103.2), tbl.level_at(206.4)
    comm = CurrentCurve.through((lo, 40.0), (hi, 110.0))
    # Quoted mid anchor is a consistency check, not a fit input:
    assert abs(comm.current_ma(mid) - 55.0) < 2.0
    comp = CurrentCurve(static_ma=32.0, slope_ma_per_unit=(130.0 - 32.0) / hi.switching_activity)
    # Idle anchors: 30 mA at 59 MHz (quoted curve floor); the 206.4 MHz
    # idle point (38.23 mA) and io_activity (0.2719) are calibrated
    # jointly with the battery parameters against five of the paper's
    # measured lifetimes — (0A), (0B), (1), (1A) and (2) — see
    # repro.core.calibration and DESIGN.md.
    idle = CurrentCurve.through((lo, 30.0), (hi, 38.23))
    return PowerModel(tbl, idle=idle, communication=comm, computation=comp, io_activity=0.27185)


#: Power model matching the paper's Fig. 7 anchors, with the calibrated
#: effective-I/O activity factor.
PAPER_POWER_MODEL = _paper_model()
