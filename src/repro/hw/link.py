"""The serial/PPP link model.

The Itsy network is built from serial ports running PPP (§4.2):
115.2 Kbps nominal, ~80 Kbps measured goodput, and a 50-100 ms startup
cost per communication transaction. Those three numbers fully determine
the Fig. 6 communication delays::

    duration(payload) = startup + payload_bytes * 8 / bandwidth_bps

The startup residual implied by Fig. 6's end-to-end anchors (10.1 KB
in 1.1 s, 0.1 KB in 0.1 s) at the 80 Kbps wire rate is 0.09 s, inside
the paper's 50-100 ms range; that is the deterministic default, and it
makes the baseline budget exact: 1.1 s RECV + 0.1 s SEND + 1.1 s PROC
= D = 2.3 s. A stochastic mode draws each startup
uniformly from [50 ms, 100 ms] instead.

Transfer semantics
------------------
A transfer is a *rendezvous*: the sender offers a message, the receiver
offers readiness, and the transaction starts when both are present
(matching Figs. 2/3, where a SEND on one node overlaps the RECV on the
next). Both sides learn the :class:`Transfer` at start time and both
complete together at ``start + duration``.

The link is full-duplex: each direction has its own rendezvous queue,
so a reverse-direction acknowledgment (used by the §5.4 power-failure
recovery protocol) does not contend with forward data.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t

import numpy as np

from repro.errors import LinkError
from repro.sim import Event, Simulator
from repro.units import transfer_seconds

__all__ = ["TransactionTiming", "Transfer", "SerialLink", "PAPER_LINK_TIMING"]


@dataclasses.dataclass(frozen=True)
class TransactionTiming:
    """Timing parameters of one serial hop.

    Attributes
    ----------
    bandwidth_bps:
        Effective goodput in bits/second (paper: 80 Kbps measured).
    startup_s:
        Deterministic per-transaction startup cost in seconds.
    startup_jitter_s:
        Half-width of the uniform startup jitter; 0 means deterministic.
        With jitter ``j``, startups are uniform in
        ``[startup_s - j, startup_s + j]``.
    corruption_prob:
        Probability that a transaction attempt is corrupted and must be
        retransmitted whole (stop-and-wait at transaction granularity —
        the reliability the paper's TCP sockets provide over a noisy
        serial line). 0 disables the error model.
    """

    bandwidth_bps: float = 80_000.0
    startup_s: float = 0.09
    startup_jitter_s: float = 0.0
    corruption_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise LinkError(f"bandwidth must be positive: {self.bandwidth_bps}")
        if self.startup_s < 0:
            raise LinkError(f"startup must be non-negative: {self.startup_s}")
        if not 0 <= self.startup_jitter_s <= self.startup_s:
            raise LinkError(
                "startup jitter must be in [0, startup_s]: "
                f"{self.startup_jitter_s} vs {self.startup_s}"
            )
        if not 0.0 <= self.corruption_prob < 1.0:
            raise LinkError(
                f"corruption probability must be in [0, 1): {self.corruption_prob}"
            )

    def nominal_duration(self, payload_bytes: int) -> float:
        """Expected transaction time (mean over jitter and retries).

        What static schedule analysis and required-frequency arithmetic
        use — planning against the mean, as the paper's fixed frame
        budget does. With corruption probability ``p`` a stop-and-wait
        transaction takes ``1/(1-p)`` attempts in expectation.
        """
        if payload_bytes < 0:
            raise LinkError(f"payload must be non-negative: {payload_bytes}")
        per_attempt = self.startup_s + transfer_seconds(
            payload_bytes, self.bandwidth_bps
        )
        return per_attempt / (1.0 - self.corruption_prob)

    def _attempt_duration(self, payload_bytes: int, rng: np.random.Generator | None) -> float:
        attempt = self.startup_s + transfer_seconds(payload_bytes, self.bandwidth_bps)
        if self.startup_jitter_s > 0:
            assert rng is not None
            attempt += float(
                rng.uniform(-self.startup_jitter_s, self.startup_jitter_s)
            )
        return attempt

    def duration(self, payload_bytes: int, rng: np.random.Generator | None = None) -> float:
        """Total transaction time: jitter plus any retransmissions."""
        if payload_bytes < 0:
            raise LinkError(f"payload must be non-negative: {payload_bytes}")
        stochastic = self.startup_jitter_s > 0 or self.corruption_prob > 0
        if stochastic and rng is None:
            raise LinkError("stochastic timing requires an RNG stream")
        total = self._attempt_duration(payload_bytes, rng)
        while self.corruption_prob > 0 and float(rng.uniform()) < self.corruption_prob:
            total += self._attempt_duration(payload_bytes, rng)
        return total


#: Paper-faithful timing: 80 Kbps measured goodput, 90 ms startup
#: (the startup residual of Fig. 6's end-to-end delay anchors, inside
#: the quoted 50-100 ms range).
PAPER_LINK_TIMING = TransactionTiming()

#: Timing with the paper's quoted startup spread, for stochastic runs:
#: uniform in [50 ms, 100 ms].
PAPER_LINK_TIMING_JITTERED = TransactionTiming(startup_s=0.075, startup_jitter_s=0.025)


@dataclasses.dataclass
class Transfer:
    """One in-flight (or completed) transaction.

    Attributes
    ----------
    message:
        The payload object (opaque to the link).
    payload_bytes:
        Size used for timing.
    start_s:
        Simulated time the rendezvous matched.
    duration_s:
        Startup + wire time.
    done:
        Event firing with this :class:`Transfer` at ``start_s + duration_s``.
    """

    message: t.Any
    payload_bytes: int
    start_s: float
    duration_s: float
    done: Event

    @property
    def end_s(self) -> float:
        """Completion timestamp."""
        return self.start_s + self.duration_s


@dataclasses.dataclass
class _Offer:
    """A queued side of a rendezvous (pending send or recv)."""

    event: Event
    message: t.Any = None
    payload_bytes: int = 0
    cancelled: bool = False


class SerialLink:
    """Full-duplex point-to-point serial link between two named endpoints.

    Parameters
    ----------
    sim:
        Owning simulator.
    a, b:
        Endpoint names; every offer must name one of them.
    timing:
        Transaction timing parameters.
    rng:
        RNG stream for startup jitter (required if timing is jittered).

    Examples
    --------
    Sender and receiver rendezvous; both observe the same transfer::

        grant_r = link.offer_recv(to="node2")
        grant_s = link.offer_send("frame", 600, frm="node1")
        # ... in processes:
        transfer = yield grant_s      # fires at transaction start
        yield transfer.done           # fires at completion
    """

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        timing: TransactionTiming = PAPER_LINK_TIMING,
        rng: np.random.Generator | None = None,
        obs: t.Any = None,
    ):
        if a == b:
            raise LinkError(f"link endpoints must differ, got {a!r} twice")
        self.sim = sim
        self.a = a
        self.b = b
        self.timing = timing
        self.rng = rng
        #: Optional telemetry event bus; every matched rendezvous
        #: publishes one ``link.xfer`` record. Falsy (disabled) buses
        #: are normalized to None so the per-rendezvous guard is free.
        self.obs = obs if obs else None
        # Per-direction rendezvous queues, keyed by the *sending* endpoint.
        self._sends: dict[str, collections.deque[_Offer]] = {
            a: collections.deque(),
            b: collections.deque(),
        }
        self._recvs: dict[str, collections.deque[_Offer]] = {
            a: collections.deque(),
            b: collections.deque(),
        }
        #: Completed-transfer count per direction (diagnostics).
        self.transfer_count: dict[str, int] = {a: 0, b: 0}
        #: Total payload bytes moved per direction (diagnostics).
        self.bytes_moved: dict[str, int] = {a: 0, b: 0}

    # -- public API ---------------------------------------------------------
    def peer_of(self, endpoint: str) -> str:
        """The other endpoint's name."""
        self._check_endpoint(endpoint)
        return self.b if endpoint == self.a else self.a

    def offer_send(self, message: t.Any, payload_bytes: int, *, frm: str) -> Event:
        """Offer a message for transmission from endpoint ``frm``.

        Returns an event that fires with the :class:`Transfer` at
        *transaction start*; wait on ``transfer.done`` for completion.
        """
        self._check_endpoint(frm)
        if payload_bytes < 0:
            raise LinkError(f"payload must be non-negative: {payload_bytes}")
        offer = _Offer(event=Event(self.sim), message=message, payload_bytes=payload_bytes)
        self._sends[frm].append(offer)
        self._try_match(frm)
        return offer.event

    def offer_recv(self, *, to: str) -> Event:
        """Declare endpoint ``to`` ready to receive.

        Returns an event that fires with the :class:`Transfer` at
        transaction start (same object the sender sees).
        """
        self._check_endpoint(to)
        offer = _Offer(event=Event(self.sim))
        self._recvs[self.peer_of(to)].append(offer)
        self._try_match(self.peer_of(to))
        return offer.event

    def cancel(self, grant: Event) -> bool:
        """Withdraw a not-yet-matched offer identified by its grant event.

        Returns True if the offer was found pending and cancelled; False
        if it already matched (the transaction is happening regardless).
        Used by failure-detection timeouts.
        """
        for queue in (*self._sends.values(), *self._recvs.values()):
            for offer in queue:
                if offer.event is grant and not offer.cancelled:
                    offer.cancelled = True
                    return True
        return False

    def pending_sends(self, frm: str) -> int:
        """Number of unmatched send offers from ``frm`` (diagnostics)."""
        self._check_endpoint(frm)
        return sum(not o.cancelled for o in self._sends[frm])

    # -- internals --------------------------------------------------------
    def _check_endpoint(self, name: str) -> None:
        if name not in (self.a, self.b):
            raise LinkError(f"{name!r} is not an endpoint of link {self.a!r}<->{self.b!r}")

    def _try_match(self, direction: str) -> None:
        """Match the oldest live send with the oldest live recv, if both exist.

        Cancelled offers are discarded lazily as they surface at the
        head of their queue, so matching is O(1) amortized per offer
        rather than a full scan per attempt.
        """
        sends, recvs = self._sends[direction], self._recvs[direction]
        while sends and recvs:
            if sends[0].cancelled:
                sends.popleft()
                continue
            if recvs[0].cancelled:
                recvs.popleft()
                continue
            send = sends.popleft()
            recv = recvs.popleft()
            duration = self.timing.duration(send.payload_bytes, self.rng)
            transfer = Transfer(
                message=send.message,
                payload_bytes=send.payload_bytes,
                start_s=self.sim.now,
                duration_s=duration,
                done=Event(self.sim),
            )
            send.event.succeed(transfer)
            recv.event.succeed(transfer)
            transfer.done.succeed(transfer, delay=duration)
            self.transfer_count[direction] += 1
            self.bytes_moved[direction] += send.payload_bytes
            if self.obs is not None:
                # Frame correlation: data payloads are Frame objects
                # (``id``), recovery acknowledgments carry ``frame_id``;
                # anything else (opaque test payloads) stays untagged.
                message = send.message
                frame_id = getattr(message, "id", None)
                if frame_id is None:
                    frame_id = getattr(message, "frame_id", None)
                if frame_id is None:
                    self.obs.emit(
                        "link.xfer",
                        self.sim.now,
                        direction,
                        to=self.b if direction == self.a else self.a,
                        bytes=send.payload_bytes,
                        duration_s=duration,
                        startup_s=self.timing.startup_s,
                    )
                else:
                    self.obs.emit(
                        "link.xfer",
                        self.sim.now,
                        direction,
                        to=self.b if direction == self.a else self.a,
                        bytes=send.payload_bytes,
                        duration_s=duration,
                        startup_s=self.timing.startup_s,
                        frame=frame_id,
                    )
